
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/behavioral.cc" "src/core/CMakeFiles/spm_core.dir/behavioral.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/behavioral.cc.o.d"
  "/root/repo/src/core/bitserial.cc" "src/core/CMakeFiles/spm_core.dir/bitserial.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/bitserial.cc.o.d"
  "/root/repo/src/core/cascade.cc" "src/core/CMakeFiles/spm_core.dir/cascade.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/cascade.cc.o.d"
  "/root/repo/src/core/cells.cc" "src/core/CMakeFiles/spm_core.dir/cells.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/cells.cc.o.d"
  "/root/repo/src/core/gatechip.cc" "src/core/CMakeFiles/spm_core.dir/gatechip.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/gatechip.cc.o.d"
  "/root/repo/src/core/hostbus.cc" "src/core/CMakeFiles/spm_core.dir/hostbus.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/hostbus.cc.o.d"
  "/root/repo/src/core/multipass.cc" "src/core/CMakeFiles/spm_core.dir/multipass.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/multipass.cc.o.d"
  "/root/repo/src/core/reference.cc" "src/core/CMakeFiles/spm_core.dir/reference.cc.o" "gcc" "src/core/CMakeFiles/spm_core.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/spm_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/spm_gate.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
