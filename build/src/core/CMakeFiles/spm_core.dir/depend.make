# Empty dependencies file for spm_core.
# This may be replaced when dependencies are built.
