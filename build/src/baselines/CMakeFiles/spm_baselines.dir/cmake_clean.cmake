file(REMOVE_RECURSE
  "CMakeFiles/spm_baselines.dir/boyermoore.cc.o"
  "CMakeFiles/spm_baselines.dir/boyermoore.cc.o.d"
  "CMakeFiles/spm_baselines.dir/broadcast.cc.o"
  "CMakeFiles/spm_baselines.dir/broadcast.cc.o.d"
  "CMakeFiles/spm_baselines.dir/fftmatch.cc.o"
  "CMakeFiles/spm_baselines.dir/fftmatch.cc.o.d"
  "CMakeFiles/spm_baselines.dir/kmp.cc.o"
  "CMakeFiles/spm_baselines.dir/kmp.cc.o.d"
  "CMakeFiles/spm_baselines.dir/naive.cc.o"
  "CMakeFiles/spm_baselines.dir/naive.cc.o.d"
  "CMakeFiles/spm_baselines.dir/staticarray.cc.o"
  "CMakeFiles/spm_baselines.dir/staticarray.cc.o.d"
  "libspm_baselines.a"
  "libspm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
