file(REMOVE_RECURSE
  "libspm_baselines.a"
)
