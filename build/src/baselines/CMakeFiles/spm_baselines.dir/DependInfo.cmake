
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/boyermoore.cc" "src/baselines/CMakeFiles/spm_baselines.dir/boyermoore.cc.o" "gcc" "src/baselines/CMakeFiles/spm_baselines.dir/boyermoore.cc.o.d"
  "/root/repo/src/baselines/broadcast.cc" "src/baselines/CMakeFiles/spm_baselines.dir/broadcast.cc.o" "gcc" "src/baselines/CMakeFiles/spm_baselines.dir/broadcast.cc.o.d"
  "/root/repo/src/baselines/fftmatch.cc" "src/baselines/CMakeFiles/spm_baselines.dir/fftmatch.cc.o" "gcc" "src/baselines/CMakeFiles/spm_baselines.dir/fftmatch.cc.o.d"
  "/root/repo/src/baselines/kmp.cc" "src/baselines/CMakeFiles/spm_baselines.dir/kmp.cc.o" "gcc" "src/baselines/CMakeFiles/spm_baselines.dir/kmp.cc.o.d"
  "/root/repo/src/baselines/naive.cc" "src/baselines/CMakeFiles/spm_baselines.dir/naive.cc.o" "gcc" "src/baselines/CMakeFiles/spm_baselines.dir/naive.cc.o.d"
  "/root/repo/src/baselines/staticarray.cc" "src/baselines/CMakeFiles/spm_baselines.dir/staticarray.cc.o" "gcc" "src/baselines/CMakeFiles/spm_baselines.dir/staticarray.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/spm_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/spm_systolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
