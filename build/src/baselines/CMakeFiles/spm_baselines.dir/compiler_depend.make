# Empty compiler generated dependencies file for spm_baselines.
# This may be replaced when dependencies are built.
