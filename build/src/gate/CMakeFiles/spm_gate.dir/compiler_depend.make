# Empty compiler generated dependencies file for spm_gate.
# This may be replaced when dependencies are built.
