file(REMOVE_RECURSE
  "CMakeFiles/spm_gate.dir/device.cc.o"
  "CMakeFiles/spm_gate.dir/device.cc.o.d"
  "CMakeFiles/spm_gate.dir/netlist.cc.o"
  "CMakeFiles/spm_gate.dir/netlist.cc.o.d"
  "CMakeFiles/spm_gate.dir/pla.cc.o"
  "CMakeFiles/spm_gate.dir/pla.cc.o.d"
  "CMakeFiles/spm_gate.dir/stdcells.cc.o"
  "CMakeFiles/spm_gate.dir/stdcells.cc.o.d"
  "CMakeFiles/spm_gate.dir/twophase.cc.o"
  "CMakeFiles/spm_gate.dir/twophase.cc.o.d"
  "libspm_gate.a"
  "libspm_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
