
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gate/device.cc" "src/gate/CMakeFiles/spm_gate.dir/device.cc.o" "gcc" "src/gate/CMakeFiles/spm_gate.dir/device.cc.o.d"
  "/root/repo/src/gate/netlist.cc" "src/gate/CMakeFiles/spm_gate.dir/netlist.cc.o" "gcc" "src/gate/CMakeFiles/spm_gate.dir/netlist.cc.o.d"
  "/root/repo/src/gate/pla.cc" "src/gate/CMakeFiles/spm_gate.dir/pla.cc.o" "gcc" "src/gate/CMakeFiles/spm_gate.dir/pla.cc.o.d"
  "/root/repo/src/gate/stdcells.cc" "src/gate/CMakeFiles/spm_gate.dir/stdcells.cc.o" "gcc" "src/gate/CMakeFiles/spm_gate.dir/stdcells.cc.o.d"
  "/root/repo/src/gate/twophase.cc" "src/gate/CMakeFiles/spm_gate.dir/twophase.cc.o" "gcc" "src/gate/CMakeFiles/spm_gate.dir/twophase.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/spm_systolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
