file(REMOVE_RECURSE
  "libspm_gate.a"
)
