file(REMOVE_RECURSE
  "CMakeFiles/spm_systolic.dir/clock.cc.o"
  "CMakeFiles/spm_systolic.dir/clock.cc.o.d"
  "CMakeFiles/spm_systolic.dir/engine.cc.o"
  "CMakeFiles/spm_systolic.dir/engine.cc.o.d"
  "CMakeFiles/spm_systolic.dir/selftimed.cc.o"
  "CMakeFiles/spm_systolic.dir/selftimed.cc.o.d"
  "CMakeFiles/spm_systolic.dir/trace.cc.o"
  "CMakeFiles/spm_systolic.dir/trace.cc.o.d"
  "libspm_systolic.a"
  "libspm_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
