# Empty dependencies file for spm_systolic.
# This may be replaced when dependencies are built.
