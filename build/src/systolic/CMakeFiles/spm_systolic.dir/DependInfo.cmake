
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/clock.cc" "src/systolic/CMakeFiles/spm_systolic.dir/clock.cc.o" "gcc" "src/systolic/CMakeFiles/spm_systolic.dir/clock.cc.o.d"
  "/root/repo/src/systolic/engine.cc" "src/systolic/CMakeFiles/spm_systolic.dir/engine.cc.o" "gcc" "src/systolic/CMakeFiles/spm_systolic.dir/engine.cc.o.d"
  "/root/repo/src/systolic/selftimed.cc" "src/systolic/CMakeFiles/spm_systolic.dir/selftimed.cc.o" "gcc" "src/systolic/CMakeFiles/spm_systolic.dir/selftimed.cc.o.d"
  "/root/repo/src/systolic/trace.cc" "src/systolic/CMakeFiles/spm_systolic.dir/trace.cc.o" "gcc" "src/systolic/CMakeFiles/spm_systolic.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
