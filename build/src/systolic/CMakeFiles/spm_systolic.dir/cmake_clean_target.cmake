file(REMOVE_RECURSE
  "libspm_systolic.a"
)
