# Empty dependencies file for host_system.
# This may be replaced when dependencies are built.
