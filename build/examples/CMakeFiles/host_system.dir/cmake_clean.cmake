file(REMOVE_RECURSE
  "CMakeFiles/host_system.dir/host_system.cpp.o"
  "CMakeFiles/host_system.dir/host_system.cpp.o.d"
  "host_system"
  "host_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
