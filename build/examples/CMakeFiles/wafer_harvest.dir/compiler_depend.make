# Empty compiler generated dependencies file for wafer_harvest.
# This may be replaced when dependencies are built.
