file(REMOVE_RECURSE
  "CMakeFiles/wafer_harvest.dir/wafer_harvest.cpp.o"
  "CMakeFiles/wafer_harvest.dir/wafer_harvest.cpp.o.d"
  "wafer_harvest"
  "wafer_harvest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafer_harvest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
