# Empty compiler generated dependencies file for chip_design_flow.
# This may be replaced when dependencies are built.
