file(REMOVE_RECURSE
  "CMakeFiles/chip_design_flow.dir/chip_design_flow.cpp.o"
  "CMakeFiles/chip_design_flow.dir/chip_design_flow.cpp.o.d"
  "chip_design_flow"
  "chip_design_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_design_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
