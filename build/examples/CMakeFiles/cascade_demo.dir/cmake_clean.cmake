file(REMOVE_RECURSE
  "CMakeFiles/cascade_demo.dir/cascade_demo.cpp.o"
  "CMakeFiles/cascade_demo.dir/cascade_demo.cpp.o.d"
  "cascade_demo"
  "cascade_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
