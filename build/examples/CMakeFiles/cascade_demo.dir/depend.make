# Empty dependencies file for cascade_demo.
# This may be replaced when dependencies are built.
