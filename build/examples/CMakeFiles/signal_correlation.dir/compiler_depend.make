# Empty compiler generated dependencies file for signal_correlation.
# This may be replaced when dependencies are built.
