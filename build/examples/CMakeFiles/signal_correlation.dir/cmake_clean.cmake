file(REMOVE_RECURSE
  "CMakeFiles/signal_correlation.dir/signal_correlation.cpp.o"
  "CMakeFiles/signal_correlation.dir/signal_correlation.cpp.o.d"
  "signal_correlation"
  "signal_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
