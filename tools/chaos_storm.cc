/**
 * @file
 * chaos_storm: drive a seeded fault storm against the sharded match
 * service from the command line.
 *
 * Wraps runChaosCampaign(): builds a sharded service whose targeted
 * slots inject stalls, dead-worker hangs, exceptions and silent bit
 * flips (plus, with --poison, gate netlists carrying the E16
 * hardest-undetected stuck-at survivors), serves seeded random
 * workloads through it, and verifies every ok() answer bit-for-bit
 * against the reference matcher. The storm is replayable: the same
 * --storm-seed fails the same windows the same way on every run.
 *
 * Exit status is the acceptance invariant itself: 0 when every
 * injected fault was either recovered exactly or rejected with a
 * typed error, 1 on any silent corruption, 2 on a usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/chaos.hh"
#include "telemetry/flightrec.hh"
#include "util/logging.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: chaos_storm [options]\n"
        "\n"
        "  --threads N      worker threads / primary slots (default 4)\n"
        "  --spares N       spare shard slots (default 2)\n"
        "  --requests N     requests in the campaign (default 32)\n"
        "  --text-len N     characters per request (default 2048)\n"
        "  --pattern-len N  pattern length (default 5)\n"
        "  --deadline-ms N  batch deadline (default 200)\n"
        "  --stall P        per-window stall probability (default 0.05)\n"
        "  --hang P         per-window hang probability (default 0.01)\n"
        "  --throw P        per-window throw probability (default 0.05)\n"
        "  --corrupt P      per-window bit-flip probability "
        "(default 0.05)\n"
        "  --corrupt-at N   flip bit N of the window instead of a\n"
        "                   seeded random one (window 0 of a slice has\n"
        "                   no checkpoint tail, so N = patternLen-1 is\n"
        "                   the first kept boundary bit of slices 1+)\n"
        "  --hang-ms N      hang sleep, wall clock (default 400)\n"
        "  --cap N          max injections per slot, 0 = unlimited\n"
        "                   (default 0)\n"
        "  --all-slots      also fault the spares (default: primaries\n"
        "                   only, the clean-harvest shape)\n"
        "  --targets LIST   comma-separated slot ids to fault instead\n"
        "                   of every primary\n"
        "  --poison N       force the N hardest-undetected stuck-at\n"
        "                   survivors onto targeted gate rungs\n"
        "                   (default 0; implies the default ladder)\n"
        "  --software       software-only shard ladders (fast; default\n"
        "                   unless --poison)\n"
        "  --no-cross-check disable the per-chunk reference cross-check\n"
        "                   (leaves only the overlap cross-check)\n"
        "  --storm-seed N   injection-decision seed (default 1979)\n"
        "  --seed N         workload seed (default 2026)\n"
        "  --quiet          suppress flight-recorder dumps\n"
        "  --snapshot-file F  write the sharded service's metrics\n"
        "                   snapshot to F as JSON during the run\n"
        "                   (atomic rename; spm_top --follow F tails it)\n"
        "  --snapshot-every N snapshot after every N served requests\n"
        "                   (default 1; needs --snapshot-file)\n"
        "\n"
        "exit status: 0 zero silent corruptions, 1 corruption or lost\n"
        "request, 2 usage error\n",
        out);
}

std::uint64_t
parseNum(const char *flag, const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') {
        std::fprintf(stderr, "chaos_storm: bad value for %s: %s\n", flag,
                     s);
        std::exit(2);
    }
    return v;
}

double
parseProb(const char *flag, const char *s)
{
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0' || v < 0.0 || v > 1.0) {
        std::fprintf(stderr,
                     "chaos_storm: %s needs a probability in [0,1]: %s\n",
                     flag, s);
        std::exit(2);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace spm;

    service::ChaosCampaignConfig cc;
    cc.sharded.base.maxTextLen = 1 << 20;
    cc.sharded.threads = 4;
    cc.sharded.spareShards = 2;
    cc.sharded.minShardChars = 128;
    cc.sharded.batchDeadlineMs = 200;
    cc.chaos.seed = 1979;
    cc.chaos.stallProb = 0.05;
    cc.chaos.hangProb = 0.01;
    cc.chaos.throwProb = 0.05;
    cc.chaos.corruptProb = 0.05;
    cc.chaos.hangMs = 400;
    cc.requests = 32;
    cc.textLen = 2048;
    cc.patternLen = 5;
    cc.seed = 2026;

    std::size_t poison = 0;
    bool software = true;
    bool all_slots = false;
    bool quiet = false;
    std::string snapshot_file;
    std::uint64_t snapshot_every = 1;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "chaos_storm: %s needs a value\n",
                             arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--threads") == 0)
            cc.sharded.threads =
                static_cast<unsigned>(parseNum(arg, value()));
        else if (std::strcmp(arg, "--spares") == 0)
            cc.sharded.spareShards =
                static_cast<unsigned>(parseNum(arg, value()));
        else if (std::strcmp(arg, "--requests") == 0)
            cc.requests = parseNum(arg, value());
        else if (std::strcmp(arg, "--text-len") == 0)
            cc.textLen = parseNum(arg, value());
        else if (std::strcmp(arg, "--pattern-len") == 0)
            cc.patternLen = parseNum(arg, value());
        else if (std::strcmp(arg, "--deadline-ms") == 0)
            cc.sharded.batchDeadlineMs =
                static_cast<std::uint32_t>(parseNum(arg, value()));
        else if (std::strcmp(arg, "--stall") == 0)
            cc.chaos.stallProb = parseProb(arg, value());
        else if (std::strcmp(arg, "--hang") == 0)
            cc.chaos.hangProb = parseProb(arg, value());
        else if (std::strcmp(arg, "--throw") == 0)
            cc.chaos.throwProb = parseProb(arg, value());
        else if (std::strcmp(arg, "--corrupt") == 0)
            cc.chaos.corruptProb = parseProb(arg, value());
        else if (std::strcmp(arg, "--hang-ms") == 0)
            cc.chaos.hangMs =
                static_cast<std::uint32_t>(parseNum(arg, value()));
        else if (std::strcmp(arg, "--cap") == 0)
            cc.chaos.maxInjectionsPerSlot =
                static_cast<unsigned>(parseNum(arg, value()));
        else if (std::strcmp(arg, "--corrupt-at") == 0)
            cc.chaos.corruptAt =
                static_cast<int>(parseNum(arg, value()));
        else if (std::strcmp(arg, "--all-slots") == 0)
            all_slots = true;
        else if (std::strcmp(arg, "--targets") == 0) {
            std::string list = value();
            std::size_t pos = 0;
            while (pos < list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                cc.chaos.targetSlots.push_back(static_cast<unsigned>(
                    parseNum(arg, list.substr(pos, comma - pos).c_str())));
                pos = comma + 1;
            }
        }
        else if (std::strcmp(arg, "--poison") == 0) {
            poison = parseNum(arg, value());
            software = false;
        } else if (std::strcmp(arg, "--software") == 0)
            software = true;
        else if (std::strcmp(arg, "--no-cross-check") == 0)
            cc.sharded.base.crossCheck = false;
        else if (std::strcmp(arg, "--storm-seed") == 0)
            cc.chaos.seed = parseNum(arg, value());
        else if (std::strcmp(arg, "--seed") == 0)
            cc.seed = parseNum(arg, value());
        else if (std::strcmp(arg, "--quiet") == 0)
            quiet = true;
        else if (std::strcmp(arg, "--snapshot-file") == 0)
            snapshot_file = value();
        else if (std::strcmp(arg, "--snapshot-every") == 0) {
            snapshot_every = parseNum(arg, value());
            if (snapshot_every == 0)
                snapshot_every = 1;
        }
        else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "chaos_storm: unknown option %s\n", arg);
            usage(stderr);
            return 2;
        }
    }

    if (!all_slots && cc.chaos.targetSlots.empty())
        for (unsigned s = 0; s < cc.sharded.threads; ++s)
            cc.chaos.targetSlots.push_back(s);
    if (software)
        cc.innerFactory = [](const service::ServiceConfig &) {
            std::vector<std::unique_ptr<service::ServiceBackend>> ladder;
            ladder.push_back(
                std::make_unique<service::SoftwareBackend>());
            return ladder;
        };
    if (poison > 0) {
        cc.poisonSites = service::hardestUndetectedSites(
            cc.sharded.base.cells, cc.sharded.base.alphabetBits, poison);
        std::printf("poison corpus: %zu hardest-undetected stuck-at "
                    "survivors\n",
                    cc.poisonSites.size());
    }
    if (quiet) {
        // Per-shard flight recorders dump through warn(); raising the
        // global log floor silences them all (panic is never filtered).
        setLogMinLevel(LogLevel::Silent);
        telem::FlightRecorder::global().setDumpSink(
            [](const std::string &) {});
    }

    std::string exemplar_dump;
    cc.progress = [&](std::size_t served,
                      const service::ShardedMatchService &svc) {
        if (served == cc.requests)
            exemplar_dump = svc.exemplars().renderText();
        if (snapshot_file.empty() ||
            (served % snapshot_every != 0 && served != cc.requests))
            return;
        // Write-then-rename so a concurrent spm_top --follow never
        // reads a torn snapshot.
        const std::string tmp = snapshot_file + ".tmp";
        const std::string json = svc.metricsSnapshot().toJson();
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        if (f == nullptr)
            return;
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::rename(tmp.c_str(), snapshot_file.c_str());
    };

    const service::ChaosCampaignReport rep =
        service::runChaosCampaign(cc);
    std::fputs(rep.renderText().c_str(), stdout);

    if (!quiet && !exemplar_dump.empty())
        std::fputs(exemplar_dump.c_str(), stdout);

    const bool intact =
        rep.silentCorruptions == 0 &&
        rep.okRequests + rep.typedFailures == rep.requests;
    std::printf("verdict: %s\n",
                intact ? "every fault recovered or typed; zero silent "
                         "corruptions"
                       : "SILENT CORRUPTION OR LOST REQUEST");
    return intact ? 0 : 1;
}
