/**
 * @file
 * spm_top: a live request-observability dashboard.
 *
 * Renders the reqobs layer (telemetry/reqobs) the way `top` renders a
 * kernel's process table: one row per service front end with rolling
 * request rates and exact-count p50/p90/p99/p999 latency columns, a
 * per-stage breakdown line under each row, and (live mode) the
 * tail-sampled exemplar traces with their replayable case IDs.
 *
 * Three modes:
 *
 *   --json FILE [FILE2]   render one dumped metrics snapshot; with a
 *                         second file, render FILE2 minus FILE (an
 *                         interval, so percentiles are interval-local)
 *   --follow FILE         poll a snapshot file a storm keeps rewriting
 *                         (chaos_storm --snapshot-file) and render the
 *                         per-interval delta each tick
 *   --live                drive an in-process mixed workload through
 *                         all four front ends (streaming, sharded
 *                         under a seeded chaos storm, batch, dict)
 *                         and render rolling intervals
 *
 * Exit status: 0 on success, 2 on a usage or file error.
 */

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/batch.hh"
#include "service/chaos.hh"
#include "service/dictserve.hh"
#include "service/service.hh"
#include "service/sharded.hh"
#include "telemetry/metrics.hh"
#include "telemetry/reqobs.hh"
#include "util/logging.hh"

namespace
{

using spm::telem::Snapshot;

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: spm_top --json FILE [FILE2]\n"
        "       spm_top --follow FILE [--interval-ms N] [--ticks N]\n"
        "       spm_top --live [--seconds S] [--interval-ms N]\n"
        "\n"
        "  --json FILE [FILE2]  render a dumped snapshot (toJson); a\n"
        "                       second file renders FILE2 minus FILE\n"
        "  --follow FILE        tail a snapshot file being rewritten\n"
        "                       (chaos_storm --snapshot-file FILE)\n"
        "  --live               in-process mixed workload across the\n"
        "                       streaming, sharded(+chaos), batch and\n"
        "                       dict front ends\n"
        "  --interval-ms N      refresh interval (default 500)\n"
        "  --ticks N            follow-mode refresh count, 0 = forever\n"
        "                       (default 0)\n"
        "  --seconds S          live-mode run length (default 5)\n"
        "  --no-clear           do not emit ANSI clear between frames\n",
        out);
}

std::string
fmtNs(double ns)
{
    char buf[32];
    if (ns < 1e3)
        std::snprintf(buf, sizeof buf, "%.0fns", ns);
    else if (ns < 1e6)
        std::snprintf(buf, sizeof buf, "%.1fus", ns / 1e3);
    else if (ns < 1e9)
        std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
    else
        std::snprintf(buf, sizeof buf, "%.2fs", ns / 1e9);
    return buf;
}

std::string
fmtCount(double v)
{
    char buf[32];
    if (v < 10e3)
        std::snprintf(buf, sizeof buf, "%.0f", v);
    else if (v < 10e6)
        std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
    return buf;
}

/** Service prefixes present: every "<prefix>req.latency_ns" loghist. */
std::vector<std::string>
servicePrefixes(const Snapshot &snap)
{
    const std::string key = "req.latency_ns";
    std::vector<std::string> out;
    for (const auto &[name, h] : snap.logHistograms) {
        (void)h;
        if (name.size() >= key.size() &&
            name.compare(name.size() - key.size(), key.size(), key) == 0)
            out.push_back(name.substr(0, name.size() - key.size()));
    }
    return out;
}

/** Display label of one service prefix ("sharded." -> "sharded"). */
std::string
prefixLabel(const std::string &prefix)
{
    if (prefix.empty())
        return "stream";
    std::string label = prefix;
    if (!label.empty() && label.back() == '.')
        label.pop_back();
    return label;
}

/**
 * One dashboard frame: a row per service (requests, rate, latency
 * percentiles, beats) and a stage-share line under each row.
 *
 * @param elapsed_s interval length for the rate column; <= 0 hides it
 */
std::string
renderFrame(const Snapshot &snap, double elapsed_s)
{
    std::ostringstream os;
    char line[256];
    std::snprintf(line, sizeof line, "%-10s %8s %9s %9s %9s %9s %9s %11s\n",
                  "service", "req", "req/s", "p50", "p90", "p99", "p999",
                  "beats/req");
    os << line;

    const auto prefixes = servicePrefixes(snap);
    if (prefixes.empty())
        os << "(no req.latency_ns log-histograms in this snapshot; "
              "was it taken under SPM_TELEM_OFF?)\n";
    for (const std::string &prefix : prefixes) {
        const auto *lat = snap.logHistogram(prefix + "req.latency_ns");
        const auto *beats = snap.logHistogram(prefix + "req.latency_beats");
        if (lat == nullptr)
            continue;
        const std::uint64_t n = lat->samples();
        const double rate =
            elapsed_s > 0 ? static_cast<double>(n) / elapsed_s : -1.0;
        char rateCol[32];
        if (rate < 0)
            std::snprintf(rateCol, sizeof rateCol, "-");
        else
            std::snprintf(rateCol, sizeof rateCol, "%.1f", rate);
        const double beatsPer =
            (beats != nullptr && n != 0)
                ? beats->sum / static_cast<double>(n)
                : 0.0;
        std::snprintf(line, sizeof line,
                      "%-10s %8s %9s %9s %9s %9s %9s %11s\n",
                      prefixLabel(prefix).c_str(),
                      fmtCount(static_cast<double>(n)).c_str(), rateCol,
                      fmtNs(lat->quantile(0.5)).c_str(),
                      fmtNs(lat->quantile(0.9)).c_str(),
                      fmtNs(lat->quantile(0.99)).c_str(),
                      fmtNs(lat->quantile(0.999)).c_str(),
                      fmtCount(beatsPer).c_str());
        os << line;

        // Stage attribution: share of summed stage time, plus the
        // p99 of each stage that saw samples.
        double totalStage = 0.0;
        std::array<const Snapshot::LogHistogramData *,
                   spm::telem::stageCount>
            stage{};
        for (std::size_t s = 0; s < spm::telem::stageCount; ++s) {
            const char *token = spm::telem::stageName(
                static_cast<spm::telem::Stage>(s));
            stage[s] = snap.logHistogram(prefix + "req.stage." +
                                         token + "_ns");
            if (stage[s] != nullptr)
                totalStage += stage[s]->sum;
        }
        os << "  stages:";
        for (std::size_t s = 0; s < spm::telem::stageCount; ++s) {
            if (stage[s] == nullptr || stage[s]->samples() == 0)
                continue;
            const double pct =
                totalStage > 0 ? 100.0 * stage[s]->sum / totalStage : 0.0;
            const char *token = spm::telem::stageName(
                static_cast<spm::telem::Stage>(s));
            std::snprintf(line, sizeof line, " %s %.0f%% (p99 %s)",
                          token, pct,
                          fmtNs(stage[s]->quantile(0.99)).c_str());
            os << line;
        }
        os << "\n";
    }
    return os.str();
}

std::optional<Snapshot>
loadSnapshotFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return Snapshot::fromJson(buf.str());
}

int
runJson(const std::string &file, const std::string &file2)
{
    auto snap = loadSnapshotFile(file);
    if (!snap) {
        std::fprintf(stderr, "spm_top: cannot parse snapshot %s\n",
                     file.c_str());
        return 2;
    }
    if (!file2.empty()) {
        auto later = loadSnapshotFile(file2);
        if (!later) {
            std::fprintf(stderr, "spm_top: cannot parse snapshot %s\n",
                         file2.c_str());
            return 2;
        }
        *snap = later->delta(*snap);
        std::printf("spm_top — interval %s .. %s\n", file.c_str(),
                    file2.c_str());
    } else {
        std::printf("spm_top — snapshot %s\n", file.c_str());
    }
    std::fputs(renderFrame(*snap, -1.0).c_str(), stdout);
    return 0;
}

int
runFollow(const std::string &file, unsigned interval_ms,
          std::uint64_t ticks, bool clear)
{
    Snapshot prev;
    bool havePrev = false;
    std::uint64_t done = 0;
    while (ticks == 0 || done < ticks) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
        auto snap = loadSnapshotFile(file);
        ++done;
        if (!snap) {
            std::printf("spm_top — waiting for %s\n", file.c_str());
            continue;
        }
        const Snapshot view = havePrev ? snap->delta(prev) : *snap;
        if (clear)
            std::fputs("\x1b[2J\x1b[H", stdout);
        std::printf("spm_top — following %s (tick %llu, %ums)\n",
                    file.c_str(),
                    static_cast<unsigned long long>(done), interval_ms);
        std::fputs(
            renderFrame(view, havePrev ? interval_ms / 1e3 : -1.0).c_str(),
            stdout);
        std::fflush(stdout);
        prev = std::move(*snap);
        havePrev = true;
    }
    return 0;
}

/** The live-mode workload: all four front ends, one mixed round. */
class LiveWorkload
{
  public:
    LiveWorkload()
        : stream(streamConfig()),
          plan(std::make_shared<const spm::service::ChaosPlan>(
              chaosConfig())),
          sharded(shardedConfig(),
                  spm::service::makeChaosLadderFactory(
                      plan, softwareLadder())),
          batch(batchConfig()), dict(dictConfig()), rng(7)
    {
        spm::service::DictError derr;
        dictSession = dict.openSession(
            {{1, 2}, {2, spm::wildcardSymbol, 1}, {3, 3}}, derr);
    }

    /** Serve one round of requests across every front end. */
    void round()
    {
        using spm::Symbol;
        std::uniform_int_distribution<unsigned> sym(0, 3);

        // Streaming: queue a few requests, then drain (real queue
        // waits land in the queue_wait stage histogram).
        for (int i = 0; i < 4; ++i)
            stream.submit(makeRequest(96, 3));
        stream.drain();

        // Sharded under chaos: bigger texts so slicing engages.
        sharded.serve(makeRequest(1024, 4));

        // Batch: one pass, members sharing a pattern.
        std::vector<spm::service::MatchRequest> b;
        for (int i = 0; i < 6; ++i) {
            auto r = makeRequest(64, 3);
            r.pattern = {1, 2, spm::wildcardSymbol};
            r.enqueuedNs = spm::telem::nowNs();
            b.push_back(std::move(r));
        }
        batch.serveBatch(b);

        // Dict: one chunk against the bound dictionary.
        std::vector<Symbol> chunk(48);
        for (Symbol &c : chunk)
            c = static_cast<Symbol>(sym(rng));
        dict.feedChunk(dictSession, chunk, spm::telem::nowNs());
    }

    /** All four registries merged, names service-prefixed. */
    Snapshot merged() const
    {
        Snapshot all;
        addPrefixed(all, "stream.", stream.metricsSnapshot());
        // The sharded snapshot already carries its "sharded." prefix.
        addPrefixed(all, "", sharded.metricsSnapshot());
        addPrefixed(all, "batch.", batch.metricsSnapshot());
        addPrefixed(all, "dict.", dict.metricsSnapshot());
        return all;
    }

    std::string exemplarDump() const
    {
        std::string out;
        out += "== stream exemplars ==\n" +
               stream.exemplars().renderText();
        out += "== sharded exemplars ==\n" +
               sharded.exemplars().renderText();
        out += "== batch exemplars ==\n" + batch.exemplars().renderText();
        out += "== dict exemplars ==\n" + dict.exemplars().renderText();
        return out;
    }

  private:
    static spm::service::ServiceConfig streamConfig()
    {
        spm::service::ServiceConfig cfg;
        cfg.queueCapacity = 16;
        return cfg;
    }

    static spm::service::ChaosConfig chaosConfig()
    {
        spm::service::ChaosConfig cfg;
        cfg.seed = 1979;
        cfg.stallProb = 0.02;
        cfg.corruptProb = 0.02;
        cfg.targetSlots = {0, 1};
        return cfg;
    }

    static spm::service::ShardedConfig shardedConfig()
    {
        spm::service::ShardedConfig cfg;
        cfg.base.maxTextLen = 1 << 20;
        cfg.threads = 2;
        cfg.spareShards = 1;
        cfg.minShardChars = 128;
        cfg.batchDeadlineMs = 200;
        return cfg;
    }

    static spm::service::ShardedMatchService::LadderFactory
    softwareLadder()
    {
        return [](const spm::service::ServiceConfig &) {
            std::vector<std::unique_ptr<spm::service::ServiceBackend>> l;
            l.push_back(std::make_unique<spm::service::SoftwareBackend>());
            return l;
        };
    }

    static spm::service::BatchServiceConfig batchConfig()
    {
        return {};
    }

    static spm::service::DictServiceConfig dictConfig()
    {
        spm::service::DictServiceConfig cfg;
        cfg.crossCheckEvery = 4;
        return cfg;
    }

    spm::service::MatchRequest makeRequest(std::size_t text_len,
                                           std::size_t pattern_len)
    {
        std::uniform_int_distribution<unsigned> sym(0, 3);
        std::bernoulli_distribution wild(0.2);
        spm::service::MatchRequest req;
        req.id = ++nextId;
        req.text.reserve(text_len);
        for (std::size_t i = 0; i < text_len; ++i)
            req.text.push_back(static_cast<spm::Symbol>(sym(rng)));
        for (std::size_t i = 0; i < pattern_len; ++i)
            req.pattern.push_back(wild(rng)
                                      ? spm::wildcardSymbol
                                      : static_cast<spm::Symbol>(sym(rng)));
        return req;
    }

    static void addPrefixed(Snapshot &all, const std::string &prefix,
                            const Snapshot &part)
    {
        for (const auto &[name, v] : part.counters)
            all.counters.emplace_back(prefix + name, v);
        for (const auto &[name, v] : part.gauges)
            all.gauges.emplace_back(prefix + name, v);
        for (const auto &[name, h] : part.histograms)
            all.histograms.emplace_back(prefix + name, h);
        for (const auto &[name, h] : part.logHistograms)
            all.logHistograms.emplace_back(prefix + name, h);
    }

    spm::service::MatchService stream;
    std::shared_ptr<const spm::service::ChaosPlan> plan;
    spm::service::ShardedMatchService sharded;
    spm::service::BatchMatchService batch;
    spm::service::DictMatchService dict;
    spm::service::DictSession dictSession;
    std::mt19937_64 rng;
    std::uint64_t nextId = 0;
};

int
runLive(double seconds, unsigned interval_ms, bool clear)
{
    // Chaos-wrapped shards dump flight-recorder trips through warn();
    // a dashboard should not interleave with its own frames.
    spm::setLogMinLevel(spm::LogLevel::Silent);
    spm::telem::FlightRecorder::global().setDumpSink(
        [](const std::string &) {});

    LiveWorkload work;
    Snapshot prev = work.merged();
    const auto t0 = std::chrono::steady_clock::now();
    const auto end =
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(seconds));
    auto lastFrame = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() < end) {
        work.round();
        const auto now = std::chrono::steady_clock::now();
        if (now - lastFrame <
            std::chrono::milliseconds(interval_ms))
            continue;
        const double dt =
            std::chrono::duration<double>(now - lastFrame).count();
        lastFrame = now;
        Snapshot cur = work.merged();
        const Snapshot view = cur.delta(prev);
        prev = std::move(cur);
        if (clear)
            std::fputs("\x1b[2J\x1b[H", stdout);
        std::printf("spm_top — live mixed workload (interval %.1fs)\n",
                    dt);
        std::fputs(renderFrame(view, dt).c_str(), stdout);
        std::fflush(stdout);
    }

    // Final frame: lifetime totals plus the retained exemplars.
    std::printf("\nspm_top — lifetime totals\n");
    std::fputs(renderFrame(work.merged(), -1.0).c_str(), stdout);
    std::fputs(work.exemplarDump().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode;
    std::string file, file2;
    unsigned interval_ms = 500;
    std::uint64_t ticks = 0;
    double seconds = 5.0;
    bool clear = true;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "spm_top: %s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--json") == 0) {
            mode = "json";
            file = value();
            if (i + 1 < argc && argv[i + 1][0] != '-')
                file2 = argv[++i];
        } else if (std::strcmp(arg, "--follow") == 0) {
            mode = "follow";
            file = value();
        } else if (std::strcmp(arg, "--live") == 0)
            mode = "live";
        else if (std::strcmp(arg, "--interval-ms") == 0)
            interval_ms = static_cast<unsigned>(
                std::strtoul(value(), nullptr, 10));
        else if (std::strcmp(arg, "--ticks") == 0)
            ticks = std::strtoull(value(), nullptr, 10);
        else if (std::strcmp(arg, "--seconds") == 0)
            seconds = std::strtod(value(), nullptr);
        else if (std::strcmp(arg, "--no-clear") == 0)
            clear = false;
        else if (std::strcmp(arg, "--help") == 0 ||
                 std::strcmp(arg, "-h") == 0) {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "spm_top: unknown option %s\n", arg);
            usage(stderr);
            return 2;
        }
    }
    if (interval_ms == 0)
        interval_ms = 1;

    if (mode == "json")
        return runJson(file, file2);
    if (mode == "follow")
        return runFollow(file, interval_ms, ticks, clear);
    if (mode == "live")
        return runLive(seconds, interval_ms, clear);
    usage(stderr);
    return 2;
}
