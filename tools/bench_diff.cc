/**
 * @file
 * bench_diff: the bench-regression gate.
 *
 * Compares a freshly generated bench JSON report (the flat key/value
 * object bench_common.hh writes) against the committed baseline and
 * fails on a silent regression. Keys are classed by name:
 *
 *   strings                exact match ("...agrees": "yes" must hold);
 *   *per_sec*, *speedup*   throughput: fresh >= min-ratio x baseline
 *                          (default 0.5 -- smoke runs are noisy, but a
 *                          disabled fast path shows up as 5-20x);
 *   *_ns                   latency: fresh <= 4x baseline;
 *   *overhead_frac*        fresh <= baseline + 0.05;
 *   other numbers          informational only -- shape keys (counts,
 *                          sweep sizes) legitimately differ between
 *                          --smoke and full runs.
 *
 * Keys present in only one file are warnings, not failures, for the
 * same reason. Exit status: 0 all gates hold, 1 regression, 2 usage /
 * unreadable input.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace
{

struct Entry
{
    std::string key;
    std::string raw;    ///< value as written (string values unquoted)
    bool isString = false;
    double num = 0.0;
};

/**
 * Parse the flat one-object JSON bench_common.hh renders: each line
 * `"key": value` with value either a number or a quoted string. A
 * general JSON parser is deliberately out of scope.
 */
bool
parseFlat(const char *path, std::vector<Entry> &out)
{
    std::FILE *f = std::fopen(path, "r");
    if (!f) {
        std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
        return false;
    }
    std::string body;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        body.append(buf, n);
    std::fclose(f);

    std::size_t i = 0;
    while (i < body.size()) {
        // Next quoted key.
        while (i < body.size() && body[i] != '"')
            ++i;
        if (i >= body.size())
            break;
        std::size_t end = body.find('"', ++i);
        if (end == std::string::npos)
            break;
        Entry e;
        e.key = body.substr(i, end - i);
        i = end + 1;
        while (i < body.size() &&
               (std::isspace(static_cast<unsigned char>(body[i])) ||
                body[i] == ':'))
            ++i;
        if (i >= body.size())
            break;
        if (body[i] == '"') {
            end = body.find('"', ++i);
            if (end == std::string::npos)
                break;
            e.raw = body.substr(i, end - i);
            e.isString = true;
            i = end + 1;
        } else if (body[i] == '[' || body[i] == '{') {
            // Nested value (e.g. an undetected-fault list): skip it;
            // the gate covers scalar metrics only.
            const char open = body[i];
            const char close = open == '[' ? ']' : '}';
            int depth = 0;
            for (; i < body.size(); ++i) {
                if (body[i] == open)
                    ++depth;
                else if (body[i] == close && --depth == 0) {
                    ++i;
                    break;
                }
            }
            continue;
        } else {
            std::size_t start = i;
            while (i < body.size() && body[i] != ',' &&
                   body[i] != '\n' && body[i] != '}')
                ++i;
            e.raw = body.substr(start, i - start);
            while (!e.raw.empty() &&
                   std::isspace(static_cast<unsigned char>(
                       e.raw.back())))
                e.raw.pop_back();
            char *endp = nullptr;
            e.num = std::strtod(e.raw.c_str(), &endp);
            if (endp == e.raw.c_str())
                continue; // not a scalar (true/null/...): ignore
        }
        out.push_back(std::move(e));
    }
    return true;
}

const Entry *
find(const std::vector<Entry> &entries, const std::string &key)
{
    for (const Entry &e : entries)
        if (e.key == key)
            return &e;
    return nullptr;
}

bool
keyHas(const std::string &key, const char *needle)
{
    return key.find(needle) != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    double minRatio = 0.5;
    std::vector<const char *> files;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--min-ratio") == 0 && i + 1 < argc) {
            minRatio = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::fputs("usage: bench_diff [--min-ratio R] "
                       "<baseline.json> <fresh.json>\n",
                       stdout);
            return 0;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        std::fputs("usage: bench_diff [--min-ratio R] "
                   "<baseline.json> <fresh.json>\n",
                   stderr);
        return 2;
    }

    std::vector<Entry> base, fresh;
    if (!parseFlat(files[0], base) || !parseFlat(files[1], fresh))
        return 2;
    if (base.empty()) {
        std::fprintf(stderr, "bench_diff: no entries in %s\n",
                     files[0]);
        return 2;
    }

    int failures = 0;
    int checked = 0;
    for (const Entry &b : base) {
        const Entry *f = find(fresh, b.key);
        if (!f) {
            std::printf("warn  %-44s missing from fresh report\n",
                        b.key.c_str());
            continue;
        }
        if (b.isString || f->isString) {
            ++checked;
            if (b.raw != f->raw) {
                std::printf("FAIL  %-44s \"%s\" -> \"%s\"\n",
                            b.key.c_str(), b.raw.c_str(),
                            f->raw.c_str());
                ++failures;
            }
            continue;
        }
        if (keyHas(b.key, "per_sec") || keyHas(b.key, "speedup")) {
            ++checked;
            if (f->num < minRatio * b.num) {
                std::printf("FAIL  %-44s %.6g -> %.6g "
                            "(< %.2fx baseline)\n",
                            b.key.c_str(), b.num, f->num, minRatio);
                ++failures;
            }
        } else if (keyHas(b.key, "overhead_frac")) {
            ++checked;
            if (f->num > b.num + 0.05) {
                std::printf("FAIL  %-44s %.6g -> %.6g "
                            "(> baseline + 0.05)\n",
                            b.key.c_str(), b.num, f->num);
                ++failures;
            }
        } else if (keyHas(b.key, "_ns")) {
            ++checked;
            if (f->num > 4.0 * b.num) {
                std::printf("FAIL  %-44s %.6g -> %.6g "
                            "(> 4x baseline)\n",
                            b.key.c_str(), b.num, f->num);
                ++failures;
            }
        }
        // Other numeric keys are shape/config values: not gated.
    }
    for (const Entry &f : fresh) {
        if (!find(base, f.key))
            std::printf("warn  %-44s new key (not in baseline)\n",
                        f.key.c_str());
    }

    std::printf("bench_diff: %s vs %s: %d gated keys, %d failures\n",
                files[0], files[1], checked, failures);
    return failures == 0 ? 0 : 1;
}
