/**
 * @file
 * trace_view: render and validate telemetry artifacts.
 *
 * Snapshot modes read a Snapshot::toJson() document (file or stdin)
 * and re-render it: `--table` as the aligned human table, `--prom` as
 * Prometheus exposition text, `--text` as the classic "name = value"
 * dump. `--check` validates Chrome trace-event JSON structure (the
 * schema chrome://tracing and Perfetto load) and exits nonzero with a
 * description on the first violation.
 *
 * The demo modes run a small deterministic sharded-service workload
 * in-process: `--demo-trace` emits its Chrome trace, `--demo-snapshot`
 * its metrics snapshot JSON. They exist so CI can exercise the whole
 * pipeline (instrument -> record -> export -> validate) without
 * committing a binary trace.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "service/sharded.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: trace_view MODE [FILE]\n"
        "\n"
        "snapshot modes (input: Snapshot::toJson(), FILE or stdin):\n"
        "  --table          render as an aligned table\n"
        "  --prom           render as Prometheus exposition text\n"
        "  --text           render as 'name = value' lines\n"
        "\n"
        "trace modes:\n"
        "  --check          validate Chrome trace JSON (FILE or stdin)\n"
        "  --demo-trace     run a deterministic sharded demo workload\n"
        "                   and print its Chrome trace JSON\n"
        "  --demo-snapshot  same workload; print its snapshot JSON\n"
        "\n"
        "exit status: 0 ok, 1 invalid input, 2 usage error\n",
        out);
}

std::string
readAll(const char *path)
{
    if (path == nullptr || std::strcmp(path, "-") == 0) {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        return ss.str();
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_view: cannot open %s\n", path);
        std::exit(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * A small fixed workload over the sharded service: enough text to cut
 * four shards, a pattern with one wildcard, several chunks per shard.
 * Deterministic by construction (no RNG, no wall-clock inputs).
 */
spm::service::ShardedMatchService &
demoService()
{
    static spm::service::ShardedConfig cfg = [] {
        spm::service::ShardedConfig c;
        c.base.alphabetBits = 2;
        c.base.chunkChars = 32;
        c.threads = 4;
        c.minShardChars = 64;
        return c;
    }();
    static spm::service::ShardedMatchService svc(cfg);
    return svc;
}

spm::service::MatchRequest
demoRequest()
{
    spm::service::MatchRequest req;
    req.id = 15;
    req.text.resize(600);
    for (std::size_t i = 0; i < req.text.size(); ++i)
        req.text[i] = static_cast<spm::Symbol>((i * 7 + 3) % 4);
    req.pattern = {1, spm::wildcardSymbol, 3};
    return req;
}

int
runDemo(bool want_trace)
{
    auto &buf = spm::telem::TraceBuffer::global();
    buf.setEnabled(true);
    buf.setCategoryMask(spm::telem::cat::all);

    spm::service::ShardedMatchService &svc = demoService();
    const spm::service::MatchResponse resp = svc.serve(demoRequest());
    if (!resp.ok()) {
        std::fprintf(stderr, "trace_view: demo serve failed: %s\n",
                     resp.error.detail.c_str());
        return 1;
    }

    if (want_trace) {
        const std::string json = buf.exportChromeJson("trace_view demo");
        const std::string err = spm::telem::validateChromeTrace(json);
        if (!err.empty()) {
            std::fprintf(stderr, "trace_view: demo trace invalid: %s\n",
                         err.c_str());
            return 1;
        }
        std::fputs(json.c_str(), stdout);
        std::fputc('\n', stdout);
    } else {
        std::fputs(svc.metricsSnapshot().toJson().c_str(), stdout);
        std::fputc('\n', stdout);
    }
    return 0;
}

int
renderSnapshot(const char *mode, const char *path)
{
    const std::string text = readAll(path);
    const std::optional<spm::telem::Snapshot> snap =
        spm::telem::Snapshot::fromJson(text);
    if (!snap) {
        std::fputs("trace_view: input is not a snapshot JSON document\n",
                   stderr);
        return 1;
    }
    if (std::strcmp(mode, "--table") == 0)
        std::fputs(snap->renderTable("telemetry snapshot").c_str(), stdout);
    else if (std::strcmp(mode, "--prom") == 0)
        std::fputs(snap->renderPrometheus().c_str(), stdout);
    else
        std::fputs(snap->renderText().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(stderr);
        return 2;
    }
    const char *mode = argv[1];
    const char *path = argc > 2 ? argv[2] : nullptr;
    if (argc > 3) {
        usage(stderr);
        return 2;
    }

    if (std::strcmp(mode, "--help") == 0 || std::strcmp(mode, "-h") == 0) {
        usage(stdout);
        return 0;
    }
    if (std::strcmp(mode, "--table") == 0 ||
        std::strcmp(mode, "--prom") == 0 || std::strcmp(mode, "--text") == 0)
        return renderSnapshot(mode, path);
    if (std::strcmp(mode, "--check") == 0) {
        const std::string err =
            spm::telem::validateChromeTrace(readAll(path));
        if (!err.empty()) {
            std::fprintf(stderr, "trace_view: invalid trace: %s\n",
                         err.c_str());
            return 1;
        }
        std::puts("trace ok");
        return 0;
    }
    if (std::strcmp(mode, "--demo-trace") == 0)
        return runDemo(true);
    if (std::strcmp(mode, "--demo-snapshot") == 0)
        return runDemo(false);

    std::fprintf(stderr, "trace_view: unknown mode %s\n", mode);
    usage(stderr);
    return 2;
}
