/**
 * @file
 * conformance_fuzz: the cross-fidelity differential fuzzer CLI.
 *
 * Default mode sweeps generated cases across the full oracle registry
 * and exits nonzero on the first report of disagreement. Every
 * failure prints two replayable case IDs (as found and as shrunk);
 * `--replay <id>` reproduces either from the single string. `--mutants`
 * runs the mutation self-check instead and fails unless every seeded
 * bug is caught.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "conformance/harness.hh"
#include "conformance/mutants.hh"
#include "conformance/oracles.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: conformance_fuzz [options]\n"
        "\n"
        "  --cases N        generated cases to sweep (default 1000)\n"
        "  --seed S         master seed (default 0xC0FFEE)\n"
        "  --seconds T      wall-clock budget; stop early when hit\n"
        "  --corpus PATH    replay a corpus file or directory instead\n"
        "  --replay ID      replay one case ID instead\n"
        "  --mutants        run the mutation self-check instead\n"
        "  --mutant-cases N cases per mutant in the self-check "
        "(default 400)\n"
        "  --focus STR      only run oracles whose name contains STR\n"
        "                   (the reference always stays)\n"
        "  --dict           shorthand for --focus dict: sweep only the\n"
        "                   multi-pattern dictionary oracles\n"
        "  --no-gate        skip the gate-level oracles\n"
        "  --no-extensions  skip the extension cross-checks\n"
        "  --no-golden      skip the golden-trace diffs\n"
        "  --list-oracles   print the oracle registry and exit\n"
        "\n"
        "exit status: 0 all checks passed, 1 disagreement or surviving\n"
        "mutant, 2 usage error\n",
        out);
}

std::uint64_t
parseU64(const char *s, const char *flag)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0') {
        std::fprintf(stderr, "conformance_fuzz: bad value for %s: %s\n",
                     flag, s);
        std::exit(2);
    }
    return v;
}

void
printReport(const spm::conformance::RunReport &report,
            const std::string &what)
{
    std::printf("%s: %llu cases, %llu cross-checks (%llu skipped), "
                "%llu extension checks, %llu golden traces, %.2fs "
                "(%.0f cases/s)%s\n",
                what.c_str(),
                static_cast<unsigned long long>(report.casesRun),
                static_cast<unsigned long long>(report.comparisons),
                static_cast<unsigned long long>(report.skipped),
                static_cast<unsigned long long>(report.extensionChecks),
                static_cast<unsigned long long>(report.goldenTraceRuns),
                report.seconds, report.casesPerSec(),
                report.timedOut ? " [time budget hit]" : "");
    for (const auto &f : report.failures)
        std::printf("%s\n", f.report().c_str());
    if (report.ok())
        std::printf("%s: all implementations agree\n", what.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    spm::conformance::HarnessConfig cfg;
    std::uint64_t mutant_cases = 400;
    bool run_mutants = false;
    bool list_oracles = false;
    std::string corpus_path;
    std::string replay_id;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "conformance_fuzz: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--cases")
            cfg.cases = parseU64(value("--cases"), "--cases");
        else if (arg == "--seed")
            cfg.seed = parseU64(value("--seed"), "--seed");
        else if (arg == "--seconds")
            cfg.timeBudgetSec =
                std::strtod(value("--seconds"), nullptr);
        else if (arg == "--corpus")
            corpus_path = value("--corpus");
        else if (arg == "--replay")
            replay_id = value("--replay");
        else if (arg == "--mutants")
            run_mutants = true;
        else if (arg == "--mutant-cases")
            mutant_cases =
                parseU64(value("--mutant-cases"), "--mutant-cases");
        else if (arg == "--focus")
            cfg.focus = value("--focus");
        else if (arg == "--dict")
            cfg.focus = "dict";
        else if (arg == "--no-gate")
            cfg.withGate = false;
        else if (arg == "--no-extensions")
            cfg.withExtensions = false;
        else if (arg == "--no-golden")
            cfg.withGoldenTraces = false;
        else if (arg == "--list-oracles")
            list_oracles = true;
        else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "conformance_fuzz: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (list_oracles) {
        for (const std::string &name :
             spm::conformance::allOracleNames(cfg.withGate))
            std::printf("%s\n", name.c_str());
        return 0;
    }

    if (run_mutants) {
        const spm::conformance::MutationReport report =
            spm::conformance::runMutationSelfCheck(cfg.seed,
                                                   mutant_cases);
        for (const auto &o : report.outcomes) {
            if (o.caught)
                std::printf("caught   %-24s after %llu case(s): %s\n",
                            o.name.c_str(),
                            static_cast<unsigned long long>(
                                o.casesTried),
                            o.shrunkId.c_str());
            else
                std::printf("SURVIVED %-24s (%s) after %llu case(s)\n",
                            o.name.c_str(), o.seededBug.c_str(),
                            static_cast<unsigned long long>(
                                o.casesTried));
        }
        std::printf("mutation self-check: %zu/%zu caught in %.2fs\n",
                    report.outcomes.size() - report.survivors(),
                    report.outcomes.size(), report.seconds);
        return report.allCaught() ? 0 : 1;
    }

    if (!replay_id.empty()) {
        const auto report =
            spm::conformance::replayCase(replay_id, cfg);
        printReport(report, "replay");
        return report.ok() ? 0 : 1;
    }

    if (!corpus_path.empty()) {
        const auto report =
            spm::conformance::runCorpus(corpus_path, cfg);
        printReport(report, "corpus");
        return report.ok() ? 0 : 1;
    }

    const auto report = spm::conformance::runFuzz(cfg);
    printReport(report, "fuzz");
    return report.ok() ? 0 : 1;
}
