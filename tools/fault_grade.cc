/**
 * @file
 * fault_grade: chip-scale stuck-at fault grading from the command
 * line.
 *
 * Builds the configured gate-level chip, collapses its stuck-at
 * universe, scores every site with SCOAP, grades the collapsed
 * classes against a seeded workload pool with the 64-wide
 * word-parallel simulator, and prints the coverage report (or, with
 * --json, a machine-readable object). The undetected-fault list
 * comes back hardest-first with SCOAP difficulties -- the chip's
 * hard-to-test nets.
 *
 * --golden fixes every knob to the committed-reference configuration
 * so the output can be diffed against tests/golden/
 * fault_grade_report.txt by scripts/check.sh, like the trace_view
 * goldens.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/grade.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/metrics.hh"

namespace
{

void
usage(std::FILE *out)
{
    std::fputs(
        "usage: fault_grade [options]\n"
        "\n"
        "  --cells N        character cells (default 8, the prototype)\n"
        "  --bits N         bits per character (default 2)\n"
        "  --pattern-len N  pattern length (default 4)\n"
        "  --text-len N     text length per workload (default 48)\n"
        "  --workloads N    pattern/text pairs in the pool (default 4)\n"
        "  --wildcard P     per-position wildcard probability "
        "(default 0.25)\n"
        "  --seed N         workload seed (default 1979)\n"
        "  --cross-check N  sampled serial cross-checks (default 64)\n"
        "  --top N          undetected faults listed (default 10)\n"
        "  --json           print a JSON report instead of text\n"
        "  --golden         fixed reference configuration (for the\n"
        "                   committed golden report)\n"
        "\n"
        "exit status: 0 ok (cross-check agreed), 1 cross-check\n"
        "mismatch, 2 usage error\n",
        out);
}

std::uint64_t
parseNum(const char *flag, const char *s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') {
        std::fprintf(stderr, "fault_grade: bad value for %s: %s\n",
                     flag, s);
        std::exit(2);
    }
    return v;
}

std::string
jsonReport(const spm::fault::GradeReport &rep, std::size_t top)
{
    char buf[256];
    std::string out = "{\n";
    auto num = [&](const char *key, double v, bool integer) {
        if (integer)
            std::snprintf(buf, sizeof buf, "  \"%s\": %.0f,\n", key, v);
        else
            std::snprintf(buf, sizeof buf, "  \"%s\": %.4f,\n", key, v);
        out += buf;
    };
    num("nodes", static_cast<double>(rep.nodes), true);
    num("devices", static_cast<double>(rep.devices), true);
    num("transistors", rep.transistors, true);
    num("sites", static_cast<double>(rep.collapse.totalSites), true);
    num("classes", static_cast<double>(rep.collapse.classCount), true);
    num("primes", static_cast<double>(rep.collapse.primeCount), true);
    num("collapse_ratio", rep.collapse.simRatio(), false);
    num("prime_ratio", rep.collapse.primeRatio(), false);
    num("difficulty_mean", rep.difficultyMean, false);
    num("difficulty_max", rep.difficultyMax, true);
    num("unreachable_sites",
        static_cast<double>(rep.unreachableSites), true);
    num("workloads", static_cast<double>(rep.workloads), true);
    num("observations", static_cast<double>(rep.totalObservations),
        true);
    num("detected_classes", static_cast<double>(rep.detectedClasses),
        true);
    num("detected_sites", static_cast<double>(rep.detectedSites), true);
    num("class_coverage_pct", rep.classCoverage(), false);
    num("site_coverage_pct", rep.siteCoverage(), false);
    num("word_batches", static_cast<double>(rep.wordBatches), true);
    num("word_evals", static_cast<double>(rep.wordEvals), true);
    num("cross_checked", static_cast<double>(rep.crossChecked), true);
    num("cross_check_mismatches",
        static_cast<double>(rep.crossCheckMismatches), true);
    out += "  \"undetected\": [";
    const std::size_t shown = top < rep.undetected.size()
        ? top
        : rep.undetected.size();
    for (std::size_t i = 0; i < shown; ++i) {
        const spm::fault::UndetectedFault &u = rep.undetected[i];
        std::snprintf(buf, sizeof buf,
                      "%s\n    {\"site\": \"%s\", \"difficulty\": %u, "
                      "\"class_size\": %zu}",
                      i == 0 ? "" : ",", u.name.c_str(), u.difficulty,
                      u.classSize);
        out += buf;
    }
    out += shown == 0 ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    spm::fault::GradeConfig cfg;
    std::size_t top = 10;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "fault_grade: %s needs a value\n", arg);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(arg, "--cells") == 0) {
            cfg.cells = parseNum(arg, value());
        } else if (std::strcmp(arg, "--bits") == 0) {
            cfg.alphabetBits =
                static_cast<spm::BitWidth>(parseNum(arg, value()));
        } else if (std::strcmp(arg, "--pattern-len") == 0) {
            cfg.patternLen = parseNum(arg, value());
        } else if (std::strcmp(arg, "--text-len") == 0) {
            cfg.textLen = parseNum(arg, value());
        } else if (std::strcmp(arg, "--workloads") == 0) {
            cfg.workloads = parseNum(arg, value());
        } else if (std::strcmp(arg, "--wildcard") == 0) {
            cfg.wildcardProb = std::atof(value());
        } else if (std::strcmp(arg, "--seed") == 0) {
            cfg.seed = parseNum(arg, value());
        } else if (std::strcmp(arg, "--cross-check") == 0) {
            cfg.crossCheckSamples = parseNum(arg, value());
        } else if (std::strcmp(arg, "--top") == 0) {
            top = parseNum(arg, value());
        } else if (std::strcmp(arg, "--json") == 0) {
            json = true;
        } else if (std::strcmp(arg, "--golden") == 0) {
            cfg = spm::fault::GradeConfig{};
            cfg.textLen = 32;
            cfg.workloads = 2;
            cfg.crossCheckSamples = 16;
            top = 8;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "fault_grade: unknown option %s\n",
                         arg);
            usage(stderr);
            return 2;
        }
    }

    // Flight-recorder dumps (the escape record, any cross-check
    // mismatch) go to stderr so stdout stays diffable.
    spm::telem::FlightRecorder::global().setDumpSink(
        [](const std::string &dump) {
            std::fputs(dump.c_str(), stderr);
            std::fputc('\n', stderr);
        });

    spm::fault::FaultGrader grader(cfg);
    const spm::fault::GradeReport rep = grader.run();

    if (json)
        std::fputs(jsonReport(rep, top).c_str(), stdout);
    else
        std::fputs(rep.renderText(top).c_str(), stdout);

    return rep.crossCheckMismatches == 0 ? 0 : 1;
}
