/**
 * @file
 * Fault-tolerance walkthrough: what the protected machine does when
 * cells start lying.
 *
 * Four scenes on the 8-cell prototype workload:
 *   1. a comparator output sticks -- the duplicated comparator flags
 *      the divergence the beat it appears;
 *   2. the same fault under TMR -- two healthy arrays outvote the
 *      faulty one and the match completes anyway;
 *   3. a transient bit flip -- detected, then cleared by one host
 *      retry because the upset does not recur;
 *   4. a cell dies outright -- retries exhaust, the wafer snake is
 *      re-harvested around the corpse and the match re-runs on the
 *      degraded N-1 cell array.
 */

#include <cstdio>

#include "fault/campaign.hh"
#include "fault/model.hh"

int
main()
{
    using namespace spm;
    using namespace spm::fault;

    CampaignConfig cfg;
    cfg.cells = 8;
    cfg.alphabetBits = 2;
    cfg.textLen = 48;
    cfg.patternLen = 4;
    cfg.wildcardProb = 0.25;
    cfg.seed = 1979;

    std::printf("workload: %zu-character text, %zu-character pattern, "
                "%zu-cell array, seed %llu\n",
                cfg.textLen, cfg.patternLen, cfg.cells,
                static_cast<unsigned long long>(cfg.seed));

    // Scene 1: stuck comparator, caught by the duplicated comparator.
    {
        CampaignConfig c = cfg;
        c.protection = Protection::none();
        c.protection.selfCheck = true;
        c.protection.referenceCheck = true;
        FaultCampaign campaign(c);
        Fault f;
        f.kind = FaultKind::StuckAt1;
        f.point = systolic::FaultPoint::CompareLatch;
        f.cell = 2;
        const TrialResult tr = campaign.runTrial(f);
        std::printf("\n1. %s\n   self-checking cell flags the "
                    "divergence: detectors=%s, outcome=%s\n",
                    f.describe().c_str(), tr.detectors().c_str(),
                    outcomeName(tr.outcome));
    }

    // Scene 2: same fault, but three arrays vote.
    {
        CampaignConfig c = cfg;
        c.protection = Protection::none();
        c.protection.tmr = true;
        c.protection.referenceCheck = true;
        FaultCampaign campaign(c);
        Fault f;
        f.kind = FaultKind::StuckAt1;
        f.point = systolic::FaultPoint::ResultLatch;
        f.cell = 0;
        const TrialResult tr = campaign.runTrial(f);
        std::printf("\n2. %s under TMR\n   the healthy lanes outvote "
                    "it in place: detectors=%s, outcome=%s, "
                    "attempts=%u\n",
                    f.describe().c_str(), tr.detectors().c_str(),
                    outcomeName(tr.outcome), tr.attempts);
    }

    // Scene 3: a transient upset, cleared by one retry.
    {
        CampaignConfig c = cfg;
        c.protection = Protection::none();
        c.protection.referenceCheck = true;
        c.protection.retry = true;
        FaultCampaign campaign(c);
        // Most random single-beat upsets land in dead time and mask;
        // sweep until one actually disturbs the protocol.
        const auto transients = sweepTransientFaults(
            c.cells, c.alphabetBits, campaign.protocolBeats(), 64, 123);
        for (const Fault &f : transients) {
            const TrialResult tr = campaign.runTrial(f);
            if (tr.outcome == Outcome::Masked)
                continue;
            std::printf("\n3. %s\n   the upset does not recur on the "
                        "re-run: outcome=%s, attempts=%u, "
                        "backoff=%llu beats\n",
                        f.describe().c_str(), outcomeName(tr.outcome),
                        tr.attempts,
                        static_cast<unsigned long long>(
                            tr.backoffBeats));
            break;
        }
    }

    // Scene 4: a dead cell, bypassed through the wafer snake.
    {
        CampaignConfig c = cfg;
        c.protection.tmr = false;
        c.retryPolicy.maxRetries = 1;
        FaultCampaign campaign(c);
        Fault f;
        f.kind = FaultKind::DeadCell;
        f.cell = 1;
        const TrialResult tr = campaign.runTrial(f);
        std::printf("\n4. %s\n   retries exhaust, the snake "
                    "re-harvests around the corpse:\n   detectors=%s, "
                    "outcome=%s, array degraded to %zu cells "
                    "(multipass absorbs the shortfall)\n",
                    f.describe().c_str(), tr.detectors().c_str(),
                    outcomeName(tr.outcome), tr.degradedCells);
    }

    std::printf("\nThe layers compose: parity watches the streams, "
                "duplication watches the\ncomparators, the vote "
                "corrects in place, the host retries what the vote\n"
                "cannot fix, and the wafer routes around what "
                "retries cannot cure.\n");
    return 0;
}
