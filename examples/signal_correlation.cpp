/**
 * @file
 * Signal correlation and FIR filtering (Section 3.4).
 *
 * Hides a known template in a noisy integer signal and finds it with
 * the systolic correlator (squared differences: minima mark
 * alignments), then smooths the same signal with a systolic FIR
 * moving-average filter -- both on the pattern matcher's data flow.
 */

#include <cstdio>
#include <vector>

#include "extensions/numarray.hh"
#include "util/rng.hh"

int
main()
{
    using namespace spm;

    // A distinctive 8-sample template.
    const std::vector<std::int64_t> tmpl = {12, -7, 30, -28,
                                            15, 40, -33, 9};

    // A noisy signal with the template planted at two offsets.
    Rng rng(2026);
    std::vector<std::int64_t> signal(400);
    for (auto &v : signal)
        v = rng.nextInRange(-20, 20);
    const std::size_t plant_a = 80, plant_b = 290;
    for (std::size_t j = 0; j < tmpl.size(); ++j) {
        signal[plant_a + j] = tmpl[j];
        signal[plant_b + j] = tmpl[j];
    }

    // Correlate: r_i = sum (s - p)^2, zero at exact alignments.
    ext::SystolicCorrelator correlator(tmpl.size());
    const auto corr = correlator.correlate(signal, tmpl);

    std::printf("correlator (squared differences, zero = exact "
                "alignment):\n");
    for (std::size_t i = tmpl.size() - 1; i < corr.size(); ++i) {
        if (corr[i] == 0) {
            std::printf("    template found ending at sample %zu "
                        "(planted at %zu)\n",
                        i, i + 1 - tmpl.size());
        }
    }

    // Nearest-miss statistics: how distinctive is the template?
    std::int64_t best_nonzero = -1;
    for (std::size_t i = tmpl.size() - 1; i < corr.size(); ++i) {
        if (corr[i] != 0 &&
            (best_nonzero < 0 || corr[i] < best_nonzero)) {
            best_nonzero = corr[i];
        }
    }
    std::printf("    closest non-match correlation: %lld (higher = "
                "more distinctive)\n\n",
                static_cast<long long>(best_nonzero));

    // FIR smoothing on the same array: a 4-tap moving sum.
    ext::SystolicFir fir;
    const std::vector<std::int64_t> taps = {1, 1, 1, 1};
    const auto smoothed = fir.fir(signal, taps);
    std::printf("FIR moving-sum filter (4 taps), first samples:\n    ");
    for (std::size_t i = 0; i < 10; ++i)
        std::printf("%lld ", static_cast<long long>(smoothed[i]));
    std::printf("...\n\n");

    // Convolution of two short sequences, same machinery.
    const auto conv = fir.convolve({1, 2, 3}, {4, 5});
    std::printf("convolve([1 2 3],[4 5]) = [ ");
    for (auto v : conv)
        std::printf("%lld ", static_cast<long long>(v));
    std::printf("]   (polynomial product)\n");

    const bool found_both =
        corr[plant_a + tmpl.size() - 1] == 0 &&
        corr[plant_b + tmpl.size() - 1] == 0;
    std::printf("\n%s\n", found_both
                              ? "Both planted templates located."
                              : "** template missed **");
    return found_both ? 0 : 1;
}
