/**
 * @file
 * Serving-layer walkthrough: the resilient streaming match service.
 *
 * Five scenes in front of the 8-cell prototype:
 *   1. a clean streaming request -- chunked over the bus, checkpointed
 *      at every chunk, answered by the primary rung;
 *   2. a malformed request -- refused at the door with a typed error,
 *      no hardware touched;
 *   3. a wedged backend -- the beat-budget watchdog cancels it and
 *      the ladder degrades to the next rung;
 *   4. a fault-injected chip -- the cross-check catches the lie and
 *      the request finishes on the software floor, still correct;
 *   5. a killed request -- resumed from its last checkpoint,
 *      bit-identical to an uninterrupted run.
 */

#include <cstdio>
#include <memory>

#include "core/reference.hh"
#include "fault/injector.hh"
#include "fault/model.hh"
#include "service/service.hh"
#include "util/rng.hh"

namespace
{

using namespace spm;
using namespace spm::service;

/** A backend that never answers: stands in for a hung device. */
class HungBackend : public ServiceBackend
{
  public:
    std::string name() const override { return "hung-device"; }

    WindowResult matchWindow(const std::vector<Symbol> &,
                             const std::vector<Symbol> &,
                             BeatWatchdog &dog) override
    {
        WindowResult wr;
        while (dog.tick(1))
            ++wr.beats;
        wr.note = "no result ever emerged";
        return wr;
    }
};

MatchRequest
exampleRequest(std::uint64_t id)
{
    WorkloadGen gen(0x5EED + id, 2);
    MatchRequest req;
    req.id = id;
    req.pattern = gen.randomPattern(4, 0.25);
    req.text = gen.textWithPlants(96, req.pattern, 9);
    return req;
}

void
describe(const char *tag, const MatchResponse &resp)
{
    if (resp.ok()) {
        std::size_t matches = 0;
        for (bool b : resp.result)
            matches += b ? 1 : 0;
        std::printf("%s request %llu completed on %s: %zu matches, "
                    "%zu chunks, %zu checkpoints, %zu degradations, "
                    "%llu beats\n",
                    tag, static_cast<unsigned long long>(resp.id),
                    resp.backend.c_str(), matches, resp.chunks,
                    resp.checkpoints, resp.degradations,
                    static_cast<unsigned long long>(resp.beats));
    } else {
        std::printf("%s request %llu failed: %s\n", tag,
                    static_cast<unsigned long long>(resp.id),
                    resp.error.toString().c_str());
    }
}

} // namespace

int
main()
{
    ServiceConfig cfg;
    cfg.cells = 8; // the fabricated prototype
    cfg.alphabetBits = 2;
    cfg.chunkChars = 24;

    // Scene 1: a clean request through the default ladder
    // (gate level -> behavioral -> software).
    {
        MatchService svc(cfg);
        std::printf("ladder:");
        for (const auto &name : svc.ladderNames())
            std::printf(" %s", name.c_str());
        std::printf("\n\n");
        describe("1.", svc.serve(exampleRequest(1)));
    }

    // Scene 2: a malformed request never reaches the hardware.
    {
        MatchService svc(cfg);
        MatchRequest bad = exampleRequest(2);
        bad.text[5] = 9; // outside the 2-bit alphabet
        describe("2.", svc.serve(bad));
    }

    // Scene 3: the primary rung hangs; the watchdog pulls the plug.
    {
        std::vector<std::unique_ptr<ServiceBackend>> ladder;
        ladder.push_back(std::make_unique<HungBackend>());
        ladder.push_back(std::make_unique<BehavioralBackend>(cfg.cells));
        ladder.push_back(std::make_unique<SoftwareBackend>());
        MatchService svc(cfg, std::move(ladder));
        const MatchResponse resp = svc.serve(exampleRequest(3));
        describe("3.", resp);
        std::printf("   watchdog trips: %llu (the hung rung was "
                    "cancelled, not waited on)\n",
                    static_cast<unsigned long long>(resp.watchdogTrips));
    }

    // Scene 4: a stuck-at fault makes the chip lie; the cross-check
    // refuses to publish the lie and the floor answers instead.
    {
        fault::FaultInjector inj(cfg.alphabetBits);
        fault::Fault f;
        f.kind = fault::FaultKind::StuckAt1;
        f.point = systolic::FaultPoint::CompareLatch;
        f.cell = 1;
        inj.addFault(f);

        auto faulty = std::make_unique<BehavioralBackend>(cfg.cells);
        faulty->setChipPrep([&inj](core::BehavioralChip &chip) {
            inj.attach(chip.engine(), fault::behavioralResolver(chip));
        });
        std::vector<std::unique_ptr<ServiceBackend>> ladder;
        ladder.push_back(std::move(faulty));
        ladder.push_back(std::make_unique<SoftwareBackend>());
        MatchService svc(cfg, std::move(ladder));

        const MatchRequest req = exampleRequest(4);
        const MatchResponse resp = svc.serve(req);
        describe("4.", resp);
        const bool correct =
            resp.ok() &&
            resp.result ==
                core::ReferenceMatcher().match(req.text, req.pattern);
        std::printf("   cross-check catches: %llu, injections landed: "
                    "%llu, final result %s\n",
                    static_cast<unsigned long long>(
                        resp.crossCheckFailures),
                    static_cast<unsigned long long>(inj.injections()),
                    correct ? "matches the reference"
                            : "WRONG (should never happen)");
    }

    // Scene 5: kill a stream mid-flight, resume from the checkpoint.
    {
        const MatchRequest req = exampleRequest(5);
        MatchService golden(cfg);
        const MatchResponse uninterrupted = golden.serve(req);

        MatchService svc(cfg);
        StreamSession session = svc.startSession(req);
        session.step();
        session.step(); // two chunks committed, then the plug is pulled
        const Checkpoint cp = session.checkpoint();
        session.cancel("operator abort");
        describe("5.", session.finish());

        MatchService fresh(cfg);
        const MatchResponse resumed = fresh.resume(req, cp);
        describe("  ", resumed);
        std::printf("   resumed from offset %zu; output %s the "
                    "uninterrupted run\n",
                    cp.offset,
                    resumed.ok() && resumed.result == uninterrupted.result
                        ? "bit-identical to"
                        : "DIFFERS from (should never happen)");
    }

    std::printf("\nThe serving layer composes the repo's layers: the "
                "bus paces and parity-checks\nthe stream, the watchdog "
                "bounds every window in beats, checkpoints make the\n"
                "stream restartable, and the ladder trades fidelity "
                "for availability without\never trading away "
                "correctness.\n");
    return 0;
}
