/**
 * @file
 * Wafer-scale integration demo (Section 5).
 *
 * Fabricates a simulated wafer of pattern matcher cell sites with a
 * realistic defect rate, harvests one long linear array by routing
 * around the bad sites, and compares the result with dicing the
 * wafer into conventional chips -- the paper's closing argument for
 * regular, modular algorithms.
 */

#include <cstdio>

#include "flow/wafer.hh"

int
main()
{
    using namespace spm::flow;

    const unsigned side = 32;
    const double defect_rate = 0.08;
    const Wafer wafer(side, side, defect_rate, 8086);

    std::printf("wafer: %ux%u sites, %.0f%% defect rate, %zu good "
                "cells\n\n",
                side, side, 100 * defect_rate, wafer.goodCells());

    // A small corner of the defect map.
    std::printf("defect map (top-left 16x16; '#' = defective):\n");
    for (unsigned r = 0; r < 16; ++r) {
        std::printf("    ");
        for (unsigned c = 0; c < 16; ++c)
            std::printf("%c", wafer.isGood(r, c) ? '.' : '#');
        std::printf("\n");
    }

    const auto harvest = wafer.snakeHarvest();
    std::printf("\nsnake reconfiguration:\n");
    std::printf("    harvested array:  %zu cells (%.1f%% of sites)\n",
                harvest.chainLength, 100 * harvest.harvestRatio);
    std::printf("    bypassed sites:   %zu\n", harvest.skips);
    std::printf("    longest bypass:   %zu cell pitches of wire\n",
                harvest.longestJump);

    const std::size_t chips = wafer.dicedChips(64);
    std::printf("\ndicing into 64-cell chips instead:\n");
    std::printf("    fully working chips: %zu of %u  (expected "
                "yield (1-p)^64 = %.1f%%)\n",
                chips, side * side / 64,
                100 * Wafer::expectedChipYield(64, defect_rate));
    std::printf("    cells delivered:     %zu vs %zu harvested\n",
                chips * 64, harvest.chainLength);

    std::printf("\nWith %zu cells in one array, the wafer matches "
                "patterns of up to %zu\ncharacters at full rate -- "
                "reconfiguration turns defects into a wiring\n"
                "problem, which regularity makes easy (Section 5).\n",
                harvest.chainLength, harvest.chainLength);
    return 0;
}
