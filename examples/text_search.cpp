/**
 * @file
 * Text search: the SNOBOL / database / office-automation scenario.
 *
 * Section 3.1 motivates the chip with "SNOBOL-like languages",
 * "database query languages" and "office automation systems". This
 * example searches a document over the full byte alphabet with wild
 * card queries, comparing the systolic chip against the software the
 * host would otherwise run.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "baselines/naive.hh"
#include "core/behavioral.hh"
#include "core/hostbus.hh"
#include "util/strings.hh"

namespace
{

const char *document =
    "The design of the pattern matching chip took only about two "
    "man-months. We should see many designs for special purpose "
    "chips appearing in the near future. Special-purpose chips can "
    "be used as peripheral devices attached to a conventional host "
    "computer. The resulting system can be considered as an "
    "efficient general-purpose computer, if many types of chips are "
    "attached. By concentrating on algorithms, chips of good "
    "performance and fairly small area can be constructed with "
    "minimal design time.";

/** Compile a query with '?' wild cards into a symbol pattern. */
std::vector<spm::Symbol>
compileQuery(const std::string &query)
{
    std::vector<spm::Symbol> pattern;
    for (char c : query) {
        pattern.push_back(c == '?' ? spm::wildcardSymbol
                                   : spm::Symbol(
                                         static_cast<unsigned char>(c)));
    }
    return pattern;
}

void
showMatches(const std::string &doc, const std::vector<bool> &r,
            std::size_t query_len)
{
    for (std::size_t i = 0; i < r.size(); ++i) {
        if (!r[i])
            continue;
        const std::size_t start = i + 1 - query_len;
        std::printf("    at %4zu: \"%s\"\n", start,
                    doc.substr(start, query_len).c_str());
    }
}

} // namespace

int
main()
{
    using namespace spm;
    const std::string doc(document);
    const auto text = bytesToSymbols(doc);

    const char *queries[] = {
        "chip",        // plain substring
        "ch?ps",       // wild card inside a word
        "c??put",      // computer / computed stems
        "design?",     // design + any following character
    };

    core::HostBusModel bus(prototypeBeatPs, 8);
    std::printf("document: %zu characters; chip rate: %.1f M "
                "chars/s (250 ns beats)\n\n",
                text.size(), bus.chipCharsPerSec() / 1e6);

    for (const char *q : queries) {
        const auto pattern = compileQuery(q);
        core::BehavioralMatcher chip(pattern.size());
        baselines::NaiveMatcher naive;

        const auto chip_r = chip.match(text, pattern);
        const auto naive_r = naive.match(text, pattern);

        std::size_t hits = 0;
        for (bool b : chip_r)
            hits += b;
        std::printf("query \"%s\": %zu match(es), %llu beats "
                    "(%.1f us of chip time)%s\n",
                    q, hits,
                    static_cast<unsigned long long>(chip.lastBeats()),
                    bus.secondsForBeats(chip.lastBeats()) * 1e6,
                    chip_r == naive_r ? "" : "  ** MISMATCH **");
        showMatches(doc, chip_r, pattern.size());
    }

    std::printf("\nAt one character per beat the chip outruns a "
                "Unibus-class host\n(%s: %s) -- the Section 1 "
                "claim.\n",
                core::hostPdp11().name.c_str(),
                bus.chipOutrunsHost(core::hostPdp11())
                    ? "chip is faster than the host can feed it"
                    : "host keeps up");
    return 0;
}
