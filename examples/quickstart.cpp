/**
 * @file
 * Quickstart: match a wild card pattern with the systolic chip.
 *
 * Builds the paper's own example (pattern AXC, Section 3.1) at all
 * three fidelity levels -- behavioral, bit-serial, gate-level -- and
 * shows they produce the same result stream.
 */

#include <cstdio>

#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/gatechip.hh"
#include "util/strings.hh"

int
main()
{
    using namespace spm;

    // The problem of Section 3.1: text and a pattern with the wild
    // card character X.
    const auto text = parseSymbols("ABCAACCACB");
    const auto pattern = parseSymbols("AXC");

    std::printf("text:    %s\n", renderSymbols(text).c_str());
    std::printf("pattern: %s\n\n", renderSymbols(pattern).c_str());

    // Three fidelity levels of the same chip.
    core::BehavioralMatcher behavioral;          // character cells
    core::BitSerialMatcher bit_serial(0, 2);     // Fig 3-4 pipeline
    core::GateLevelMatcher gate_level(0, 2);     // Fig 3-6 circuits

    const auto r1 = behavioral.match(text, pattern);
    const auto r2 = bit_serial.match(text, pattern);
    const auto r3 = gate_level.match(text, pattern);

    std::printf("behavioral:  r_i set at positions {%s}\n",
                renderMatchPositions(r1).c_str());
    std::printf("bit-serial:  r_i set at positions {%s}\n",
                renderMatchPositions(r2).c_str());
    std::printf("gate-level:  r_i set at positions {%s}\n",
                renderMatchPositions(r3).c_str());

    std::printf("\nbeats used:  %llu (one character enters per "
                "250 ns beat)\n",
                static_cast<unsigned long long>(
                    behavioral.lastBeats()));
    std::printf("agreement:   %s\n",
                (r1 == r2 && r2 == r3) ? "all three levels agree"
                                       : "MISMATCH");
    return (r1 == r2 && r2 == r3) ? 0 : 1;
}
