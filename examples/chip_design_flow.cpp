/**
 * @file
 * The design methodology, end to end (Section 4).
 *
 * Runs the Figure 4-1 flow for the prototype chip (8 cells x 2-bit
 * characters): task schedule, cell circuits, stick diagrams (ASCII),
 * DRC-checked layouts, the assembled die, area report, and CIF ready
 * for mask making, written to pattern_matcher.cif.
 */

#include <cstdio>
#include <fstream>

#include "flow/designflow.hh"
#include "layout/cif.hh"

int
main()
{
    using namespace spm;
    using namespace spm::flow;

    std::printf("Figure 4-1 task dependency graph:\n\n%s\n",
                figure41Graph().render().c_str());

    std::printf("Executing the flow for the prototype "
                "(8 cells x 2-bit characters)...\n\n");
    const DesignFlowResult result = runDesignFlow(8, 2);

    for (const FlowStep &s : result.steps)
        std::printf("  %-32s %s\n", s.task.c_str(),
                    s.artifact.c_str());

    std::printf("\nStick diagram of the positive comparator "
                "(cf. Plate 1):\n%s\n",
                result.cellSticks[0].renderAscii().c_str());

    std::printf("Area report:\n%s\n",
                result.report.toString(2.5).c_str());

    if (!result.drcViolations.empty()) {
        std::printf("DRC violations:\n");
        for (const auto &v : result.drcViolations)
            std::printf("  %s\n", v.c_str());
        return 1;
    }
    std::printf("DRC: clean\n");

    const char *cif_path = "pattern_matcher.cif";
    std::ofstream out(cif_path);
    out << result.cif;
    out.close();
    std::printf("CIF written to %s (%zu bytes) -- ready for mask "
                "making.\n",
                cif_path, result.cif.size());
    return 0;
}
