/**
 * @file
 * The five-chip cascade of Figure 3-7, and the multipass fallback.
 *
 * Five 8-cell chips wired pin to pin match a 40-character wild card
 * pattern no single chip could hold; the same pattern is then run on
 * a single chip with the Section 3.4 multipass technique, showing
 * the time/hardware trade.
 */

#include <cstdio>

#include "core/cascade.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "util/rng.hh"
#include "util/strings.hh"

int
main()
{
    using namespace spm;
    using namespace spm::core;

    // A 40-character pattern with wild cards over a 4-symbol
    // alphabet, planted in 2000 characters of text.
    WorkloadGen gen(1979, 2);
    const auto pattern = gen.randomPattern(40, 0.2);
    const auto text = gen.textWithPlants(2000, pattern, 400);

    std::printf("pattern (40 chars): %s\n",
                renderSymbols(pattern).c_str());

    ReferenceMatcher ref;
    const auto want = ref.match(text, pattern);
    std::size_t expected = 0;
    for (bool b : want)
        expected += b;
    std::printf("expected matches in 2000 chars: %zu\n\n", expected);

    // Figure 3-7: five chips, 8 cells each, one linear array.
    CascadeMatcher cascade(5, 8);
    const auto got = cascade.match(text, pattern);
    std::printf("five-chip cascade (5 x 8 cells):\n");
    std::printf("    correct: %s\n", got == want ? "yes" : "NO");
    std::printf("    beats:   %llu  (%.2f per character)\n",
                static_cast<unsigned long long>(cascade.lastBeats()),
                static_cast<double>(cascade.lastBeats()) / 2000.0);
    std::printf("    pins:    %u per chip (pattern/string/control/"
                "result in+out, clocks, power)\n\n",
                ChipCascade::pinsPerChip(2));

    // Section 3.4 fallback: one 8-cell chip, pattern run through the
    // system repeatedly with the string delayed between runs.
    MultipassMatcher multipass(8);
    const auto mp = multipass.match(text, pattern);
    std::printf("single 8-cell chip, multipass:\n");
    std::printf("    correct: %s\n", mp == want ? "yes" : "NO");
    std::printf("    runs:    %zu\n", multipass.lastRuns());
    std::printf("    beats:   %llu  (%.1fx the cascade)\n",
                static_cast<unsigned long long>(multipass.lastBeats()),
                static_cast<double>(multipass.lastBeats()) /
                    static_cast<double>(cascade.lastBeats()));

    std::printf("\nModularity in action: capacity scales by adding "
                "chips at a constant\ndata rate; too little hardware "
                "is paid for in passes (Section 3.4).\n");
    return (got == want && mp == want) ? 0 : 1;
}
