/**
 * @file
 * The Figure 1-1 vision: special-purpose chips as peripherals.
 *
 * "Special-purpose VLSI chips can be used as peripheral devices
 * attached to a conventional host computer. The resulting system can
 * be considered as an efficient general-purpose computer, if many
 * types of chips are attached." This example attaches three systolic
 * peripherals -- a pattern matcher, a correlator, and an FIR filter
 * -- to one modeled host and runs a mixed workload through them,
 * with bus-time accounting per device.
 */

#include <cstdio>
#include <vector>

#include "core/behavioral.hh"
#include "core/hostbus.hh"
#include "extensions/numarray.hh"
#include "util/rng.hh"
#include "util/strings.hh"

int
main()
{
    using namespace spm;

    core::HostBusModel bus(prototypeBeatPs, 8);
    const core::HostProfile &host = core::hostVax780();
    std::printf("host: %s (%.1f MB/s memory), chips at 250 ns "
                "beats\n\n",
                host.name.c_str(), host.bandwidthBytesPerSec / 1e6);

    double total_chip_seconds = 0.0;

    // Peripheral 1: the pattern matcher scans a log for a wild card
    // query.
    {
        WorkloadGen gen(1, 4);
        const auto pattern = gen.randomPattern(12, 0.25);
        const auto text = gen.textWithPlants(50000, pattern, 997);
        core::BehavioralMatcher matcher(pattern.size());
        const auto r = matcher.match(text, pattern);
        std::size_t hits = 0;
        for (bool b : r)
            hits += b;
        const double secs = bus.secondsForBeats(matcher.lastBeats());
        total_chip_seconds += secs;
        std::printf("[pattern matcher]  50000 chars, %zu matches, "
                    "%.2f ms of chip time\n",
                    hits, secs * 1e3);
    }

    // Peripheral 2: the correlator locates a template in a sensor
    // trace.
    {
        Rng rng(2);
        std::vector<std::int64_t> trace(20000), tmpl(16);
        for (auto &v : trace)
            v = rng.nextInRange(-100, 100);
        for (auto &v : tmpl)
            v = rng.nextInRange(-100, 100);
        for (std::size_t j = 0; j < tmpl.size(); ++j)
            trace[13000 + j] = tmpl[j];
        ext::SystolicCorrelator correlator(tmpl.size());
        const auto corr = correlator.correlate(trace, tmpl);
        std::size_t best = tmpl.size() - 1;
        for (std::size_t i = best; i < corr.size(); ++i) {
            if (corr[i] < corr[best])
                best = i;
        }
        // Correlator beats mirror the matcher's: ~2 per sample.
        const double secs =
            bus.secondsForBeats(2 * trace.size() + tmpl.size());
        total_chip_seconds += secs;
        std::printf("[correlator]       20000 samples, template "
                    "found ending at %zu (planted 13015), "
                    "%.2f ms\n",
                    best, secs * 1e3);
    }

    // Peripheral 3: the FIR chip smooths the same class of signal.
    {
        Rng rng(3);
        std::vector<std::int64_t> signal(10000);
        for (auto &v : signal)
            v = rng.nextInRange(-100, 100);
        ext::SystolicFir fir;
        const std::vector<std::int64_t> taps = {1, 2, 3, 2, 1};
        const auto smoothed = fir.fir(signal, taps);
        const double secs =
            bus.secondsForBeats(2 * signal.size() + taps.size());
        total_chip_seconds += secs;
        std::printf("[FIR filter]       10000 samples, 5 taps, "
                    "first outputs: %lld %lld %lld..., %.2f ms\n",
                    static_cast<long long>(smoothed[0]),
                    static_cast<long long>(smoothed[1]),
                    static_cast<long long>(smoothed[2]), secs * 1e3);
    }

    std::printf("\ntotal chip time for the mixed workload: %.2f ms\n",
                total_chip_seconds * 1e3);
    std::printf("host-limited rate on this machine: %.2f M text "
                "chars/s (chip demand %.2f MB/s)\n",
                bus.effectiveTextCharsPerSec(host) / 1e6,
                bus.chipDemandBytesPerSec() / 1e6);
    std::printf("\nOne host, three algorithm-shaped peripherals: "
                "the Figure 1-1 system.\n");
    return 0;
}
