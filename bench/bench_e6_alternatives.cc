/**
 * @file
 * E6 -- Section 3.3.1: the design alternatives, quantified.
 *
 * The paper rejects fast sequential algorithms (dynamic
 * communication, no wild cards), broadcast machines (channel fanout)
 * and static one-directional arrays (loading time). This bench puts
 * numbers on each objection: software wall time, hardware beat
 * counts, loading overhead, and broadcast cost under the RC model.
 */

#include "bench/bench_common.hh"

#include <chrono>
#include <functional>

#include "baselines/boyermoore.hh"
#include "baselines/broadcast.hh"
#include "baselines/fftmatch.hh"
#include "baselines/kmp.hh"
#include "baselines/naive.hh"
#include "baselines/staticarray.hh"
#include "core/behavioral.hh"
#include "core/reference.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using namespace spm::baselines;
using spm::bench::makeMatchWorkload;

double
wallMs(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void
printReport()
{
    spm::bench::banner(
        "E6: algorithm alternatives (Section 3.3.1)",
        "Software baselines vs hardware organizations on one "
        "workload; each row quantifies the objection the paper "
        "raises against that alternative.");

    const std::size_t n = 20000, k = 16;
    const auto wild = makeMatchWorkload(n, k, 4, 0.25);
    const auto exact = makeMatchWorkload(n, k, 4, 0.0, 0xFACE);
    ReferenceMatcher ref;
    const auto want_wild = ref.match(wild.text, wild.pattern);
    const auto want_exact = ref.match(exact.text, exact.pattern);

    Table table("Matchers on n=20000, k+1=16 (software: host wall "
                "time; hardware: simulated beats)");
    table.setHeader({"matcher", "wild cards", "wall ms", "beats",
                     "load beats", "agrees", "paper's objection"});

    auto add_soft = [&](Matcher &m, bool wildcards,
                        const char *objection) {
        const auto &w = wildcards ? wild : exact;
        const auto &want = wildcards ? want_wild : want_exact;
        std::vector<bool> got;
        const double ms =
            wallMs([&] { got = m.match(w.text, w.pattern); });
        table.addRowOf(m.name(), wildcards ? "yes" : "no",
                       Table::fixed(ms, 2), "-", "-",
                       got == want ? "yes" : "NO", objection);
    };

    NaiveMatcher naive;
    add_soft(naive, true, "O(nk) comparisons on the host");
    KmpMatcher kmp;
    add_soft(kmp, false,
             "no wild cards; dynamic communication if hardwired");
    BoyerMooreMatcher bm;
    add_soft(bm, false, "no wild cards; data-dependent skips");
    FftMatcher fftm;
    add_soft(fftm, true, "superlinear time (Fischer-Paterson)");

    {
        BroadcastMatcher bc;
        std::vector<bool> got;
        const double ms =
            wallMs([&] { got = bc.match(wild.text, wild.pattern); });
        table.addRowOf(
            bc.name(), "yes", Table::fixed(ms, 2), bc.lastBeats(),
            bc.lastLoadBeats(), got == want_wild ? "yes" : "NO",
            "broadcast fanout: beat stretches to " +
                std::to_string(bc.lastCost().stretchedBeatPs(
                                   prototypeBeatPs) /
                               1000) +
                " ns or power x" +
                std::to_string(static_cast<int>(
                    bc.lastCost().driverPowerUnits())));
    }
    {
        StaticArrayMatcher sa;
        std::vector<bool> got;
        const double ms =
            wallMs([&] { got = sa.match(wild.text, wild.pattern); });
        table.addRowOf(sa.name(), "yes", Table::fixed(ms, 2),
                       sa.lastBeats(), sa.lastLoadBeats(),
                       got == want_wild ? "yes" : "NO",
                       "static pattern: loading time + circuitry");
    }
    {
        BehavioralMatcher chip(k);
        std::vector<bool> got;
        const double ms =
            wallMs([&] { got = chip.match(wild.text, wild.pattern); });
        table.addRowOf(chip.name(), "yes", Table::fixed(ms, 2),
                       chip.lastBeats(), 0,
                       got == want_wild ? "yes" : "NO",
                       "(chosen design: local wiring, no loading)");
    }
    table.print();

    Table fanout("Broadcast channel cost vs array size "
                 "(first-order RC model)");
    fanout.setHeader({"cells", "stretched beat ns",
                      "slowdown vs 250 ns", "driver power units"});
    for (std::size_t cells : {8u, 16u, 64u, 256u}) {
        const BroadcastCost cost{cells};
        const auto ns = cost.stretchedBeatPs(prototypeBeatPs) / 1000;
        fanout.addRowOf(cells, ns,
                        Table::fixed(static_cast<double>(ns) / 250.0,
                                     1),
                        Table::fixed(cost.driverPowerUnits(), 0));
    }
    fanout.print();
    std::printf(
        "\nShape check: only the systolic design combines wild\n"
        "cards, zero loading, and per-beat cost independent of k.\n");
}

void
softwareBaseline(benchmark::State &state)
{
    const auto w = makeMatchWorkload(8192, 16, 4, 0.0, 7);
    std::vector<std::unique_ptr<Matcher>> ms;
    ms.push_back(std::make_unique<NaiveMatcher>());
    ms.push_back(std::make_unique<KmpMatcher>());
    ms.push_back(std::make_unique<BoyerMooreMatcher>());
    ms.push_back(std::make_unique<FftMatcher>());
    Matcher &m = *ms[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        auto r = m.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(m.name());
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 8192);
}

BENCHMARK(softwareBaseline)->DenseRange(0, 3);

} // namespace

SPM_BENCH_MAIN(printReport)
