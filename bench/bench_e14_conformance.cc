/**
 * @file
 * E14 -- cross-fidelity conformance: differential fuzzing throughput
 * and detection power.
 *
 * The paper's whole methodology rests on one algorithm surviving
 * translation through every design level unchanged. E14 quantifies
 * how hard that claim is being tested: the structured fuzz sweep's
 * case rate across the full oracle registry (reference, behavioral
 * array, bit-serial, multipass, word-parallel, gate-level x2,
 * cascade, sharded service x3), the committed regression corpus, and
 * the mutation self-check -- five seeded bugs the harness must catch
 * or the fuzzing proves nothing.
 *
 * Acceptance: the sweep runs clean across all configurations, every
 * corpus case replays clean, and zero mutants survive.
 */

#include "bench/bench_common.hh"

#include <string>

#include "conformance/harness.hh"
#include "conformance/mutants.hh"
#include "conformance/oracles.hh"
#include "util/table.hh"

#ifndef SPM_CORPUS_DIR
#define SPM_CORPUS_DIR "tests/corpus"
#endif

namespace
{

using namespace spm;
using namespace spm::conformance;

void
printReport()
{
    spm::bench::banner(
        "E14: cross-fidelity conformance (differential fuzzing)",
        "Every Matcher realization diffed against the reference on "
        "structured hard-region cases,\nwith per-beat golden traces, "
        "extension cross-checks, a committed corpus, and a\nmutation "
        "self-check that must catch all five seeded bugs.");

    // --- the oracle registry ----------------------------------------
    {
        Table t("Oracle registry (entry 0 is the trusted reference)");
        t.setHeader({"#", "configuration"});
        const auto names = allOracleNames(true);
        for (std::size_t i = 0; i < names.size(); ++i)
            t.addRowOf(std::to_string(i), names[i]);
        t.print();
    }

    // --- fuzz throughput --------------------------------------------
    HarnessConfig cfg;
    cfg.cases = spm::bench::smokeMode() ? 500 : 20'000;
    const RunReport fuzz = runFuzz(cfg);
    std::printf(
        "\nFuzz sweep: %llu cases, %llu cross-checks (%llu skipped "
        "by eligibility/stride),\n%llu extension checks, %llu golden "
        "traces, %.2f s -> %.0f cases/s, %zu failure(s).\n",
        static_cast<unsigned long long>(fuzz.casesRun),
        static_cast<unsigned long long>(fuzz.comparisons),
        static_cast<unsigned long long>(fuzz.skipped),
        static_cast<unsigned long long>(fuzz.extensionChecks),
        static_cast<unsigned long long>(fuzz.goldenTraceRuns),
        fuzz.seconds, fuzz.casesPerSec(), fuzz.failures.size());
    for (const Failure &f : fuzz.failures)
        std::printf("%s\n", f.report().c_str());

    // --- corpus replay ----------------------------------------------
    const RunReport corpus = runCorpus(SPM_CORPUS_DIR, cfg);
    std::printf(
        "\nCorpus replay (%s): %llu cases, %llu cross-checks, "
        "%zu failure(s).\n",
        SPM_CORPUS_DIR,
        static_cast<unsigned long long>(corpus.casesRun),
        static_cast<unsigned long long>(corpus.comparisons),
        corpus.failures.size());
    for (const Failure &f : corpus.failures)
        std::printf("%s\n", f.report().c_str());

    // --- mutation self-check ----------------------------------------
    const MutationReport mut = runMutationSelfCheck(
        cfg.seed, spm::bench::smokeMode() ? 200 : 2000);
    {
        Table t("Mutation self-check: seeded bugs the harness must "
                "catch");
        t.setHeader({"mutant", "seeded bug", "fate", "cases",
                     "shrunk reproduction"});
        for (const MutantOutcome &o : mut.outcomes)
            t.addRowOf(o.name, o.seededBug,
                       o.caught ? "caught" : "SURVIVED",
                       std::to_string(o.casesTried),
                       o.caught ? o.shrunkId : "-");
        t.print();
    }
    std::printf("\n%zu/%zu mutants caught in %.2f s (acceptance: "
                "zero survivors).\n",
                mut.outcomes.size() - mut.survivors(),
                mut.outcomes.size(), mut.seconds);

    const bool ok =
        fuzz.ok() && corpus.ok() && mut.allCaught() && corpus.casesRun > 0;
    std::printf("\nE14 verdict: %s\n",
                ok ? "all implementations agree, all mutants caught"
                   : "FAILED (see above)");

    spm::bench::jsonReport().set("e14_cases",
                                 static_cast<double>(fuzz.casesRun));
    spm::bench::jsonReport().set("e14_cases_per_sec",
                                 fuzz.casesPerSec());
    spm::bench::jsonReport().set(
        "e14_cross_checks", static_cast<double>(fuzz.comparisons));
    spm::bench::jsonReport().set(
        "e14_corpus_cases", static_cast<double>(corpus.casesRun));
    spm::bench::jsonReport().set(
        "e14_mutants_total", static_cast<double>(mut.outcomes.size()));
    spm::bench::jsonReport().set(
        "e14_mutants_caught",
        static_cast<double>(mut.outcomes.size() - mut.survivors()));
    spm::bench::jsonReport().set("e14_failures",
                                 static_cast<double>(
                                     fuzz.failures.size() +
                                     corpus.failures.size()));
}

void
fuzzSweepFullRegistry(benchmark::State &state)
{
    HarnessConfig cfg;
    cfg.cases = 64;
    for (auto _ : state) {
        cfg.seed += 1; // fresh cases every iteration
        benchmark::DoNotOptimize(runFuzz(cfg).comparisons);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * cfg.cases);
}

void
fuzzSweepNoGate(benchmark::State &state)
{
    HarnessConfig cfg;
    cfg.cases = 64;
    cfg.withGate = false;
    for (auto _ : state) {
        cfg.seed += 1;
        benchmark::DoNotOptimize(runFuzz(cfg).comparisons);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * cfg.cases);
}

void
corpusReplay(benchmark::State &state)
{
    const HarnessConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            runCorpus(SPM_CORPUS_DIR, cfg).comparisons);
    }
}

BENCHMARK(fuzzSweepFullRegistry)->Unit(benchmark::kMillisecond);
BENCHMARK(fuzzSweepNoGate)->Unit(benchmark::kMillisecond);
BENCHMARK(corpusReplay)->Unit(benchmark::kMillisecond);

} // namespace

SPM_BENCH_MAIN(printReport)
