/**
 * @file
 * E19 -- multi-pattern dictionary matching: what fusing a dictionary
 * through the bit-sliced plane sweep buys over p independent scans,
 * and where the Aho-Corasick software tier sits next to it.
 *
 * Four measurements:
 *
 *   fused sweep    one BitSlicedDictMatcher pass over the whole
 *                  dictionary vs p independent word-parallel scans of
 *                  the same text (the realization a p-chip deployment
 *                  of the paper's design would need), at dictionary
 *                  sizes 1 / 8 / 64, with the Aho-Corasick automaton
 *                  timed alongside as the classical software tier;
 *   plane dedup    the fused sweep vs its no-dedup ablation on a
 *                  suffix-sharing dictionary -- how many trie nodes,
 *                  equality masks and word ops the dedup pass removes
 *                  while the hit set stays bit-identical;
 *   dict service   the DictMatchService front end (validation, bus
 *                  charging, telemetry) over the same work, one-shot
 *                  and chunked;
 *   agreement      every fused result is cross-checked against the
 *                  Aho-Corasick automaton (an independent
 *                  implementation) before a number is reported.
 *
 * The report writes every headline number to BENCH_E19.json
 * (override with --json <path>; --smoke shrinks the sweep for CI).
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>

#include "core/wordpar.hh"
#include "multipattern/acmatch.hh"
#include "multipattern/dict.hh"
#include "multipattern/planes.hh"
#include "service/dictserve.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::multipattern;
using spm::bench::jsonReport;
using spm::bench::smokeMode;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Best-of-3 wall-clock seconds. */
double
bestOf(const std::function<void()> &fn, int reps = 3)
{
    double best = 1e300;
    for (int i = 0; i < reps; ++i)
        best = std::min(best, secondsOf(fn));
    return best;
}

/**
 * A literal dictionary of @p count k=8 members over a 2-bit alphabet
 * whose members cycle through 8 shared 4-character suffixes -- the
 * rule-set shape (common endings, distinct stems) the suffix-trie
 * dedup targets.  Literal so the Aho-Corasick leg covers every
 * member.
 */
DictPatterns
makeDict(std::size_t count, std::uint64_t seed = 0xE19D1C7)
{
    constexpr std::size_t k = 8;
    constexpr std::size_t shared = 4;
    Rng rng(seed);
    std::vector<std::vector<Symbol>> suffixes(8);
    for (auto &s : suffixes) {
        s.resize(shared);
        for (Symbol &c : s)
            c = static_cast<Symbol>(rng.nextBelow(4));
    }
    DictPatterns dict(count);
    for (std::size_t i = 0; i < count; ++i) {
        dict[i].resize(k);
        for (std::size_t j = 0; j < k - shared; ++j)
            dict[i][j] = static_cast<Symbol>(rng.nextBelow(4));
        const auto &suf = suffixes[i % suffixes.size()];
        std::copy(suf.begin(), suf.end(),
                  dict[i].begin() + (k - shared));
    }
    return dict;
}

/** Text with members of @p dict planted throughout. */
std::vector<Symbol>
makeText(std::size_t n, const DictPatterns &dict,
         std::uint64_t seed = 0xE19733)
{
    Rng rng(seed);
    std::vector<Symbol> text(n);
    for (Symbol &c : text)
        c = static_cast<Symbol>(rng.nextBelow(4));
    if (!dict.empty()) {
        for (std::size_t at = rng.nextBelow(32); at + 8 <= n;
             at += 24 + rng.nextBelow(48)) {
            const auto &m = dict[rng.nextBelow(dict.size())];
            std::copy(m.begin(), m.end(),
                      text.begin() + static_cast<std::ptrdiff_t>(at));
        }
    }
    return text;
}

void
fusedSweepReport()
{
    const std::size_t n = smokeMode() ? 16384 : 1048576;
    const std::vector<std::size_t> sizes{1, 8, 64};

    Table table("Fused dictionary sweep vs independent scans "
                "(2-bit alphabet, k = 8, text n = " +
                std::to_string(n) + ")");
    table.setHeader({"dict size", "indep Mchars/s", "fused Mchars/s",
                     "AC Mchars/s", "fused speedup", "agrees"});
    double p64_speedup = 0;
    for (const std::size_t p : sizes) {
        const DictPatterns dict = makeDict(p);
        const std::vector<Symbol> text = makeText(n, dict);

        // The independent baseline: one word-parallel scan per
        // member, the cost of p single-pattern deployments.
        core::WordParallelMatcher wp;
        const double s_indep = bestOf([&] {
            for (const auto &member : dict) {
                auto r = wp.match(text, member);
                benchmark::DoNotOptimize(r);
            }
        });

        BitSlicedDictMatcher planes;
        DictHits fused;
        const double s_fused =
            bestOf([&] { fused = planes.matchAll(text, dict); });

        const AhoCorasickAutomaton automaton(dict);
        DictHits ac;
        const double s_ac =
            bestOf([&] { ac = automaton.matchAll(text); });

        const bool agrees = fused == ac;
        const double cs_i = static_cast<double>(n) / s_indep;
        const double cs_f = static_cast<double>(n) / s_fused;
        const double cs_a = static_cast<double>(n) / s_ac;
        const double speedup = s_indep / s_fused;
        if (p == 64)
            p64_speedup = speedup;
        table.addRowOf(p, Table::fixed(cs_i / 1e6, 2),
                       Table::fixed(cs_f / 1e6, 2),
                       Table::fixed(cs_a / 1e6, 2),
                       Table::fixed(speedup, 1), agrees ? "yes" : "NO");
        const std::string key = "dict.p" + std::to_string(p) + ".";
        jsonReport().set(key + "independent_chars_per_sec", cs_i);
        jsonReport().set(key + "fused_chars_per_sec", cs_f);
        jsonReport().set(key + "ac_chars_per_sec", cs_a);
        jsonReport().set(key + "fused_speedup_vs_independent", speedup);
        jsonReport().set(key + "agrees", agrees ? "yes" : "no");
    }
    table.print();
    std::printf("\nShape check: the fused sweep shares the transpose, "
                "the equality\nmasks and every common suffix chain "
                "across members, so at 64\npatterns it must be at "
                "least 2x the cost of 64 independent scans\n(measured "
                "%.1fx).\n",
                p64_speedup);
}

void
dedupAblationReport()
{
    const std::size_t n = smokeMode() ? 16384 : 262144;
    const std::size_t p = 64;
    const DictPatterns dict = makeDict(p);
    const std::vector<Symbol> text = makeText(n, dict);

    BitSlicedDictMatcher with(true);
    BitSlicedDictMatcher without(false);
    DictHits h_with;
    DictHits h_without;
    const double s_with =
        bestOf([&] { h_with = with.matchAll(text, dict); });
    const double s_without =
        bestOf([&] { h_without = without.matchAll(text, dict); });
    const bool agrees = h_with == h_without;

    Table table("Plane dedup ablation (64 members sharing 8 "
                "4-character suffixes, n = " + std::to_string(n) + ")");
    table.setHeader({"variant", "trie nodes", "eq masks", "Mword ops",
                     "Mchars/s"});
    table.addRowOf("dedup", with.lastTrieNodes(), with.lastEqMasks(),
                   Table::fixed(static_cast<double>(with.lastWordOps()) /
                                    1e6, 2),
                   Table::fixed(static_cast<double>(n) / s_with / 1e6,
                                2));
    table.addRowOf("no dedup", without.lastTrieNodes(),
                   without.lastEqMasks(),
                   Table::fixed(static_cast<double>(
                                    without.lastWordOps()) / 1e6, 2),
                   Table::fixed(static_cast<double>(n) / s_without / 1e6,
                                2));
    table.print();

    const double node_factor =
        static_cast<double>(without.lastTrieNodes()) /
        static_cast<double>(std::max<std::size_t>(1,
                                                  with.lastTrieNodes()));
    jsonReport().set("dict.dedup.trie_nodes",
                     static_cast<double>(with.lastTrieNodes()));
    jsonReport().set("dict.dedup.nodedup_nodes",
                     static_cast<double>(without.lastTrieNodes()));
    jsonReport().set("dict.dedup.node_factor", node_factor);
    jsonReport().set("dict.dedup.eq_masks",
                     static_cast<double>(with.lastEqMasks()));
    jsonReport().set("dict.dedup.agrees", agrees ? "yes" : "no");
    std::printf("\nShape check: dedup must change cost only -- the "
                "hit sets are\nbit-identical (%s) while the trie "
                "carries %.1fx fewer AND nodes\nthan 64 private "
                "chains.\n",
                agrees ? "verified" : "VIOLATED", node_factor);
}

void
dictServiceReport()
{
    const std::size_t n = smokeMode() ? 16384 : 262144;
    const std::size_t p = 64;
    const DictPatterns dict = makeDict(p);
    const std::vector<Symbol> text = makeText(n, dict);

    service::DictServiceConfig cfg;
    cfg.base.alphabetBits = 2;
    cfg.base.maxTextLen = n * 2;
    service::DictMatchService svc(cfg);

    service::DictMatchService::DictMatchResult res;
    const double s_oneshot =
        bestOf([&] { res = svc.matchDict(text, dict); });
    const bool ok = res.ok();

    // The chunked path: one session, 4 KiB chunks with carry replay.
    const std::size_t chunk = 4096;
    double s_chunked = 1e300;
    bool chunked_ok = true;
    std::uint64_t chunked_hits = 0;
    for (int rep = 0; rep < 3; ++rep) {
        s_chunked = std::min(s_chunked, secondsOf([&] {
            service::DictError err;
            service::DictSession session = svc.openSession(dict, err);
            chunked_ok = chunked_ok && !err;
            chunked_hits = 0;
            for (std::size_t off = 0; off < n; off += chunk) {
                const std::size_t take = std::min(chunk, n - off);
                const std::vector<Symbol> piece(
                    text.begin() + static_cast<std::ptrdiff_t>(off),
                    text.begin() +
                        static_cast<std::ptrdiff_t>(off + take));
                const auto r = svc.feedChunk(session, piece);
                chunked_ok = chunked_ok && r.ok();
                chunked_hits += r.hits.totalHits();
            }
        }));
    }
    chunked_ok = chunked_ok && chunked_hits == res.totalHits;

    const double cs_one = static_cast<double>(n) / s_oneshot;
    const double cs_chk = static_cast<double>(n) / s_chunked;
    Table table("DictMatchService (64 members, n = " +
                std::to_string(n) + ")");
    table.setHeader({"path", "Mchars/s", "total hits", "ok"});
    table.addRowOf("one-shot", Table::fixed(cs_one / 1e6, 2),
                   res.totalHits, ok ? "yes" : "NO");
    table.addRowOf("chunked (4 KiB)", Table::fixed(cs_chk / 1e6, 2),
                   chunked_hits, chunked_ok ? "yes" : "NO");
    table.print();

    jsonReport().set("dict.service.chars_per_sec", cs_one);
    jsonReport().set("dict.service.chunked_chars_per_sec", cs_chk);
    jsonReport().set("dict.service.total_hits",
                     static_cast<double>(res.totalHits));
    jsonReport().set("dict.service.all_ok",
                     ok && chunked_ok ? "yes" : "no");
    std::printf("\nShape check: the serving layer (validation, bus "
                "charging,\ntelemetry, carry replay) rides on the "
                "same fused sweep; the chunked\npath must report the "
                "same total hit count as one-shot matching.\n");
}

void
printReport()
{
    spm::bench::jsonDefaultPath("BENCH_E19.json");
    spm::bench::banner(
        "E19: multi-pattern dictionary matching",
        "A dictionary fused through the bit-sliced plane sweep -- "
        "shared transpose, shared character-class masks, shared "
        "suffix-trie AND chains -- against p independent scans and "
        "the Aho-Corasick software tier, plus the dictionary serving "
        "path over the same work.");
    fusedSweepReport();
    dedupAblationReport();
    dictServiceReport();
}

void
fusedDictThroughput(benchmark::State &state)
{
    const auto p = static_cast<std::size_t>(state.range(0));
    const std::size_t n = 65536;
    const DictPatterns dict = makeDict(p);
    const std::vector<Symbol> text = makeText(n, dict);
    BitSlicedDictMatcher planes;
    for (auto _ : state) {
        auto r = planes.matchAll(text, dict);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void
acThroughput(benchmark::State &state)
{
    const auto p = static_cast<std::size_t>(state.range(0));
    const std::size_t n = 65536;
    const DictPatterns dict = makeDict(p);
    const std::vector<Symbol> text = makeText(n, dict);
    const AhoCorasickAutomaton automaton(dict);
    for (auto _ : state) {
        auto r = automaton.matchAll(text);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

BENCHMARK(fusedDictThroughput)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(acThroughput)->Arg(8)->Arg(64);

} // namespace

SPM_BENCH_MAIN(printReport)
