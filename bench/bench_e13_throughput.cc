/**
 * @file
 * E13 -- throughput fast paths: how fast can the simulator stack
 * answer the Section 3.1 problem when raw chars/sec is the goal?
 *
 * Three fast paths are measured against the engines they shadow:
 *
 *   word-parallel  the bit-sliced kernel (64 text positions per
 *                  machine word) vs the scalar behavioral array and
 *                  the reference definition;
 *   sharded        the multi-threaded service front end vs the
 *                  single-stream service, in wall-clock chars/sec and
 *                  in critical-path beats (the slowest shard -- the
 *                  repo's figure of merit, immune to the host's core
 *                  count);
 *   levelized      the compiled gate-sim pass vs the event-driven
 *                  worklist, in device evaluations and wall time.
 *
 * The report writes every headline number to BENCH_E13.json
 * (override with --json <path>; --smoke shrinks the sweep for CI).
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "core/behavioral.hh"
#include "core/gatechip.hh"
#include "core/reference.hh"
#include "core/wordpar.hh"
#include "service/sharded.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using spm::bench::jsonReport;
using spm::bench::makeMatchWorkload;
using spm::bench::smokeMode;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Wall-clock chars/sec of one match call, best of @p reps. */
template <typename MatcherT>
double
charsPerSec(MatcherT &m, const spm::bench::MatchWorkload &w,
            int reps = 3)
{
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        std::vector<bool> r;
        const double s = secondsOf(
            [&] { r = m.match(w.text, w.pattern); });
        benchmark::DoNotOptimize(r);
        best = std::min(best, s);
    }
    return static_cast<double>(w.text.size()) / best;
}

service::ShardedConfig
shardedConfig(unsigned threads, std::size_t text_len)
{
    service::ShardedConfig cfg;
    cfg.base.alphabetBits = 2;
    cfg.base.maxTextLen = std::max<std::size_t>(text_len, 1) * 2;
    cfg.base.chunkChars = 512;
    cfg.base.crossCheck = false; // measure serving, not auditing
    cfg.base.journalEnabled = false;
    cfg.threads = threads;
    cfg.minShardChars = 1024;
    return cfg;
}

void
wordParallelReport()
{
    const std::size_t big = smokeMode() ? 16384 : 1048576;
    const std::vector<std::size_t> sizes =
        smokeMode() ? std::vector<std::size_t>{4096, big}
                    : std::vector<std::size_t>{65536, 262144, big};
    const std::size_t k = 8;

    Table table("Word-parallel kernel vs scalar engines "
                "(2-bit alphabet, k = 8, 12% wild cards)");
    table.setHeader({"text chars", "behavioral Mchars/s",
                     "reference Mchars/s", "word-par Mchars/s",
                     "speedup vs behavioral", "agrees"});
    double big_speedup = 0;
    for (const std::size_t n : sizes) {
        const auto w = makeMatchWorkload(n, k, 2, 0.12);
        BehavioralMatcher behav(k);
        ReferenceMatcher ref;
        WordParallelMatcher wp;

        const double cs_b = charsPerSec(behav, w);
        const double cs_r = charsPerSec(ref, w);
        const double cs_w = charsPerSec(wp, w);
        const bool agrees = wp.match(w.text, w.pattern) ==
                            ref.match(w.text, w.pattern);
        const double speedup = cs_w / cs_b;
        if (n == big)
            big_speedup = speedup;
        table.addRowOf(n, Table::fixed(cs_b / 1e6, 2),
                       Table::fixed(cs_r / 1e6, 2),
                       Table::fixed(cs_w / 1e6, 2),
                       Table::fixed(speedup, 1), agrees ? "yes" : "NO");
        const std::string p = "wordpar.n" + std::to_string(n) + ".";
        jsonReport().set(p + "behavioral_chars_per_sec", cs_b);
        jsonReport().set(p + "reference_chars_per_sec", cs_r);
        jsonReport().set(p + "wordpar_chars_per_sec", cs_w);
        jsonReport().set(p + "speedup_vs_behavioral", speedup);
        jsonReport().set(p + "agrees", agrees ? "yes" : "no");
    }
    table.print();
    jsonReport().set("wordpar.big_text_chars", static_cast<double>(big));
    jsonReport().set("wordpar.big_speedup_vs_behavioral", big_speedup);
    std::printf("\nShape check: the word-parallel kernel is %.0fx the\n"
                "scalar behavioral array on the %zu-char text\n"
                "(acceptance floor: 10x on 1 MB in a Release build).\n",
                big_speedup, big);
}

void
wordparArenaReport()
{
    // The arena satellite: a reused matcher instance must stop paying
    // the per-call plane/eq/result allocations. Measured as a burst
    // of back-to-back calls on a mid-size text -- cold constructs a
    // fresh matcher per call, warm reuses one -- plus a direct check
    // that the arena footprint goes quiescent after the first call.
    const std::size_t n = smokeMode() ? 4096 : 65536;
    const int calls = smokeMode() ? 40 : 200;
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);

    double cold_s = 1e300;
    double warm_s = 1e300;
    WordParallelMatcher warm;
    warm.match(w.text, w.pattern); // size the arena
    const std::size_t bytes_after_first = warm.arenaBytes();
    for (int rep = 0; rep < 3; ++rep) {
        cold_s = std::min(cold_s, secondsOf([&] {
            for (int i = 0; i < calls; ++i) {
                WordParallelMatcher cold;
                auto r = cold.match(w.text, w.pattern);
                benchmark::DoNotOptimize(r);
            }
        }));
        warm_s = std::min(warm_s, secondsOf([&] {
            for (int i = 0; i < calls; ++i) {
                auto r = warm.match(w.text, w.pattern);
                benchmark::DoNotOptimize(r);
            }
        }));
    }
    const double total = static_cast<double>(n) * calls;
    const double cs_cold = total / cold_s;
    const double cs_warm = total / warm_s;
    const bool stable = warm.arenaBytes() == bytes_after_first;

    Table table("Word-parallel arena reuse (burst of " +
                std::to_string(calls) + " calls, n = " +
                std::to_string(n) + ")");
    table.setHeader({"mode", "Mchars/s", "arena stable"});
    table.addRowOf("cold (fresh matcher/call)",
                   Table::fixed(cs_cold / 1e6, 2), "-");
    table.addRowOf("warm (reused arena)", Table::fixed(cs_warm / 1e6, 2),
                   stable ? "yes" : "NO");
    table.print();

    jsonReport().set("wordpar.arena_cold_chars_per_sec", cs_cold);
    jsonReport().set("wordpar.arena_warm_chars_per_sec", cs_warm);
    jsonReport().set("wordpar.arena_warm_speedup", cs_warm / cs_cold);
    jsonReport().set("wordpar.arena_stable", stable ? "yes" : "no");
    std::printf("\nShape check: a warm matcher is %.2fx a cold one on "
                "%d-call bursts,\nand its arena footprint is %s after "
                "the first call.\n",
                cs_warm / cs_cold, calls,
                stable ? "quiescent" : "STILL GROWING");
}

void
shardedReport()
{
    const std::size_t n = smokeMode() ? 8192 : 262144;
    const std::size_t k = 8;
    const auto w = makeMatchWorkload(n, k, 2, 0.12);
    service::MatchRequest req;
    req.id = 13;
    req.text = w.text;
    req.pattern = w.pattern;

    Table table("Sharded service scaling (software rung, text n = " +
                std::to_string(n) + ")");
    table.setHeader({"threads", "shards", "wall Mchars/s",
                     "critical beats", "total beats",
                     "critical-path speedup"});
    Beat base_critical = 0;
    double scaling = 0;
    for (const unsigned threads : {1u, 2u, 4u}) {
        service::ShardedMatchService svc(shardedConfig(threads, n));
        service::MatchResponse resp;
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep)
            best = std::min(best,
                            secondsOf([&] { resp = svc.serve(req); }));
        if (!resp.ok()) {
            std::printf("sharded serve failed: %s\n",
                        resp.error.detail.c_str());
            return;
        }
        if (threads == 1)
            base_critical = svc.lastCriticalBeats();
        const double speedup =
            static_cast<double>(base_critical) /
            static_cast<double>(svc.lastCriticalBeats());
        if (threads == 4)
            scaling = speedup;
        const double cs = static_cast<double>(n) / best;
        table.addRowOf(threads, svc.lastShards(),
                       Table::fixed(cs / 1e6, 2),
                       svc.lastCriticalBeats(), svc.lastTotalBeats(),
                       Table::fixed(speedup, 2));
        const std::string p =
            "sharded.threads" + std::to_string(threads) + ".";
        jsonReport().set(p + "shards",
                         static_cast<double>(svc.lastShards()));
        jsonReport().set(p + "wall_chars_per_sec", cs);
        jsonReport().set(p + "critical_beats",
                         static_cast<double>(svc.lastCriticalBeats()));
        jsonReport().set(p + "total_beats",
                         static_cast<double>(svc.lastTotalBeats()));
    }
    table.print();
    jsonReport().set("sharded.critical_path_speedup_1_to_4", scaling);
    std::printf(
        "\nShape check: critical-path beats (the slowest shard; what a\n"
        "host with one chip per shard waits for) improve %.2fx from 1\n"
        "to 4 threads (acceptance floor: 3x). Wall-clock chars/sec\n"
        "only tracks that figure when the host has 4 idle cores; this\n"
        "machine has %u.\n",
        scaling, std::thread::hardware_concurrency());
}

void
levelizedReport()
{
    const std::size_t n = smokeMode() ? 24 : 48;
    const std::size_t k = 4;
    const auto w = makeMatchWorkload(n, k, 2, 0.0);

    GateLevelMatcher event(k, 2);
    GateLevelMatcher lev(k, 2);
    lev.setUseLevelized(true);
    ReferenceMatcher ref;

    std::vector<bool> r_event, r_lev;
    const double s_event =
        secondsOf([&] { r_event = event.match(w.text, w.pattern); });
    const double s_lev =
        secondsOf([&] { r_lev = lev.match(w.text, w.pattern); });
    const bool agrees = r_event == r_lev &&
                        r_lev == ref.match(w.text, w.pattern);

    Table table("Gate-level settle: event-driven vs levelized "
                "(text n = " + std::to_string(n) + ", k = 4, 2 bits)");
    table.setHeader({"engine", "device evals", "wall ms", "agrees"});
    table.addRowOf("event-driven", event.lastEvals(),
                   Table::fixed(s_event * 1e3, 1), "yes");
    table.addRowOf("levelized", lev.lastEvals(),
                   Table::fixed(s_lev * 1e3, 1), agrees ? "yes" : "NO");
    table.print();

    const double eval_ratio = static_cast<double>(event.lastEvals()) /
                              static_cast<double>(lev.lastEvals());
    jsonReport().set("levelized.event_evals",
                     static_cast<double>(event.lastEvals()));
    jsonReport().set("levelized.levelized_evals",
                     static_cast<double>(lev.lastEvals()));
    jsonReport().set("levelized.eval_ratio", eval_ratio);
    jsonReport().set("levelized.agrees", agrees ? "yes" : "no");
    std::printf("\nShape check: the compiled pass settles the same "
                "netlist with %.2fx\nfewer (or equal) device "
                "evaluations, bit-identically.\n", eval_ratio);
}

void
printReport()
{
    spm::bench::jsonDefaultPath("BENCH_E13.json");
    spm::bench::banner(
        "E13: throughput fast paths (word-parallel, sharded, levelized)",
        "Bit-identical fast paths for the three layers: a bit-sliced "
        "kernel evaluating 64 text positions per word, a sharded "
        "multi-threaded service, and a compiled gate-sim pass.");
    wordParallelReport();
    wordparArenaReport();
    shardedReport();
    levelizedReport();
}

void
wordparThroughput(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    WordParallelMatcher wp;
    for (auto _ : state) {
        auto r = wp.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void
behavioralThroughput(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    BehavioralMatcher chip(8);
    for (auto _ : state) {
        auto r = chip.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void
shardedThroughput(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    const std::size_t n = 65536;
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    service::ShardedMatchService svc(shardedConfig(threads, n));
    service::MatchRequest req;
    req.text = w.text;
    req.pattern = w.pattern;
    for (auto _ : state) {
        auto resp = svc.serve(req);
        benchmark::DoNotOptimize(resp);
    }
    state.counters["critical_beats"] =
        static_cast<double>(svc.lastCriticalBeats());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void
gateSettle(benchmark::State &state)
{
    const bool levelized = state.range(0) != 0;
    const auto w = makeMatchWorkload(32, 4, 2, 0.0);
    GateLevelMatcher m(4, 2);
    m.setUseLevelized(levelized);
    for (auto _ : state) {
        auto r = m.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.counters["device_evals"] = static_cast<double>(m.lastEvals());
}

BENCHMARK(wordparThroughput)->Arg(65536)->Arg(1048576);
BENCHMARK(behavioralThroughput)->Arg(65536);
BENCHMARK(shardedThroughput)->Arg(1)->Arg(4);
BENCHMARK(gateSettle)->Arg(0)->Arg(1);

} // namespace

SPM_BENCH_MAIN(printReport)
