/**
 * @file
 * A1 -- ablations of the Section 3.3 design decisions.
 *
 * DESIGN.md calls out four choices the paper argues qualitatively;
 * this bench prices each one:
 *
 *  1. dynamic vs static shift registers (Section 3.3.3);
 *  2. random logic vs PLA cell implementation (Section 3.3.3);
 *  3. clocked vs self-timed data flow (Section 3.3.2);
 *  4. combining neighbor cells to share circuitry (Section 3.3.2).
 */

#include "bench/bench_common.hh"

#include "gate/pla.hh"
#include "gate/stdcells.hh"
#include "systolic/selftimed.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::gate;

unsigned
staticStageTransistors()
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    const NodeId shift = net.addNode("shift");
    net.markInput(in);
    net.markInput(clk);
    net.markInput(shift);
    buildStaticShiftStage(net, "s", in, clk, shift);
    return net.transistorCount();
}

unsigned
dynamicStageTransistors()
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    net.markInput(in);
    net.markInput(clk);
    buildShiftStage(net, "d", in, clk);
    return net.transistorCount();
}

unsigned
randomLogicAccumulatorTransistors()
{
    Netlist net;
    const NodeId clk_a = net.addNode("clkA");
    const NodeId clk_b = net.addNode("clkB");
    net.markInput(clk_a);
    net.markInput(clk_b);
    AccumulatorPorts ports;
    ports.lambdaIn = net.addNode("l");
    ports.xIn = net.addNode("x");
    ports.dIn = net.addNode("d");
    ports.rIn = net.addNode("r");
    ports.lambdaOut = net.addNode("lo");
    ports.xOut = net.addNode("xo");
    ports.rOut = net.addNode("ro");
    net.markInput(ports.lambdaIn);
    net.markInput(ports.xIn);
    net.markInput(ports.dIn);
    net.markInput(ports.rIn);
    buildAccumulator(net, "acc", ports, clk_a, clk_b, true);
    return net.transistorCount();
}

void
printReport()
{
    spm::bench::banner(
        "A1: Section 3.3 design decision ablations",
        "Each alternative the paper weighed, priced in transistors "
        "or nanoseconds under this repository's models.");

    // 1. Dynamic vs static registers.
    Table regs("Shift register stage (Section 3.3.3)");
    regs.setHeader({"implementation", "transistors/stage", "inverts",
                    "extra control", "survives clock stall"});
    regs.addRowOf("dynamic (Fig 3-5, chosen)",
                  dynamicStageTransistors(), "yes", "none",
                  "no (~1 ms retention)");
    regs.addRowOf("static (regenerating)", staticStageTransistors(),
                  "no", "shift signal", "yes (indefinitely)");
    regs.print();

    // 2. Random logic vs PLA for the accumulator core.
    Table logic("Accumulator implementation (Section 3.3.3)");
    logic.setHeader({"style", "transistors", "note"});
    logic.addRowOf("random logic (chosen)",
                   randomLogicAccumulatorTransistors(),
                   "whole cell incl. latches and t loop");
    logic.addRowOf("PLA (combinational core only)",
                   accumulatorPlaSpec().transistorEstimate(),
                   "excl. latches; wins only for complex cells");
    logic.print();

    // 3. Clocked vs self-timed across array sizes.
    Table timing("Data flow control (Section 3.3.2): time for 10^4 "
                 "beats, mean cell delay 100 ns, jitter 25 ns, "
                 "handshake 15 ns, skew 0.5 ns/cell");
    timing.setHeader({"cells", "clock period ns", "clocked ms",
                      "self-timed ms", "winner"});
    for (std::size_t cells : {8u, 32u, 128u, 512u, 2048u}) {
        systolic::SelfTimedModel::Config cfg;
        cfg.cells = cells;
        cfg.seed = cells;
        systolic::SelfTimedModel model(cfg);
        const double clocked = model.clockedCompletionNs(10000) / 1e6;
        const double self_timed =
            model.selfTimedCompletionNs(10000) / 1e6;
        timing.addRowOf(cells, Table::fixed(model.clockPeriodNs(), 1),
                        Table::fixed(clocked, 2),
                        Table::fixed(self_timed, 2),
                        clocked <= self_timed ? "clocked"
                                              : "self-timed");
    }
    timing.print();

    // 4. Cell pairing: sharing the equality gate between the active
    // and idle neighbor (Section 3.3.2).
    const unsigned xnor_cost =
        Device::transistorCount(DeviceKind::Xnor2);
    // A 2:1 multiplexer on both comparator inputs plus select wiring:
    // two AND-OR-invert muxes at ~6 transistors each.
    const unsigned mux_cost = 12;
    Table pairing("Combining neighbor comparators (Section 3.3.2)");
    pairing.setHeader({"quantity", "transistors"});
    pairing.addRowOf("equality gate saved per pair", xnor_cost);
    pairing.addRowOf("multiplexing added per pair", mux_cost);
    pairing.addRowOf("net saving per pair",
                     static_cast<int>(xnor_cost) -
                         static_cast<int>(mux_cost));
    pairing.print();
    std::printf(
        "\nShape check: every ablation lands where the paper did --\n"
        "dynamic registers and random logic win at this cell size,\n"
        "the common clock wins at 8 cells (and loses by ~2000),\n"
        "and pairing saves nothing once the mux is paid for\n"
        "('The pattern matcher cells are too small to profit').\n");
}

void
selfTimedRecurrence(benchmark::State &state)
{
    systolic::SelfTimedModel::Config cfg;
    cfg.cells = static_cast<std::size_t>(state.range(0));
    systolic::SelfTimedModel model(cfg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.selfTimedCompletionNs(100));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100 *
        state.range(0));
}

BENCHMARK(selfTimedRecurrence)->Arg(64)->Arg(512);

} // namespace

SPM_BENCH_MAIN(printReport)
