/**
 * @file
 * E16 -- chip-scale fault grading: structural collapsing, SCOAP
 * scoring, and 64-wide word-parallel fault simulation.
 *
 * Serial fault grading runs the full match protocol once per stuck-at
 * fault; the word-parallel simulator replays a captured stimulus
 * trace with 64 faults forced at once, one per bit lane. This
 * experiment regenerates the grading headline numbers:
 *
 *   collapse   universe -> equivalence classes -> prime faults, with
 *              the shrink ratios (the CI gate requires >= 1.5x);
 *   coverage   detected share of classes and of the uncollapsed
 *              universe under the seeded mixed-length pattern pool;
 *   speed      faults/sec graded serially vs word-parallel on the
 *              same trace, and the speedup (the CI gate requires
 *              >= 20x);
 *   agreement  randomized serial cross-check of lane verdicts, which
 *              must agree 100%.
 *
 * The report writes BENCH_E16.json (override with --json <path>;
 * --smoke shrinks the timing sample counts for CI).
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <chrono>
#include <functional>

#include "core/gatechip.hh"
#include "fault/grade.hh"
#include "telemetry/flightrec.hh"

namespace
{

using namespace spm;
using spm::bench::jsonReport;
using spm::bench::smokeMode;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

fault::GradeConfig
gradeConfig()
{
    fault::GradeConfig cfg; // the 1979 prototype chip shape
    cfg.crossCheckSamples = smokeMode() ? 16 : 64;
    return cfg;
}

/** Shared fixture: one captured workload and the collapsed universe. */
struct Fixture
{
    fault::GradeConfig cfg;
    core::GateChip probe;
    fault::CollapseResult collapse;
    std::vector<fault::FaultSite> reps;
    fault::GradedWorkload workload;

    Fixture()
        : cfg(gradeConfig()), probe(cfg.cells, cfg.alphabetBits)
    {
        collapse = fault::collapseFaults(probe.netlist(),
                                         {probe.resultNode()});
        reps = collapse.representativeSites();
        WorkloadGen gen(cfg.seed, cfg.alphabetBits);
        std::vector<Symbol> pattern =
            gen.randomPattern(cfg.patternLen, cfg.wildcardProb);
        std::vector<Symbol> text = gen.textWithPlants(
            cfg.textLen, pattern, cfg.textLen / 3);
        workload = fault::captureWorkload(cfg, std::move(pattern),
                                          std::move(text));
    }

    std::vector<fault::FaultSite> batchOf64() const
    {
        return {reps.begin(),
                reps.begin() +
                    std::min<std::size_t>(64, reps.size())};
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
printReport()
{
    spm::bench::jsonDefaultPath("BENCH_E16.json");
    bench::banner(
        "E16: chip-scale fault grading",
        "Structural collapsing shrinks the stuck-at universe >= 1.5x;"
        " the 64-wide word-parallel simulator grades >= 20x faster\n"
        "than serial single-fault protocol runs and agrees with them"
        " on every sampled verdict.");

    // Flight dumps (the escape record) go to stderr, keeping the
    // report parseable.
    telem::FlightRecorder::global().setDumpSink(
        [](const std::string &) {});

    Fixture &fx = fixture();

    // Full grading pipeline (collapse, SCOAP, pool, cross-check).
    fault::FaultGrader grader(fx.cfg);
    const fault::GradeReport rep = grader.run();
    std::fputs(rep.renderText(5).c_str(), stdout);

    // Timing: same trace, same faults, serial vs word-parallel.
    const std::vector<fault::FaultSite> batch = fx.batchOf64();
    const std::size_t serialSample = smokeMode() ? 4 : 16;
    const std::size_t wordRepeats = smokeMode() ? 2 : 8;

    const double serialSec = secondsOf([&] {
        for (std::size_t i = 0; i < serialSample; ++i)
            fault::serialDetect(fx.cfg, batch[i % batch.size()],
                                fx.workload);
    });
    const double serialPerFault =
        serialSec / static_cast<double>(serialSample);

    fault::WordFaultSim sim(fx.probe.netlist());
    const double wordSec = secondsOf([&] {
        for (std::size_t r = 0; r < wordRepeats; ++r)
            sim.run(fx.workload.trace, batch,
                    fx.workload.goldenPerOp);
    });
    const double wordPerFault = wordSec /
        static_cast<double>(wordRepeats * batch.size());
    const double speedup = wordPerFault > 0
        ? serialPerFault / wordPerFault
        : 0.0;

    std::printf("\nspeed: serial %.0f faults/sec, word-parallel %.0f "
                "faults/sec, speedup x%.1f\n",
                1.0 / serialPerFault, 1.0 / wordPerFault, speedup);

    jsonReport().set("faultgrade.cells",
                     static_cast<double>(fx.cfg.cells));
    jsonReport().set("faultgrade.bits",
                     static_cast<double>(fx.cfg.alphabetBits));
    jsonReport().set("faultgrade.sites",
                     static_cast<double>(rep.collapse.totalSites));
    jsonReport().set("faultgrade.classes",
                     static_cast<double>(rep.collapse.classCount));
    jsonReport().set("faultgrade.primes",
                     static_cast<double>(rep.collapse.primeCount));
    jsonReport().set("faultgrade.collapse_ratio",
                     rep.collapse.simRatio());
    jsonReport().set("faultgrade.prime_ratio",
                     rep.collapse.primeRatio());
    jsonReport().set("faultgrade.class_coverage_pct",
                     rep.classCoverage());
    jsonReport().set("faultgrade.site_coverage_pct",
                     rep.siteCoverage());
    jsonReport().set("faultgrade.cross_checked",
                     static_cast<double>(rep.crossChecked));
    jsonReport().set("faultgrade.cross_check_agrees",
                     rep.crossCheckMismatches == 0 ? "yes" : "NO");
    jsonReport().set("faultgrade.serial_faults_per_sec",
                     1.0 / serialPerFault);
    jsonReport().set("faultgrade.word_faults_per_sec",
                     1.0 / wordPerFault);
    jsonReport().set("faultgrade.word_speedup", speedup);
}

void
BM_serialSingleFault(benchmark::State &state)
{
    Fixture &fx = fixture();
    const std::vector<fault::FaultSite> batch = fx.batchOf64();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fault::serialDetect(
            fx.cfg, batch[i++ % batch.size()], fx.workload));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_serialSingleFault)->Unit(benchmark::kMillisecond);

void
BM_wordBatch64(benchmark::State &state)
{
    Fixture &fx = fixture();
    const std::vector<fault::FaultSite> batch = fx.batchOf64();
    fault::WordFaultSim sim(fx.probe.netlist());
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(
            fx.workload.trace, batch, fx.workload.goldenPerOp));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * batch.size()));
}
BENCHMARK(BM_wordBatch64)->Unit(benchmark::kMillisecond);

} // namespace

SPM_BENCH_MAIN(printReport)
