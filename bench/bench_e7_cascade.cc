/**
 * @file
 * E7 -- Figure 3-7: cascades and the multipass fallback.
 *
 * "A cascade of k chips with n cells each can match patterns of up
 * to kn characters." The report scales chip count at fixed cells per
 * chip, verifies cascade == monolithic beat for beat, prices the pin
 * budget, and quantifies the multipass penalty when the pattern
 * exceeds the total cell count.
 */

#include "bench/bench_common.hh"

#include "core/behavioral.hh"
#include "core/cascade.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using spm::bench::makeMatchWorkload;

void
printReport()
{
    spm::bench::banner(
        "E7: multi-chip cascades and multipass (Fig 3-7)",
        "Chips wired pin to pin form one long array; capacity scales "
        "linearly with chip count at constant data rate.");

    const std::size_t cells_per_chip = 8;
    Table table("Cascade scaling (8 cells per chip, text n = 4000)");
    table.setHeader({"chips", "max k+1", "pattern used", "beats",
                     "beats/char", "== monolithic", "pins/chip"});
    for (std::size_t chips : {1u, 2u, 3u, 5u, 8u}) {
        const std::size_t cap = chips * cells_per_chip;
        const auto w = makeMatchWorkload(4000, cap, 2, 0.25);
        CascadeMatcher cascade(chips, cells_per_chip);
        BehavioralMatcher mono(cap);
        const auto got = cascade.match(w.text, w.pattern);
        const auto want = mono.match(w.text, w.pattern);
        table.addRowOf(
            chips, cap, w.pattern.size(), cascade.lastBeats(),
            Table::fixed(static_cast<double>(cascade.lastBeats()) /
                             4000.0,
                         3),
            (got == want && cascade.lastBeats() == mono.lastBeats())
                ? "yes"
                : "NO",
            ChipCascade::pinsPerChip(2));
    }
    table.print();

    Table mp("Multipass when the pattern exceeds the system "
             "(16-cell system, text n = 2000)");
    mp.setHeader({"pattern k+1", "runs", "total beats", "beats/char",
                  "slowdown vs fitting array"});
    for (std::size_t k : {8u, 16u, 32u, 64u, 128u}) {
        const auto w = makeMatchWorkload(2000, k, 2, 0.25);
        MultipassMatcher mpm(16);
        BehavioralMatcher fitting(k);
        ReferenceMatcher ref;
        const auto got = mpm.match(w.text, w.pattern);
        const auto want = ref.match(w.text, w.pattern);
        fitting.match(w.text, w.pattern);
        mp.addRowOf(
            k, mpm.lastRuns(), mpm.lastBeats(),
            Table::fixed(static_cast<double>(mpm.lastBeats()) / 2000.0,
                         2),
            got == want
                ? Table::fixed(
                      static_cast<double>(mpm.lastBeats()) /
                          static_cast<double>(fitting.lastBeats()),
                      1)
                : "WRONG");
    }
    mp.print();
    std::printf(
        "\nShape check: cascade beat counts equal the monolithic\n"
        "array's (extensibility is free); multipass pays a factor\n"
        "that grows with ceil(starts / cells), the cost of too\n"
        "little hardware.\n");
}

void
cascadeMatch(benchmark::State &state)
{
    const auto chips = static_cast<std::size_t>(state.range(0));
    const auto w = makeMatchWorkload(1000, chips * 8, 2, 0.25);
    CascadeMatcher cascade(chips, 8);
    for (auto _ : state) {
        auto r = cascade.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}

BENCHMARK(cascadeMatch)->Arg(1)->Arg(2)->Arg(4);

void
multipassMatch(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto w = makeMatchWorkload(1000, k, 2, 0.25);
    MultipassMatcher mp(16);
    for (auto _ : state) {
        auto r = mp.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}

BENCHMARK(multipassMatch)->Arg(16)->Arg(64);

} // namespace

SPM_BENCH_MAIN(printReport)
