/**
 * @file
 * E20 -- request observability overhead: what does the reqobs layer
 * (stage clocks, SLO log-histograms, exemplar reservoirs) cost?
 *
 * The reqobs contract is stricter than E15's general telemetry gate:
 * the per-request layer must stay within 2% end to end when enabled,
 * and exactly 0% under SPM_TELEM_OFF (StageClock compiles to empty
 * inline bodies; the observer registers nothing). Three measurements:
 *
 *   end to end     the streaming service serves the same request with
 *                  sampling runtime-enabled and runtime-disabled, in
 *                  adjacent alternating pairs (see E15 for why the
 *                  min per-pair ratio beats independent best-of);
 *   batch          the same discipline over the batched front end,
 *                  where one observation amortizes over a whole pass
 *                  so the per-stream cost is near zero;
 *   micro          ns per StageClock mark and per LogHistogram sample.
 *
 * The report writes BENCH_E20.json (override with --json <path>;
 * --smoke shrinks the sweep for CI).
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <chrono>
#include <functional>

#include "service/batch.hh"
#include "service/service.hh"
#include "telemetry/metrics.hh"
#include "telemetry/reqobs.hh"
#include "telemetry/telem.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using spm::bench::jsonReport;
using spm::bench::makeMatchWorkload;
using spm::bench::smokeMode;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
compiledOut()
{
#ifdef SPM_TELEM_OFF
    return true;
#else
    return false;
#endif
}

service::ServiceConfig
serviceConfig(std::size_t text_len)
{
    service::ServiceConfig cfg;
    cfg.alphabetBits = 2;
    cfg.maxTextLen = std::max<std::size_t>(text_len, 1) * 2;
    cfg.chunkChars = 256;
    cfg.crossCheck = false; // measure serving, not auditing
    cfg.journalEnabled = false;
    return cfg;
}

/** chars/sec in both modes plus the paired overhead estimate. */
struct Paired
{
    double charsPerSecOff = 0;
    double charsPerSecOn = 0;
    double overhead = 0;
};

Paired
pairedOverhead(std::size_t chars, int pairs,
               const std::function<double(bool)> &run_seconds)
{
    Paired r;
    double best_off = 1e300;
    double best_on = 1e300;
    double min_ratio = 1e300;
    for (int i = 0; i < pairs; ++i) {
        const bool on_first = (i & 1) != 0;
        const double a = run_seconds(on_first);
        const double b = run_seconds(!on_first);
        const double t_on = on_first ? a : b;
        const double t_off = on_first ? b : a;
        best_off = std::min(best_off, t_off);
        best_on = std::min(best_on, t_on);
        min_ratio = std::min(min_ratio, t_on / t_off);
    }
    telem::setSamplingEnabled(false);
    r.charsPerSecOff = static_cast<double>(chars) / best_off;
    r.charsPerSecOn = static_cast<double>(chars) / best_on;
    r.overhead = std::max(min_ratio - 1.0, 0.0);
    return r;
}

void
streamingReport()
{
    const std::size_t n = smokeMode() ? 16384 : 131072;
    const int pairs = smokeMode() ? 9 : 11;

    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    service::MatchService svc(serviceConfig(n));
    service::MatchRequest req;
    req.id = 20;
    req.text = w.text;
    req.pattern = w.pattern;
    service::MatchResponse warm = svc.serve(req);
    benchmark::DoNotOptimize(warm);

    const Paired e = pairedOverhead(n, pairs, [&](bool on) {
        telem::setSamplingEnabled(on);
        service::MatchResponse resp;
        const double s = secondsOf([&] { resp = svc.serve(req); });
        benchmark::DoNotOptimize(resp);
        return s;
    });

    Table table("Streaming service with reqobs sampling on vs off (" +
                std::to_string(n) + " chars, k = 8, 2-bit alphabet)");
    table.setHeader({"mode", "Mchars/s", "overhead"});
    table.addRowOf("sampling off", Table::fixed(e.charsPerSecOff / 1e6, 3),
                   "baseline");
    table.addRowOf(compiledOut() ? "sampling on (compiled out)"
                                 : "sampling on",
                   Table::fixed(e.charsPerSecOn / 1e6, 3),
                   Table::fixed(100.0 * e.overhead, 2) + "%");
    std::printf("%s\n", table.toString().c_str());

    jsonReport().set("reqobs.build",
                     compiledOut() ? "telem-off" : "default");
    jsonReport().set("reqobs.compiled_out", compiledOut() ? 1.0 : 0.0);
    jsonReport().set("reqobs.text_chars", static_cast<double>(n));
    jsonReport().set("reqobs.disabled_chars_per_sec", e.charsPerSecOff);
    jsonReport().set("reqobs.enabled_chars_per_sec", e.charsPerSecOn);
    jsonReport().set("reqobs.enabled_overhead_frac", e.overhead);
}

void
batchReport()
{
    const std::size_t streams = smokeMode() ? 64 : 256;
    const std::size_t per = smokeMode() ? 256 : 512;
    const int pairs = smokeMode() ? 7 : 9;
    // One pass is tens of microseconds; repeat it until a timing
    // sample is milliseconds so the pair ratio measures the work, not
    // the clock or the scheduler.
    const int reps = smokeMode() ? 64 : 96;

    service::BatchServiceConfig cfg;
    cfg.base = serviceConfig(per);
    service::BatchMatchService svc(cfg);

    const auto w = makeMatchWorkload(per, 8, 2, 0.12);
    std::vector<service::MatchRequest> batch(streams);
    for (std::size_t i = 0; i < streams; ++i) {
        batch[i].id = i + 1;
        batch[i].text = w.text;
        batch[i].pattern = w.pattern;
    }
    auto warm = svc.serveBatch(batch);
    benchmark::DoNotOptimize(warm);

    const Paired e = pairedOverhead(
        streams * per * static_cast<std::size_t>(reps), pairs,
        [&](bool on) {
            telem::setSamplingEnabled(on);
            const double s = secondsOf([&] {
                for (int r = 0; r < reps; ++r) {
                    auto out = svc.serveBatch(batch);
                    benchmark::DoNotOptimize(out);
                }
            });
            return s;
        });

    Table table("Batched front end with reqobs sampling on vs off (" +
                std::to_string(streams) + " streams x " +
                std::to_string(per) + " chars)");
    table.setHeader({"mode", "Mchars/s", "overhead"});
    table.addRowOf("sampling off", Table::fixed(e.charsPerSecOff / 1e6, 3),
                   "baseline");
    table.addRowOf("sampling on", Table::fixed(e.charsPerSecOn / 1e6, 3),
                   Table::fixed(100.0 * e.overhead, 2) + "%");
    std::printf("%s\n", table.toString().c_str());

    jsonReport().set("reqobs.batch_disabled_chars_per_sec",
                     e.charsPerSecOff);
    jsonReport().set("reqobs.batch_enabled_chars_per_sec",
                     e.charsPerSecOn);
    jsonReport().set("reqobs.batch_enabled_overhead_frac", e.overhead);
}

void
microReport()
{
    const std::uint64_t iters = smokeMode() ? 200000 : 2000000;

    telem::setSamplingEnabled(true);
    double mark_s = secondsOf([&] {
        telem::StageClock clock;
        clock.start();
        for (std::uint64_t i = 0; i < iters; ++i)
            clock.mark(telem::Stage::Kernel);
        benchmark::DoNotOptimize(clock);
    });
    telem::Registry reg(1);
    telem::LogHistogram &lh = reg.logHistogram("bench.e20.loghist");
    double sample_s = secondsOf([&] {
        for (std::uint64_t i = 0; i < iters; ++i)
            lh.sample(static_cast<double>(i % 100000));
    });
    telem::setSamplingEnabled(false);
    double mark_off_s = secondsOf([&] {
        telem::StageClock clock;
        clock.start();
        for (std::uint64_t i = 0; i < iters; ++i)
            clock.mark(telem::Stage::Kernel);
        benchmark::DoNotOptimize(clock);
    });

    const double to_ns = 1e9 / static_cast<double>(iters);
    Table table("Per-site cost of the reqobs primitives");
    table.setHeader({"primitive", "ns/op"});
    table.addRowOf("StageClock mark (armed)",
                   Table::fixed(mark_s * to_ns, 1));
    table.addRowOf("StageClock mark (disarmed)",
                   Table::fixed(mark_off_s * to_ns, 1));
    table.addRowOf("LogHistogram sample", Table::fixed(sample_s * to_ns, 1));
    std::printf("%s\n", table.toString().c_str());

    jsonReport().set("reqobs.mark_ns", mark_s * to_ns);
    jsonReport().set("reqobs.mark_disarmed_ns", mark_off_s * to_ns);
    jsonReport().set("reqobs.loghist_sample_ns", sample_s * to_ns);
}

void
printReport()
{
    spm::bench::jsonDefaultPath("BENCH_E20.json");
    spm::bench::banner(
        "E20: request observability overhead",
        "Claim: per-request stage clocks, SLO log-histograms and\n"
        "exemplar reservoirs cost under 2% end to end when enabled and\n"
        "nothing at all under SPM_TELEM_OFF (empty inline bodies).");
    streamingReport();
    batchReport();
    microReport();
}

void
streamServe(benchmark::State &state)
{
    const bool sampling_on = state.range(0) != 0;
    const std::size_t n = 16384;
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    service::MatchService svc(serviceConfig(n));
    service::MatchRequest req;
    req.text = w.text;
    req.pattern = w.pattern;
    telem::setSamplingEnabled(sampling_on);
    for (auto _ : state) {
        auto resp = svc.serve(req);
        benchmark::DoNotOptimize(resp);
    }
    telem::setSamplingEnabled(false);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void
stageClockMark(benchmark::State &state)
{
    telem::setSamplingEnabled(true);
    telem::StageClock clock;
    clock.start();
    for (auto _ : state)
        clock.mark(telem::Stage::Kernel);
    benchmark::DoNotOptimize(clock);
    telem::setSamplingEnabled(false);
}

BENCHMARK(streamServe)->Arg(0)->Arg(1);
BENCHMARK(stageClockMark);

} // namespace

SPM_BENCH_MAIN(printReport)
