/**
 * @file
 * E9 -- Section 3.4's closing remark: convolution and FIR filtering
 * "have algorithms that use the same data flow".
 *
 * The report validates the multiplier-cell array against direct
 * evaluation for FIR filters and full convolutions, and shows the
 * constant per-sample beat cost across tap counts.
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <cstdlib>

#include "extensions/numarray.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::ext;

std::vector<std::int64_t>
makeSignal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int64_t> v(n);
    for (auto &x : v)
        x = rng.nextInRange(-50, 50);
    return v;
}

std::vector<std::int64_t>
directFir(const std::vector<std::int64_t> &sig,
          const std::vector<std::int64_t> &taps)
{
    std::vector<std::int64_t> y(sig.size(), 0);
    for (std::size_t i = 0; i < sig.size(); ++i)
        for (std::size_t j = 0; j < taps.size() && j <= i; ++j)
            y[i] += taps[j] * sig[i - j];
    return y;
}

void
printReport()
{
    spm::bench::banner(
        "E9: FIR filtering and convolution on the matcher's data "
        "flow (Section 3.4)",
        "Multiplier meet cells + plain-sum adders: y_i = sum_j "
        "taps_j x_{i-j}; convolution via zero padding.");

    Table table("Systolic FIR vs direct evaluation "
                "(signal n = 4000)");
    table.setHeader({"taps", "agrees (FIR)", "agrees (convolution)",
                     "agrees (Chebyshev)", "window results/beat"});
    for (std::size_t k : {4u, 8u, 16u, 32u, 64u}) {
        const auto sig = makeSignal(4000, 11 * k);
        const auto taps = makeSignal(k, 13 * k + 1);
        SystolicFir fir;
        const bool fir_ok = fir.fir(sig, taps) == directFir(sig, taps);

        // The same array with (|s-p|, max) computes the L-infinity
        // window distance: the linear-product generality of 3.4.
        SystolicDistance dist;
        std::vector<std::int64_t> cheb_want(sig.size(), 0);
        for (std::size_t i = k - 1; i < sig.size(); ++i) {
            std::int64_t mx = 0;
            for (std::size_t j = 0; j < k; ++j)
                mx = std::max(mx,
                              std::abs(sig[i - (k - 1) + j] -
                                       taps[j]));
            cheb_want[i] = mx;
        }
        const bool cheb_ok = dist.chebyshev(sig, taps) == cheb_want;

        const auto a = makeSignal(200, k);
        const auto b = makeSignal(k, k + 2);
        std::vector<std::int64_t> conv_want(a.size() + b.size() - 1, 0);
        for (std::size_t i = 0; i < a.size(); ++i)
            for (std::size_t j = 0; j < b.size(); ++j)
                conv_want[i + j] += a[i] * b[j];
        const bool conv_ok = fir.convolve(a, b) == conv_want;

        // One window result leaves per two beats, independent of k.
        table.addRowOf(k, fir_ok ? "yes" : "NO",
                       conv_ok ? "yes" : "NO",
                       cheb_ok ? "yes" : "NO", "1 per 2 beats");
    }
    table.print();
    std::printf(
        "\nShape check: correctness across tap counts with the rate\n"
        "fixed by the data flow, exactly as for string matching --\n"
        "the generality Section 3.4 claims for the architecture.\n");
}

void
systolicFir(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto sig = makeSignal(2000, 3);
    const auto taps = makeSignal(k, 4);
    SystolicFir fir;
    for (auto _ : state) {
        auto y = fir.fir(sig, taps);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2000);
}

BENCHMARK(systolicFir)->Arg(4)->Arg(16)->Arg(64);

void
directFirBench(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto sig = makeSignal(2000, 3);
    const auto taps = makeSignal(k, 4);
    for (auto _ : state) {
        auto y = directFir(sig, taps);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 2000);
}

BENCHMARK(directFirBench)->Arg(4)->Arg(16)->Arg(64);

} // namespace

SPM_BENCH_MAIN(printReport)
