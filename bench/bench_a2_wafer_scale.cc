/**
 * @file
 * A2 -- Section 5: wafer-scale integration.
 *
 * "Manufacturing defects make it essential to be able to modify the
 * interconnections so that a defective circuit is replaced by a
 * functioning one on the same wafer. This can be done easily if
 * there are only a few types of circuits with regular
 * interconnections." The report compares harvesting one long linear
 * array from a defective wafer (snake reconfiguration) against
 * dicing the wafer into fixed-size chips, across defect rates.
 */

#include "bench/bench_common.hh"

#include "flow/wafer.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::flow;

void
printReport()
{
    spm::bench::banner(
        "A2: wafer-scale integration (Section 5)",
        "A 64x64-site wafer of pattern matcher cells: harvested "
        "linear array vs fully-good 64-cell dies, by defect rate.");

    Table table("Harvest vs dicing on a 64x64 wafer (4096 sites; "
                "chips of 64 cells)");
    table.setHeader({"defect %", "good cells", "harvested cells",
                     "longest bypass", "working chips",
                     "cells via chips", "harvest advantage"});
    for (double p : {0.0, 0.01, 0.05, 0.10, 0.20, 0.40}) {
        const Wafer w(64, 64, p, 1979);
        const auto h = w.snakeHarvest();
        const std::size_t chips = w.dicedChips(64);
        const std::size_t chip_cells = chips * 64;
        table.addRowOf(
            Table::fixed(100 * p, 0), w.goodCells(), h.chainLength,
            h.longestJump, chips, chip_cells,
            chip_cells == 0
                ? std::string("inf")
                : Table::fixed(static_cast<double>(h.chainLength) /
                                   static_cast<double>(chip_cells),
                               1));
    }
    table.print();

    Table yield("Analytic monolithic-chip yield (1-p)^n vs cells "
                "per chip");
    yield.setHeader({"cells/chip", "yield at 1%", "yield at 5%",
                     "yield at 10%"});
    for (std::size_t n : {8u, 64u, 256u, 1024u}) {
        yield.addRowOf(
            n,
            Table::fixed(Wafer::expectedChipYield(n, 0.01), 3),
            Table::fixed(Wafer::expectedChipYield(n, 0.05), 3),
            Table::fixed(Wafer::expectedChipYield(n, 0.10), 3));
    }
    yield.print();
    std::printf(
        "\nShape check: monolithic yield collapses exponentially\n"
        "with chip size while the reconfigured wafer harvests\n"
        "essentially every good cell -- the regularity dividend the\n"
        "paper's conclusion banks on.\n");
}

void
snakeHarvest(benchmark::State &state)
{
    const auto side = static_cast<unsigned>(state.range(0));
    const Wafer w(side, side, 0.1, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(w.snakeHarvest().chainLength);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * side * side);
}

BENCHMARK(snakeHarvest)->Arg(64)->Arg(256);

} // namespace

SPM_BENCH_MAIN(printReport)
