/**
 * @file
 * E3 -- Figure 3-4: the bit-serial checkerboard.
 *
 * Measures the activation pattern of the bit-serial pipeline: active
 * comparators form a checkerboard with a 50% duty cycle; staggered
 * bit entry means the pipeline latency grows with the character
 * width while throughput stays at one character per beat.
 */

#include "bench/bench_common.hh"

#include "core/bitserial.hh"
#include "core/reference.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using spm::bench::makeMatchWorkload;

void
printReport()
{
    spm::bench::banner(
        "E3: checkerboard activation of the bit-serial pipeline "
        "(Fig 3-4)",
        "Active and idle comparators alternate horizontally and "
        "vertically; half the cells hold valid meetings each beat, "
        "and high-order bits lead low-order bits by one beat per "
        "row.");

    Table table("Bit-serial pipeline across character widths "
                "(8 cells, 2000 characters)");
    table.setHeader({"bits/char", "grid cells", "measured utilization",
                     "active beats", "idle beats", "beats",
                     "extra latency vs 1-bit", "agrees"});
    std::string sample_dump;
    Beat base_beats = 0;
    for (BitWidth bits = 1; bits <= 8; ++bits) {
        const auto w = makeMatchWorkload(2000, 8, std::min(bits, 4u),
                                         0.25);
        BitSerialMatcher chip(8, bits);
        ReferenceMatcher ref;
        const bool ok =
            chip.match(w.text, w.pattern) == ref.match(w.text, w.pattern);

        // Utilization probe on a fresh chip driven for 200 beats.
        BitSerialChip probe(8, bits);
        const ChipFeedPlan plan(8, w.pattern, w.text.size());
        for (Beat u = 0; u < 200; ++u) {
            for (unsigned row = 0; row < bits; ++row) {
                const PatToken p =
                    u >= row ? plan.patternAt(u - row) : PatToken{};
                probe.feedPatternBit(
                    row, BitToken{(p.sym >> (bits - 1 - row)) & 1
                                      ? true
                                      : false,
                                  p.valid});
                const StrToken s =
                    u >= row ? plan.stringAt(u - row, w.text)
                             : StrToken{};
                probe.feedStringBit(
                    row, BitToken{(s.sym >> (bits - 1 - row)) & 1
                                      ? true
                                      : false,
                                  s.valid});
            }
            const Beat shift = bits - 1;
            probe.feedControl(
                u >= shift ? plan.controlAt(u - shift) : CtlToken{});
            const ResToken r =
                u >= shift ? plan.resultAt(u - shift) : ResToken{};
            probe.feedResult(r);
            probe.step();
        }

        if (bits == 1)
            base_beats = chip.lastBeats();
        // Duty cycle straight from the engine's counters: every beat
        // charges each cell to active_cell_beats or idle_cell_beats.
        const auto &stats = probe.engine().stats();
        const auto active = stats.counter("active_cell_beats").value();
        const auto idle = stats.counter("idle_cell_beats").value();
        if (bits == 2)
            sample_dump = probe.engine().statsDump();
        table.addRowOf(bits, 8 * (bits + 1),
                       Table::fixed(static_cast<double>(active) /
                                        static_cast<double>(active + idle),
                                    3),
                       active, idle, chip.lastBeats(),
                       chip.lastBeats() - base_beats, ok ? "yes" : "NO");
    }
    table.print();
    std::printf("\nEngine counters at 2 bits/char:\n%s",
                sample_dump.c_str());
    std::printf(
        "\nShape check: measured utilization (active / (active+idle)\n"
        "cell-beats) is 0.5 at every width (the checkerboard), and\n"
        "each extra bit row adds exactly one beat of drain latency\n"
        "while beats stay ~2n.\n");
}

void
bitSerialStep(benchmark::State &state)
{
    const auto bits = static_cast<BitWidth>(state.range(0));
    const auto cells = static_cast<std::size_t>(state.range(1));
    const auto w = makeMatchWorkload(256, cells, std::min(bits, 4u), 0.2);
    BitSerialChip chip(cells, bits);
    const ChipFeedPlan plan(cells, w.pattern, w.text.size());
    Beat u = 0;
    for (auto _ : state) {
        for (unsigned row = 0; row < bits; ++row) {
            const PatToken p =
                u >= row ? plan.patternAt(u - row) : PatToken{};
            chip.feedPatternBit(row, BitToken{false, p.valid});
            const StrToken s =
                u >= row ? plan.stringAt(u - row, w.text) : StrToken{};
            chip.feedStringBit(row, BitToken{false, s.valid});
        }
        const Beat shift = bits - 1;
        chip.feedControl(u >= shift ? plan.controlAt(u - shift)
                                    : CtlToken{});
        chip.feedResult(ResToken{});
        chip.step();
        ++u;
    }
    // Cell-evaluations per second is the simulator's native rate.
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(cells * (bits + 1)));
}

BENCHMARK(bitSerialStep)
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({2, 64});

} // namespace

SPM_BENCH_MAIN(printReport)
