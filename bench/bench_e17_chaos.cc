/**
 * @file
 * E17 -- chaos storm: shard-level fault tolerance under injected
 * failures.
 *
 * Section 5 buys chip yield from defective cells with spares and
 * reconfiguration; the sharded service buys availability from
 * defective shards the same way. This experiment drives seeded fault
 * storms (watchdog-budget stalls, dead-worker hangs, thrown
 * exceptions, silent bit corruption) through the chaos harness and
 * regenerates the robustness headline numbers:
 *
 *   integrity     zero silent corruptions: every ok() response is
 *                 bit-identical to the reference answer, every
 *                 injected fault either recovered or failed typed
 *                 (the CI gate requires the "yes" strings to hold);
 *   detection     with the per-chunk reference cross-check disabled,
 *                 boundary corruption is still caught by the overlap
 *                 cross-check and repaired on spares;
 *   availability  ok-served share of requests under the mixed storm,
 *                 plus recovery latency (mean/max serve wall clock);
 *   cost          clean vs under-storm request throughput (the CI
 *                 gate requires storm throughput >= 0.5x baseline).
 *
 * The report writes BENCH_E17.json (override with --json <path>;
 * --smoke shrinks the campaign sizes for CI). The committed baseline
 * is a --smoke run: the storm rate is dominated by the seeded hang
 * sleeps, so only a smoke-to-smoke comparison (what check.sh runs)
 * is apples to apples.
 */

#include "bench/bench_common.hh"

#include <chrono>

#include "service/chaos.hh"
#include "service/sharded.hh"
#include "telemetry/flightrec.hh"
#include "util/logging.hh"

namespace
{

using namespace spm;
using spm::bench::jsonReport;
using spm::bench::smokeMode;

service::ShardedMatchService::LadderFactory
softwareFactory()
{
    return [](const service::ServiceConfig &) {
        std::vector<std::unique_ptr<service::ServiceBackend>> ladder;
        ladder.push_back(std::make_unique<service::SoftwareBackend>());
        return ladder;
    };
}

service::ChaosCampaignConfig
baseCampaign()
{
    service::ChaosCampaignConfig cc;
    cc.sharded.base.alphabetBits = 2;
    cc.sharded.base.maxTextLen = 1 << 20;
    cc.sharded.base.chunkChars = 16;
    cc.sharded.threads = 4;
    cc.sharded.spareShards = 2;
    cc.sharded.minShardChars = 64;
    cc.sharded.batchDeadlineMs = 60;
    cc.innerFactory = softwareFactory();
    cc.requests = smokeMode() ? 6 : 24;
    cc.textLen = smokeMode() ? 400 : 1200;
    cc.patternLen = 5;
    cc.seed = 2026;
    return cc;
}

/** The mixed storm: primaries faulted, spares the clean harvest. */
service::ChaosConfig
mixedStorm()
{
    service::ChaosConfig storm;
    storm.seed = 1979;
    storm.stallProb = 0.08;
    storm.hangProb = 0.02;
    storm.throwProb = 0.08;
    storm.corruptProb = 0.08;
    storm.hangMs = 150; // past the batch deadline: a real dead worker
    storm.targetSlots = {0, 1, 2, 3};
    return storm;
}

const char *
yesNo(bool v)
{
    return v ? "yes" : "NO";
}

void
printReport()
{
    spm::bench::jsonDefaultPath("BENCH_E17.json");
    bench::banner(
        "E17: chaos storm -- shard-level fault tolerance",
        "Seeded fault storms (stall, hang, throw, corrupt) against the"
        " sharded service: every injected fault is either\nrecovered"
        " bit-identical to the un-faulted answer or rejected with a"
        " typed error -- zero silent corruptions, zero hangs.");

    // The storm triggers flight dumps and quarantine warnings by
    // design; raising the log floor keeps the report parseable
    // (panic is never filtered).
    setLogMinLevel(LogLevel::Silent);
    telem::FlightRecorder::global().setDumpSink([](const std::string &) {});

    // Clean baseline: the same campaign with no storm.
    service::ChaosCampaignConfig clean = baseCampaign();
    const auto c0 = std::chrono::steady_clock::now();
    const service::ChaosCampaignReport cleanRep =
        service::runChaosCampaign(clean);
    const auto c1 = std::chrono::steady_clock::now();
    const double cleanSec =
        std::chrono::duration<double>(c1 - c0).count();

    // The mixed storm.
    service::ChaosCampaignConfig storm = baseCampaign();
    storm.chaos = mixedStorm();
    const auto s0 = std::chrono::steady_clock::now();
    const service::ChaosCampaignReport stormRep =
        service::runChaosCampaign(storm);
    const auto s1 = std::chrono::steady_clock::now();
    const double stormSec =
        std::chrono::duration<double>(s1 - s0).count();

    // Overlap-detection campaign: per-chunk reference cross-check
    // OFF, one boundary-bit corruption per targeted slot (index k-1
    // of the slot's first window is the first kept -- and cross-
    // checked -- bit of slices 1..3). Only the overlap comparison
    // stands between these flips and wrong answers.
    service::ChaosCampaignConfig overlap = baseCampaign();
    overlap.sharded.base.crossCheck = false;
    overlap.chaos.seed = 7;
    overlap.chaos.corruptProb = 1.0;
    overlap.chaos.maxInjectionsPerSlot = 1;
    overlap.chaos.corruptAt = 4; // k-1 with patternLen = 5
    overlap.chaos.targetSlots = {1, 2, 3};
    const service::ChaosCampaignReport overlapRep =
        service::runChaosCampaign(overlap);

    std::printf("clean campaign:\n%s\n", cleanRep.renderText().c_str());
    std::printf("mixed storm:\n%s\n", stormRep.renderText().c_str());
    std::printf("overlap detection (cross-check off):\n%s\n",
                overlapRep.renderText().c_str());

    const bool cleanExact = cleanRep.exactRequests == cleanRep.requests;
    const bool stormIntact =
        stormRep.silentCorruptions == 0 &&
        stormRep.okRequests == stormRep.exactRequests &&
        stormRep.okRequests + stormRep.typedFailures == stormRep.requests;
    const bool overlapCaught = overlapRep.silentCorruptions == 0 &&
                               overlapRep.overlapMismatches > 0;

    std::printf("gates: clean_exact=%s storm_intact=%s "
                "overlap_caught=%s\n",
                yesNo(cleanExact), yesNo(stormIntact),
                yesNo(overlapCaught));

    const double n = static_cast<double>(storm.requests);
    jsonReport().set("chaos.requests", n);
    jsonReport().set("chaos.threads", 4.0);
    jsonReport().set("chaos.spares", 2.0);
    jsonReport().set("chaos.clean_exact", yesNo(cleanExact));
    jsonReport().set("chaos.zero_silent_corruptions",
                     yesNo(stormRep.silentCorruptions == 0));
    jsonReport().set("chaos.storm_all_exact_or_typed",
                     yesNo(stormIntact));
    jsonReport().set("chaos.overlap_caught", yesNo(overlapCaught));
    jsonReport().set("chaos.faults_injected",
                     static_cast<double>(stormRep.faultsInjected));
    jsonReport().set("chaos.availability_pct", stormRep.availabilityPct);
    jsonReport().set("chaos.recovered",
                     static_cast<double>(stormRep.recoveredRequests));
    jsonReport().set("chaos.shard_timeouts",
                     static_cast<double>(stormRep.shardTimeouts));
    jsonReport().set("chaos.shard_exceptions",
                     static_cast<double>(stormRep.shardExceptions));
    jsonReport().set("chaos.spare_serves",
                     static_cast<double>(stormRep.spareServes));
    jsonReport().set("chaos.quarantines",
                     static_cast<double>(stormRep.quarantines));
    jsonReport().set("chaos.overlap_mismatches_detected",
                     static_cast<double>(overlapRep.overlapMismatches));
    jsonReport().set("chaos.mean_recovery_ms", stormRep.meanServeMs);
    jsonReport().set("chaos.max_recovery_ms", stormRep.maxServeMs);
    jsonReport().set("chaos.clean_requests_per_sec",
                     cleanSec > 0 ? n / cleanSec : 0.0);
    jsonReport().set("chaos.storm_requests_per_sec",
                     stormSec > 0 ? n / stormSec : 0.0);
}

/** One clean sharded serve: the no-storm cost of the supervisor. */
void
BM_cleanShardedServe(benchmark::State &state)
{
    service::ChaosCampaignConfig cc = baseCampaign();
    service::ShardedMatchService sharded(cc.sharded, softwareFactory());
    const bench::MatchWorkload w =
        bench::makeMatchWorkload(cc.textLen, cc.patternLen, 2, 0.2);
    service::MatchRequest req;
    req.id = 1;
    req.text = w.text;
    req.pattern = w.pattern;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sharded.serve(req));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_cleanShardedServe)->Unit(benchmark::kMillisecond);

/** The same serve under a stall/throw/corrupt storm (no sleeps). */
void
BM_stormShardedServe(benchmark::State &state)
{
    service::ChaosCampaignConfig cc = baseCampaign();
    service::ChaosConfig storm = mixedStorm();
    storm.hangProb = 0.0; // wall-clock sleeps would swamp the timing
    auto plan = std::make_shared<const service::ChaosPlan>(storm);
    service::ShardedMatchService sharded(
        cc.sharded,
        service::makeChaosLadderFactory(plan, softwareFactory()));
    const bench::MatchWorkload w =
        bench::makeMatchWorkload(cc.textLen, cc.patternLen, 2, 0.2);
    service::MatchRequest req;
    req.id = 1;
    req.text = w.text;
    req.pattern = w.pattern;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sharded.serve(req));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_stormShardedServe)->Unit(benchmark::kMillisecond);

} // namespace

SPM_BENCH_MAIN(printReport)
