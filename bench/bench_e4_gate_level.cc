/**
 * @file
 * E4 -- Figures 3-5/3-6: the NMOS circuits, cycle-accurately.
 *
 * Simulates the fabricated chip's exact circuits: dynamic shift
 * registers, two-phase clocking, twin cells. The report shows device
 * inventories per configuration, equivalence with the reference, and
 * the dynamic-storage failure threshold (Section 3.3.3's ~1 ms
 * retention) under clock-stall injection.
 */

#include "bench/bench_common.hh"

#include "core/gatechip.hh"
#include "core/reference.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using spm::bench::makeMatchWorkload;

void
printReport()
{
    spm::bench::banner(
        "E4: gate-level chip (Figs 3-5, 3-6; Plate 2)",
        "The prototype's circuits simulated transistor-for-"
        "transistor: pass-transistor shift registers, XNOR/NAND "
        "comparators in twin polarities, master-slave accumulators.");

    Table inventory("Device inventory by chip configuration");
    inventory.setHeader({"cells", "bits", "nodes", "devices",
                         "transistors", "agrees with reference"});
    for (const auto &[cells, bits] :
         std::vector<std::pair<std::size_t, BitWidth>>{
             {2, 1}, {4, 2}, {8, 2}, {8, 4}, {16, 2}}) {
        const auto w =
            makeMatchWorkload(120, cells, std::min<BitWidth>(bits, 4),
                              0.25);
        GateLevelMatcher chip(cells, bits);
        ReferenceMatcher ref;
        const bool ok = chip.match(w.text, w.pattern) ==
                        ref.match(w.text, w.pattern);
        GateChip probe(cells, bits);
        inventory.addRowOf(cells, bits, probe.netlist().nodeCount(),
                           probe.netlist().deviceCount(),
                           probe.netlist().transistorCount(),
                           ok ? "yes" : "NO");
    }
    inventory.print();

    Table stalls("Clock-stall failure injection (8 cells x 2 bits; "
                 "retention ~1 ms)");
    stalls.setHeader({"stall", "storage nodes lost"});
    for (const auto &[label, ps] :
         std::vector<std::pair<const char *, Picoseconds>>{
             {"1 us", 1'000'000},
             {"100 us", 100'000'000},
             {"0.9 ms", 900'000'000},
             {"1.1 ms", 1'100'000'000},
             {"10 ms", 10'000'000'000ULL}}) {
        GateChip chip(8, 2);
        // Run a few beats so storage holds real data, then stall.
        for (Beat u = 0; u < 8; ++u) {
            chip.setPatternBit(0, u % 2);
            chip.setPatternBit(1, u % 3 == 0);
            chip.setStringBit(0, u % 2 == 0);
            chip.setStringBit(1, true);
            chip.setControl(u % 4 == 1, false);
            chip.setResultIn(false);
            chip.tick();
        }
        stalls.addRowOf(label, chip.stall(ps));
    }
    stalls.print();
    std::printf(
        "\nShape check: data survives stalls below the retention\n"
        "limit and is wiped above it -- the paper's stated dynamic\n"
        "register constraint (Section 3.3.3).\n");
}

void
gateLevelMatch(benchmark::State &state)
{
    const auto cells = static_cast<std::size_t>(state.range(0));
    const auto bits = static_cast<BitWidth>(state.range(1));
    const auto w = makeMatchWorkload(
        64, cells, std::min<BitWidth>(bits, 4), 0.25);
    GateLevelMatcher chip(cells, bits);
    for (auto _ : state) {
        auto r = chip.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
    state.counters["transistors"] =
        static_cast<double>(chip.lastTransistors());
}

BENCHMARK(gateLevelMatch)->Args({4, 2})->Args({8, 2})->Args({8, 4});

void
gateTick(benchmark::State &state)
{
    GateChip chip(8, 2);
    Beat u = 0;
    for (auto _ : state) {
        chip.setPatternBit(0, u % 2);
        chip.setPatternBit(1, u % 3 == 0);
        chip.setStringBit(0, u % 2 == 0);
        chip.setStringBit(1, u % 5 == 0);
        chip.setControl(u % 4 == 1, false);
        chip.setResultIn(false);
        chip.tick();
        ++u;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
    state.counters["devices"] =
        static_cast<double>(chip.netlist().deviceCount());
}

BENCHMARK(gateTick);

} // namespace

SPM_BENCH_MAIN(printReport)
