/**
 * @file
 * Shared bench scaffolding: deterministic workloads and the custom
 * main that prints each experiment's report before running the
 * google-benchmark timings.
 */

#ifndef SPM_BENCH_COMMON_HH
#define SPM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace spm::bench
{

/** Deterministic text + pattern for a given size and wild card mix. */
struct MatchWorkload
{
    std::vector<Symbol> text;
    std::vector<Symbol> pattern;
};

inline MatchWorkload
makeMatchWorkload(std::size_t text_len, std::size_t pattern_len,
                  BitWidth bits, double wildcard_prob,
                  std::uint64_t seed = 0xBE11C4)
{
    WorkloadGen gen(seed, bits);
    MatchWorkload w;
    w.pattern = gen.randomPattern(pattern_len, wildcard_prob);
    w.text = gen.textWithPlants(text_len, w.pattern,
                                pattern_len * 3 + 1);
    return w;
}

/** Print the experiment banner. */
inline void
banner(const char *experiment, const char *claim)
{
    std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

} // namespace spm::bench

/**
 * Each bench defines `void printReport();` and uses this main so the
 * paper-shaped table appears before the timing run.
 */
#define SPM_BENCH_MAIN(report_fn)                                     \
    int                                                               \
    main(int argc, char **argv)                                       \
    {                                                                 \
        report_fn();                                                  \
        ::benchmark::Initialize(&argc, argv);                         \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))     \
            return 1;                                                 \
        ::benchmark::RunSpecifiedBenchmarks();                        \
        ::benchmark::Shutdown();                                      \
        return 0;                                                     \
    }

#endif // SPM_BENCH_COMMON_HH
