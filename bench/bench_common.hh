/**
 * @file
 * Shared bench scaffolding: deterministic workloads, the custom main
 * that prints each experiment's report before running the
 * google-benchmark timings, and a machine-readable JSON side channel.
 *
 * Every bench accepts two extra flags ahead of the usual
 * google-benchmark ones:
 *
 *   --smoke        scale the run down for CI: report functions can
 *                  query smokeMode() to shrink their sweeps, and each
 *                  timing benchmark runs exactly one iteration;
 *   --json <path>  after the run, write every value recorded with
 *                  jsonReport() as one flat JSON object to <path>.
 *
 * A bench that should always produce a JSON artifact (E13 writes
 * BENCH_E13.json) sets a default path with jsonDefaultPath().
 */

#ifndef SPM_BENCH_COMMON_HH
#define SPM_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace spm::bench
{

/** Deterministic text + pattern for a given size and wild card mix. */
struct MatchWorkload
{
    std::vector<Symbol> text;
    std::vector<Symbol> pattern;
};

inline MatchWorkload
makeMatchWorkload(std::size_t text_len, std::size_t pattern_len,
                  BitWidth bits, double wildcard_prob,
                  std::uint64_t seed = 0xBE11C4)
{
    WorkloadGen gen(seed, bits);
    MatchWorkload w;
    w.pattern = gen.randomPattern(pattern_len, wildcard_prob);
    w.text = gen.textWithPlants(text_len, w.pattern,
                                pattern_len * 3 + 1);
    return w;
}

/** Print the experiment banner. */
inline void
banner(const char *experiment, const char *claim)
{
    std::printf("\n=== %s ===\n%s\n\n", experiment, claim);
}

/** Flat key -> value report written as one JSON object. */
class JsonReport
{
  public:
    void set(const std::string &key, double value)
    {
        char buf[64];
        if (value == std::floor(value) && std::fabs(value) < 1e15)
            std::snprintf(buf, sizeof(buf), "%.0f", value);
        else
            std::snprintf(buf, sizeof(buf), "%.6g", value);
        put(key, buf);
    }

    void set(const std::string &key, const std::string &value)
    {
        put(key, "\"" + escape(value) + "\"");
    }

    bool empty() const { return items.empty(); }

    /** Render the object with keys in insertion order. */
    std::string render() const
    {
        std::string out = "{\n";
        for (std::size_t i = 0; i < items.size(); ++i) {
            out += "  \"" + escape(items[i].first) +
                   "\": " + items[i].second;
            out += i + 1 < items.size() ? ",\n" : "\n";
        }
        out += "}\n";
        return out;
    }

    bool writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f)
            return false;
        const std::string body = render();
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
        return true;
    }

  private:
    void put(const std::string &key, std::string rendered)
    {
        for (auto &item : items) {
            if (item.first == key) {
                item.second = std::move(rendered);
                return;
            }
        }
        items.emplace_back(key, std::move(rendered));
    }

    static std::string escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out += '\\';
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out += c;
        }
        return out;
    }

    std::vector<std::pair<std::string, std::string>> items;
};

/** The process-wide report every bench records into. */
inline JsonReport &
jsonReport()
{
    static JsonReport report;
    return report;
}

/** Parsed --smoke / --json state (filled by benchMain). */
struct BenchOptions
{
    bool smoke = false;
    std::string jsonPath;
};

inline BenchOptions &
benchOptions()
{
    static BenchOptions opts;
    return opts;
}

/** True when the run should be scaled down for CI (--smoke). */
inline bool
smokeMode()
{
    return benchOptions().smoke;
}

/** Where the JSON report goes unless --json overrides it. */
inline void
jsonDefaultPath(const std::string &path)
{
    if (benchOptions().jsonPath.empty())
        benchOptions().jsonPath = path;
}

/** Shared main: strip our flags, report, time, write the JSON. */
inline int
benchMain(int argc, char **argv, void (*report_fn)())
{
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--smoke") {
            benchOptions().smoke = true;
        } else if (a == "--json" && i + 1 < argc) {
            benchOptions().jsonPath = argv[++i];
        } else if (a.rfind("--json=", 0) == 0) {
            benchOptions().jsonPath = a.substr(7);
        } else {
            args.push_back(argv[i]);
        }
    }
    // A tiny min time keeps the smoke-mode timing pass fast.
    static char min_time[] = "--benchmark_min_time=0.001";
    if (benchOptions().smoke)
        args.push_back(min_time);

    report_fn();

    int n = static_cast<int>(args.size());
    ::benchmark::Initialize(&n, args.data());
    if (::benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();

    const std::string &path = benchOptions().jsonPath;
    if (!path.empty() && !jsonReport().empty()) {
        if (jsonReport().writeTo(path))
            std::printf("JSON report written to %s\n", path.c_str());
        else
            std::fprintf(stderr, "cannot write JSON report to %s\n",
                         path.c_str());
    }
    return 0;
}

} // namespace spm::bench

/**
 * Each bench defines `void printReport();` and uses this main so the
 * paper-shaped table appears before the timing run.
 */
#define SPM_BENCH_MAIN(report_fn)                                     \
    int                                                               \
    main(int argc, char **argv)                                       \
    {                                                                 \
        return ::spm::bench::benchMain(argc, argv, report_fn);        \
    }

#endif // SPM_BENCH_COMMON_HH
