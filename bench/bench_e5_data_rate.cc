/**
 * @file
 * E5 -- the headline claim: one character every 250 ns, regardless
 * of pattern length.
 *
 * "Preliminary results show that the chip can achieve a data rate of
 * one character every 250 ns, which is higher than the memory
 * bandwidth of most conventional computers" (Section 1). The report
 * sweeps pattern length and shows: simulated ns/character is flat
 * for the systolic array (parallelism absorbs k), while software
 * baselines pay per-window work that grows with k; and the chip's
 * bus demand against era host profiles.
 */

#include "bench/bench_common.hh"

#include "baselines/fftmatch.hh"
#include "baselines/naive.hh"
#include "core/behavioral.hh"
#include "core/hostbus.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using spm::bench::makeMatchWorkload;

void
printReport()
{
    spm::bench::banner(
        "E5: data rate vs pattern length (the 250 ns/char claim)",
        "Chip time = beats x 250 ns stays ~2 x 250 ns per text "
        "character for every k; software cost per character grows "
        "with k (naive) or log factors (FFT).");

    const std::size_t n = 3000;
    Table table("Cost per text character vs pattern length "
                "(text n = 3000, wild cards 25%)");
    table.setHeader({"pattern k+1", "chip beats", "chip ns/char",
                     "naive cmp/char", "naive agrees", "fft agrees"});
    HostBusModel bus;
    for (std::size_t k : {1u, 2u, 8u, 32u, 128u, 512u}) {
        const auto w = makeMatchWorkload(n, k, 4, 0.25);
        BehavioralMatcher chip(k);
        baselines::NaiveMatcher naive;
        baselines::FftMatcher fftm;
        const auto chip_r = chip.match(w.text, w.pattern);
        const auto naive_r = naive.match(w.text, w.pattern);
        const auto fft_r = fftm.match(w.text, w.pattern);
        const double ns_per_char =
            bus.secondsForBeats(chip.lastBeats()) * 1e9 /
            static_cast<double>(n);
        table.addRowOf(
            k, chip.lastBeats(), Table::fixed(ns_per_char, 1),
            Table::fixed(static_cast<double>(naive.lastComparisons()) /
                             static_cast<double>(n),
                         2),
            naive_r == chip_r ? "yes" : "NO",
            fft_r == chip_r ? "yes" : "NO");
    }
    table.print();

    Table hosts("Chip demand vs era host memory bandwidth "
                "(8-bit characters)");
    hosts.setHeader({"host", "host MB/s", "chip demand MB/s",
                     "chip outruns host", "effective text chars/s"});
    for (const HostProfile *h :
         {&hostPdp11(), &hostVax780(), &hostIbm370158()}) {
        hosts.addRowOf(
            h->name, Table::fixed(h->bandwidthBytesPerSec / 1e6, 1),
            Table::fixed(bus.chipDemandBytesPerSec() / 1e6, 2),
            bus.chipOutrunsHost(*h) ? "yes" : "no",
            Table::fixed(bus.effectiveTextCharsPerSec(*h) / 1e6, 2));
    }
    hosts.print();
    std::printf(
        "\nShape check: chip ns/char is ~%.0f and flat in k; the\n"
        "demand (%.2f MB/s) exceeds a Unibus-class host, matching\n"
        "the paper's 'higher than the memory bandwidth of most\n"
        "conventional computers'.\n",
        2.0 * 250.0, bus.chipDemandBytesPerSec() / 1e6);
}

void
chipRateVsK(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto w = makeMatchWorkload(1000, k, 4, 0.25);
    BehavioralMatcher chip(k);
    for (auto _ : state) {
        auto r = chip.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    // Simulated beats per text character: the paper's figure of
    // merit. Wall time grows with k (we simulate k cells!), the
    // simulated rate does not.
    state.counters["sim_beats_per_char"] =
        static_cast<double>(chip.lastBeats()) / 1000.0;
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}

BENCHMARK(chipRateVsK)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

} // namespace

SPM_BENCH_MAIN(printReport)
