/**
 * @file
 * E1 -- Figure 3-1 / Section 3.1: the problem and the machine.
 *
 * Reproduces the paper's problem statement end to end: streams in,
 * result bits out, r_i defined over substrings with wild cards. The
 * report verifies the systolic array against the reference definition
 * across sizes and wild card densities, and shows the steady one-
 * result-per-two-beats output rate with its pipeline fill latency.
 */

#include "bench/bench_common.hh"

#include "core/behavioral.hh"
#include "core/reference.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using spm::bench::makeMatchWorkload;

void
printReport()
{
    spm::bench::banner(
        "E1: problem definition and the behavioral array (Fig 3-1)",
        "r_i = (s_{i-k}=p_0) AND ... AND (s_i=p_k); wild card matches "
        "all. The systolic array emits one result per two beats after "
        "a fill latency of one array length.");

    Table table("Systolic array vs reference definition");
    table.setHeader({"text n", "pattern k+1", "wildcard %", "matches",
                     "agrees", "beats", "beats/char",
                     "fill latency"});
    for (const auto &[n, k, wc] :
         std::vector<std::tuple<std::size_t, std::size_t, double>>{
             {1000, 1, 0.0},
             {1000, 4, 0.0},
             {1000, 4, 0.25},
             {4000, 8, 0.25},
             {16000, 16, 0.25},
             {16000, 64, 0.5},
         }) {
        const auto w = makeMatchWorkload(n, k, 4, wc);
        ReferenceMatcher ref;
        BehavioralMatcher chip(k);
        const auto want = ref.match(w.text, w.pattern);
        const auto got = chip.match(w.text, w.pattern);
        std::size_t matches = 0;
        for (bool b : want)
            matches += b;
        const double beats_per_char =
            static_cast<double>(chip.lastBeats()) /
            static_cast<double>(n);
        table.addRowOf(n, k, Table::fixed(100 * wc, 0), matches,
                       got == want ? "yes" : "NO",
                       chip.lastBeats(),
                       Table::fixed(beats_per_char, 3),
                       chip.lastBeats() - 2 * n);
    }
    table.print();
    std::printf(
        "\nShape check: beats/char -> 2.0 as n grows (one character\n"
        "in per beat, both streams interleaved), independent of k.\n");
}

void
matchThroughput(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto k = static_cast<std::size_t>(state.range(1));
    const auto w = makeMatchWorkload(n, k, 4, 0.25);
    BehavioralMatcher chip(k);
    for (auto _ : state) {
        auto r = chip.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
    state.counters["beats"] =
        static_cast<double>(chip.lastBeats());
}

void
referenceThroughput(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto k = static_cast<std::size_t>(state.range(1));
    const auto w = makeMatchWorkload(n, k, 4, 0.25);
    ReferenceMatcher ref;
    for (auto _ : state) {
        auto r = ref.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}

BENCHMARK(matchThroughput)
    ->Args({1000, 4})
    ->Args({4000, 8})
    ->Args({4000, 32});
BENCHMARK(referenceThroughput)
    ->Args({1000, 4})
    ->Args({4000, 8})
    ->Args({4000, 32});

} // namespace

SPM_BENCH_MAIN(printReport)
