/**
 * @file
 * E8 -- Section 3.4: counting and correlation on the same data flow.
 *
 * The paper derives a match counter (counting cell) and a correlator
 * (difference + adder cells) by swapping cell programs. The report
 * validates both against their closed forms and shows the data rate
 * is the same one-window-per-two-beats as the matcher's.
 */

#include "bench/bench_common.hh"

#include "core/reference.hh"
#include "extensions/counting.hh"
#include "extensions/numarray.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::ext;
using spm::bench::makeMatchWorkload;

std::vector<std::int64_t>
makeSignal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int64_t> v(n);
    for (auto &x : v)
        x = rng.nextInRange(-100, 100);
    return v;
}

void
printReport()
{
    spm::bench::banner(
        "E8: counting and correlation extensions (Section 3.4)",
        "Replace the accumulator with a counting cell, or the "
        "comparator with a difference cell and the accumulator with "
        "an adder: same array, same beats, new problem.");

    Table counting("Match counting (counting cell replaces "
                   "accumulator)");
    counting.setHeader({"text n", "pattern k+1", "wildcard %",
                        "max count", "full matches", "agrees"});
    for (const auto &[n, k, wc] :
         std::vector<std::tuple<std::size_t, std::size_t, double>>{
             {2000, 4, 0.0}, {2000, 8, 0.25}, {8000, 16, 0.5}}) {
        const auto w = makeMatchWorkload(n, k, 3, wc);
        SystolicMatchCounter counter(k);
        const auto got = counter.count(w.text, w.pattern);
        const auto want = core::referenceMatchCounts(w.text, w.pattern);
        unsigned max_count = 0;
        std::size_t full = 0;
        for (unsigned c : want) {
            max_count = std::max(max_count, c);
            full += c == k;
        }
        counting.addRowOf(n, k, Table::fixed(100 * wc, 0), max_count,
                          full, got == want ? "yes" : "NO");
    }
    counting.print();

    Table corr("Correlation (difference cell + adder cell): "
               "r_i = sum (s_j - p_j)^2");
    corr.setHeader({"signal n", "weights k+1", "min r (best match)",
                    "exact alignments", "agrees"});
    for (const auto &[n, k] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {2000, 4}, {4000, 16}, {8000, 32}}) {
        auto sig = makeSignal(n, 90 + n);
        const auto w = makeSignal(k, 17 + k);
        // Plant one exact alignment so the best match is zero.
        for (std::size_t j = 0; j < k; ++j)
            sig[n / 2 + j] = w[j];
        SystolicCorrelator correlator(k);
        const auto got = correlator.correlate(sig, w);
        const auto want = core::referenceCorrelation(sig, w);
        std::int64_t best = want[k - 1];
        std::size_t zeros = 0;
        for (std::size_t i = k - 1; i < n; ++i) {
            best = std::min(best, want[i]);
            zeros += want[i] == 0;
        }
        corr.addRowOf(n, k, best, zeros,
                      got == want ? "yes" : "NO");
    }
    corr.print();
    std::printf(
        "\nShape check: both extensions agree with their closed\n"
        "forms; 'a good match of substring to pattern' appears as a\n"
        "zero of the squared-difference correlation (Section 3.4).\n");
}

void
countingRate(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto w = makeMatchWorkload(1000, k, 3, 0.25);
    SystolicMatchCounter counter(k);
    for (auto _ : state) {
        auto c = counter.count(w.text, w.pattern);
        benchmark::DoNotOptimize(c);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}

BENCHMARK(countingRate)->Arg(4)->Arg(16)->Arg(64);

void
correlatorRate(benchmark::State &state)
{
    const auto k = static_cast<std::size_t>(state.range(0));
    const auto sig = makeSignal(1000, 4);
    const auto w = makeSignal(k, 5);
    SystolicCorrelator correlator(k);
    for (auto _ : state) {
        auto r = correlator.correlate(sig, w);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1000);
}

BENCHMARK(correlatorRate)->Arg(4)->Arg(16)->Arg(64);

} // namespace

SPM_BENCH_MAIN(printReport)
