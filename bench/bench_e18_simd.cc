/**
 * @file
 * E18 -- SIMD widening and multi-stream batching: what the three new
 * throughput layers buy over the E13 fast paths, and where the
 * remaining sharded wall-clock went.
 *
 * Four measurements:
 *
 *   simd kernel    the SIMD-widened bit-sliced kernel (simdpar) vs
 *                  the word-parallel kernel on a single hot stream,
 *                  plus a forced-tier A/B (scalar / sse2 / avx2) of
 *                  the same code so the widening win is separated
 *                  from the fused-recurrence win;
 *   batch width    one BatchMatcher pass over W short streams vs W
 *                  single-stream passes -- the north-star serving
 *                  shape, where plane words are filled by batch
 *                  width, not stream length;
 *   batch service  the batched request path vs the streaming service
 *                  on the same bundle of short requests (serving
 *                  overhead per request vs per pass);
 *   sharded wall   the sharded service re-measured after the serving
 *                  fixes (journal guard, chunked bus charging, window
 *                  reuse, opt-in thread pinning), with the ladder
 *                  pinned to the word-parallel and SIMD kernels --
 *                  and the default gate-level ladder alongside, which
 *                  shows why E13's wall-clock number was never a
 *                  serving-layer problem: the gate rung simulates
 *                  every transistor and meets its beat budget; it is
 *                  simply 5 orders of magnitude more work per char.
 *
 * The report writes every headline number to BENCH_E18.json
 * (override with --json <path>; --smoke shrinks the sweep for CI).
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>

#include "core/batch.hh"
#include "core/reference.hh"
#include "core/simdpar.hh"
#include "core/wordpar.hh"
#include "service/batch.hh"
#include "service/sharded.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;
using spm::bench::jsonReport;
using spm::bench::makeMatchWorkload;
using spm::bench::smokeMode;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Wall-clock chars/sec of one match call, best of @p reps. */
template <typename MatcherT>
double
charsPerSec(MatcherT &m, const spm::bench::MatchWorkload &w,
            int reps = 3)
{
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        std::vector<bool> r;
        const double s = secondsOf(
            [&] { r = m.match(w.text, w.pattern); });
        benchmark::DoNotOptimize(r);
        best = std::min(best, s);
    }
    return static_cast<double>(w.text.size()) / best;
}

std::vector<SimdIsa>
supportedTiers()
{
    std::vector<SimdIsa> tiers{SimdIsa::Scalar};
    if (simdIsaSupported(SimdIsa::Sse2))
        tiers.push_back(SimdIsa::Sse2);
    if (simdIsaSupported(SimdIsa::Avx2))
        tiers.push_back(SimdIsa::Avx2);
    return tiers;
}

void
simdKernelReport()
{
    const std::size_t big = smokeMode() ? 16384 : 1048576;
    const std::vector<std::size_t> sizes =
        smokeMode() ? std::vector<std::size_t>{4096, big}
                    : std::vector<std::size_t>{65536, 262144, big};
    const std::size_t k = 8;

    Table table("SIMD kernel vs word-parallel kernel "
                "(2-bit alphabet, k = 8, 12% wild cards)");
    table.setHeader({"text chars", "wordpar Mchars/s", "simd Mchars/s",
                     "speedup vs wordpar", "agrees"});
    double big_speedup = 0;
    for (const std::size_t n : sizes) {
        const auto w = makeMatchWorkload(n, k, 2, 0.12);
        WordParallelMatcher wp;
        SimdParallelMatcher sp;
        ReferenceMatcher ref;

        const double cs_w = charsPerSec(wp, w);
        const double cs_s = charsPerSec(sp, w);
        const bool agrees = sp.match(w.text, w.pattern) ==
                            ref.match(w.text, w.pattern);
        const double speedup = cs_s / cs_w;
        if (n == big)
            big_speedup = speedup;
        table.addRowOf(n, Table::fixed(cs_w / 1e6, 2),
                       Table::fixed(cs_s / 1e6, 2),
                       Table::fixed(speedup, 1), agrees ? "yes" : "NO");
        const std::string p = "simd.n" + std::to_string(n) + ".";
        jsonReport().set(p + "wordpar_chars_per_sec", cs_w);
        jsonReport().set(p + "simd_chars_per_sec", cs_s);
        jsonReport().set(p + "speedup_vs_wordpar", speedup);
        jsonReport().set(p + "agrees", agrees ? "yes" : "no");
    }
    table.print();
    jsonReport().set("simd.big_text_chars", static_cast<double>(big));
    jsonReport().set("simd.big_speedup_vs_wordpar", big_speedup);
    std::printf("\nShape check: the SIMD kernel is %.1fx the "
                "word-parallel kernel on\nthe %zu-char text "
                "(acceptance floor: 2x on 1 MB in a Release build).\n",
                big_speedup, big);
}

void
simdIsaReport()
{
    // Forced-tier A/B of one binary: the scalar tier already carries
    // the fused short-pattern recurrence and the byte transpose, so
    // scalar-vs-wordpar is the algorithmic win and sse2/avx2-vs-scalar
    // the pure register-width win.
    const std::size_t n = smokeMode() ? 16384 : 1048576;
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);

    Table table("Forced-tier A/B (text n = " + std::to_string(n) +
                ", k = 8)");
    table.setHeader({"tier", "Mchars/s", "planes", "short path"});
    for (const SimdIsa isa : supportedTiers()) {
        SimdParallelMatcher m(isa);
        const double cs = charsPerSec(m, w);
        table.addRowOf(simdIsaName(isa), Table::fixed(cs / 1e6, 2),
                       m.lastPlanes(), m.lastShortPath() ? "yes" : "no");
        jsonReport().set("simd.n" + std::to_string(n) + ".isa_" +
                             simdIsaName(isa) + "_chars_per_sec",
                         cs);
    }
    table.print();
    jsonReport().set("simd.best_isa", simdIsaName(bestSimdIsa()));
}

void
batchWidthReport()
{
    // W short streams through one kernel pass. At 12 characters a
    // lone stream fills 12/64 of its plane word -- 81% padding -- and
    // pays the per-pass costs (transpose setup, pattern masks, result
    // extraction) on 12 characters; at W = 1000 the words are full
    // and the same costs spread over 12,000.
    const std::size_t len = 12;
    const std::size_t k = 8;
    const std::size_t target =
        smokeMode() ? 100'000 : 2'000'000; // chars per timed rep

    WorkloadGen gen(0xE18BA7C4, 2);
    const auto pattern = gen.randomPattern(k, 0.12);

    Table table("Batch width scaling (streams of " +
                std::to_string(len) + " chars, k = 8)");
    table.setHeader({"streams/pass", "Mchars/s", "kernel chars/pass",
                     "speedup vs w=1"});
    BatchMatcher bm;
    ReferenceMatcher ref;
    double cs_w1 = 0;
    bool agrees = true;
    for (const std::size_t width :
         {std::size_t(1), std::size_t(3), std::size_t(64),
          std::size_t(1000)}) {
        std::vector<std::vector<Symbol>> streams(width);
        for (std::size_t i = 0; i < width; ++i) {
            WorkloadGen sg(0xE18000 + i, 2);
            streams[i] = sg.textWithPlants(len, pattern, k * 3 + 1);
        }
        const std::size_t passes =
            std::max<std::size_t>(1, target / (width * len));
        double best = 1e300;
        for (int rep = 0; rep < 3; ++rep)
            best = std::min(best, secondsOf([&] {
                for (std::size_t p = 0; p < passes; ++p) {
                    auto r = bm.matchMany(streams, pattern);
                    benchmark::DoNotOptimize(r);
                }
            }));
        const double cs =
            static_cast<double>(width * len * passes) / best;
        if (width == 1)
            cs_w1 = cs;
        if (width == 64) {
            // Spot-check the pack against per-stream reference runs.
            const auto got = bm.matchMany(streams, pattern);
            for (std::size_t i = 0; i < width && agrees; ++i)
                agrees = got[i] == ref.match(streams[i], pattern);
        }
        table.addRowOf(width, Table::fixed(cs / 1e6, 2),
                       bm.lastKernelChars(),
                       Table::fixed(cs / cs_w1, 1));
        const std::string p = "batch.w" + std::to_string(width) + ".";
        jsonReport().set(p + "chars_per_sec", cs);
        jsonReport().set(p + "kernel_chars_per_pass",
                         static_cast<double>(bm.lastKernelChars()));
        if (width == 1000)
            jsonReport().set("batch.w1000_speedup_vs_w1", cs / cs_w1);
    }
    table.print();
    jsonReport().set("batch.agrees", agrees ? "yes" : "no");
    std::printf("\nShape check: 1000-stream passes are the shape the "
                "kernel was built\nfor; width must buy throughput "
                "(floor: 2x over one-stream passes)\nand the packing "
                "must stay bit-identical to per-stream matching.\n");
}

void
batchServiceReport()
{
    // The same bundle of short requests through both front ends: the
    // streaming service pays validation, chunk loop, checkpointing and
    // bus charging per request; the batched path pays them per pass.
    const std::size_t len = 64;
    const std::size_t k = 8;
    const std::size_t requests = smokeMode() ? 64 : 1024;

    service::BatchServiceConfig bcfg;
    bcfg.base.alphabetBits = 2;
    bcfg.base.maxTextLen = len * 4;
    bcfg.base.crossCheck = false;
    bcfg.base.journalEnabled = false;

    WorkloadGen gen(0xE18F00D, 2);
    const auto pattern = gen.randomPattern(k, 0.12);
    std::vector<service::MatchRequest> batch(requests);
    for (std::size_t i = 0; i < requests; ++i) {
        WorkloadGen sg(0xE18100 + i, 2);
        batch[i].id = i;
        batch[i].text = sg.textWithPlants(len, pattern, k * 3 + 1);
        batch[i].pattern = pattern;
    }

    // The streaming side gets the same SIMD kernel as its only rung,
    // so the difference below is serving overhead, not ladder
    // fidelity (the default ladder's gate rung would drown it).
    std::vector<std::unique_ptr<service::ServiceBackend>> rung;
    rung.push_back(std::make_unique<service::MatcherBackend>(
        std::make_unique<SimdParallelMatcher>()));
    service::BatchMatchService batched(bcfg);
    service::MatchService streaming(bcfg.base, std::move(rung));
    const double total = static_cast<double>(requests * len);

    double s_batched = 1e300;
    double s_streaming = 1e300;
    bool all_ok = true;
    for (int rep = 0; rep < 3; ++rep) {
        s_batched = std::min(s_batched, secondsOf([&] {
            auto resp = batched.serveBatch(batch);
            for (const auto &r : resp)
                all_ok = all_ok && r.ok();
            benchmark::DoNotOptimize(resp);
        }));
        s_streaming = std::min(s_streaming, secondsOf([&] {
            for (const auto &req : batch) {
                auto r = streaming.serve(req);
                all_ok = all_ok && r.ok();
                benchmark::DoNotOptimize(r);
            }
        }));
    }
    const double cs_b = total / s_batched;
    const double cs_s = total / s_streaming;

    Table table("Serving " + std::to_string(requests) + " short "
                "requests (" + std::to_string(len) + " chars each)");
    table.setHeader({"front end", "Mchars/s", "requests/s"});
    table.addRowOf("streaming (one by one)", Table::fixed(cs_s / 1e6, 2),
                   Table::fixed(cs_s / static_cast<double>(len), 0));
    table.addRowOf("batched (one pass)", Table::fixed(cs_b / 1e6, 2),
                   Table::fixed(cs_b / static_cast<double>(len), 0));
    table.print();

    jsonReport().set("batch_service.streaming_chars_per_sec", cs_s);
    jsonReport().set("batch_service.batched_chars_per_sec", cs_b);
    jsonReport().set("batch_service.batched_speedup", cs_b / cs_s);
    jsonReport().set("batch_service.all_ok", all_ok ? "yes" : "no");
    std::printf("\nShape check: batching the serving layer is worth "
                "%.0fx on short\nrequests -- per-request overhead, not "
                "kernel speed, bounds the\nstreaming path here.\n",
                cs_b / cs_s);
}

service::ShardedConfig
shardedConfig(unsigned threads, std::size_t text_len)
{
    service::ShardedConfig cfg;
    cfg.base.alphabetBits = 2;
    cfg.base.maxTextLen = std::max<std::size_t>(text_len, 1) * 2;
    cfg.base.chunkChars = 512;
    cfg.base.crossCheck = false; // measure serving, not auditing
    cfg.base.journalEnabled = false;
    cfg.threads = threads;
    cfg.minShardChars = 1024;
    cfg.pinThreads = true; // dedicated-host benchmark: opt in
    return cfg;
}

/** A ladder with a single rung: the given kernel behind the service. */
service::ShardedMatchService::LadderFactory
pinnedLadder(const std::function<std::unique_ptr<Matcher>()> &make)
{
    return [make](const service::ServiceConfig &) {
        std::vector<std::unique_ptr<service::ServiceBackend>> rungs;
        rungs.push_back(
            std::make_unique<service::MatcherBackend>(make()));
        return rungs;
    };
}

void
shardedWallClockReport()
{
    const std::size_t n = smokeMode() ? 8192 : 262144;
    const std::size_t k = 8;
    const auto w = makeMatchWorkload(n, k, 2, 0.12);
    service::MatchRequest req;
    req.id = 18;
    req.text = w.text;
    req.pattern = w.pattern;

    struct Ladder
    {
        const char *label; ///< table + JSON name
        service::ShardedMatchService::LadderFactory factory;
    };
    const std::vector<Ladder> ladders = {
        {"wordpar", pinnedLadder(
                        [] { return std::make_unique<WordParallelMatcher>(); })},
        {"simd", pinnedLadder(
                     [] { return std::make_unique<SimdParallelMatcher>(); })},
    };

    Table table("Sharded wall clock after the serving fixes "
                "(text n = " + std::to_string(n) + ", chunk 512, "
                "pinned threads)");
    table.setHeader({"ladder", "threads", "wall Mchars/s",
                     "critical beats", "queue-wait beats (mean)"});
    ReferenceMatcher ref;
    const auto want = ref.match(w.text, w.pattern);
    bool agrees = true;
    for (const Ladder &ladder : ladders) {
        for (const unsigned threads : {1u, 2u, 4u}) {
            service::ShardedMatchService svc(shardedConfig(threads, n),
                                             ladder.factory);
            service::MatchResponse resp;
            double best = 1e300;
            for (int rep = 0; rep < 3; ++rep)
                best = std::min(
                    best, secondsOf([&] { resp = svc.serve(req); }));
            if (!resp.ok()) {
                std::printf("sharded serve failed: %s\n",
                            resp.error.detail.c_str());
                return;
            }
            agrees = agrees && resp.result == want;
            const double cs = static_cast<double>(n) / best;
            const auto snap = svc.metricsSnapshot();
            const auto *qw = snap.histogram("sharded.queue_wait_beats");
            const double qw_mean = qw && qw->samples() ? qw->mean() : 0;
            table.addRowOf(ladder.label, threads,
                           Table::fixed(cs / 1e6, 2),
                           svc.lastCriticalBeats(),
                           Table::fixed(qw_mean, 1));
            const std::string p = "sharded_" +
                                  std::string(ladder.label) + ".n" +
                                  std::to_string(n) + ".threads" +
                                  std::to_string(threads) + ".";
            jsonReport().set(p + "wall_chars_per_sec", cs);
            jsonReport().set(p + "critical_beats",
                             static_cast<double>(svc.lastCriticalBeats()));
            jsonReport().set(p + "queue_wait_mean_beats", qw_mean);
        }
    }

    // The E13 configuration unchanged: default ladder, so every chunk
    // is served by the gate-level netlist rung (it meets its beat
    // budget; no degradation). This is the diagnosis number -- the old
    // wall-clock "gap" was fidelity-priced compute, not serving
    // overhead.
    service::ShardedMatchService gate(shardedConfig(4, n));
    service::MatchResponse gresp;
    double gbest = 1e300;
    for (int rep = 0; rep < (smokeMode() ? 1 : 3); ++rep)
        gbest = std::min(gbest,
                         secondsOf([&] { gresp = gate.serve(req); }));
    const double cs_gate = static_cast<double>(n) / gbest;
    if (gresp.ok()) {
        agrees = agrees && gresp.result == want;
        table.addRowOf("gate (default)", 4u, Table::fixed(cs_gate / 1e6, 2),
                       gate.lastCriticalBeats(), "-");
    }
    table.print();
    jsonReport().set("sharded_gate.n" + std::to_string(n) +
                         ".threads4.wall_chars_per_sec",
                     cs_gate);
    jsonReport().set("sharded.agrees", agrees ? "yes" : "no");
    std::printf(
        "\nShape check: with the ladder pinned to a software kernel, "
        "the sharded\nfront end must beat the E13 wall-clock baseline "
        "(309,640 chars/s at 4\nthreads, BENCH_E13.json) by at least "
        "2x -- that gap was serving\noverhead (journal strings built "
        "while disabled, per-char bus charging,\nper-chunk window "
        "allocation) and is now fixed. The gate-ladder row\nreproduces "
        "the E13 configuration: its wall clock is the gate "
        "simulator's\nfidelity price, which no serving-layer fix "
        "should (or does) change.\nThis host has %u core(s); "
        "wall-clock thread scaling needs idle cores,\nwhile the "
        "critical-beats figure stays host-independent.\n",
        std::thread::hardware_concurrency());
}

void
printReport()
{
    spm::bench::jsonDefaultPath("BENCH_E18.json");
    spm::bench::banner(
        "E18: SIMD widening, multi-stream batching, sharded wall clock",
        "The bit-sliced kernel widened to 128/256-bit registers with a "
        "fused short-pattern recurrence, a batch front end that fills "
        "plane words with independent streams, and the sharded service "
        "re-measured after the serving-overhead fixes.");
    simdKernelReport();
    simdIsaReport();
    batchWidthReport();
    batchServiceReport();
    shardedWallClockReport();
}

void
simdThroughput(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    SimdParallelMatcher sp;
    for (auto _ : state) {
        auto r = sp.match(w.text, w.pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void
batchThroughput(benchmark::State &state)
{
    const auto width = static_cast<std::size_t>(state.range(0));
    const std::size_t len = 12;
    WorkloadGen gen(0xE18BA7C4, 2);
    const auto pattern = gen.randomPattern(8, 0.12);
    std::vector<std::vector<Symbol>> streams(width);
    for (std::size_t i = 0; i < width; ++i) {
        WorkloadGen sg(0xE18000 + i, 2);
        streams[i] = sg.textWithPlants(len, pattern, 25);
    }
    BatchMatcher bm;
    for (auto _ : state) {
        auto r = bm.matchMany(streams, pattern);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(width * len));
}

void
shardedKernelThroughput(benchmark::State &state)
{
    const auto threads = static_cast<unsigned>(state.range(0));
    const std::size_t n = 65536;
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    service::ShardedMatchService svc(
        shardedConfig(threads, n),
        pinnedLadder([] { return std::make_unique<SimdParallelMatcher>(); }));
    service::MatchRequest req;
    req.text = w.text;
    req.pattern = w.pattern;
    for (auto _ : state) {
        auto resp = svc.serve(req);
        benchmark::DoNotOptimize(resp);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

BENCHMARK(simdThroughput)->Arg(65536)->Arg(1048576);
BENCHMARK(batchThroughput)->Arg(1)->Arg(64)->Arg(1000);
BENCHMARK(shardedKernelThroughput)->Arg(1)->Arg(4);

} // namespace

SPM_BENCH_MAIN(printReport)
