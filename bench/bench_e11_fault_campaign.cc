/**
 * @file
 * E11 -- fault-injection campaign over the protected machine.
 *
 * Section 5 argues the regular linear array tolerates *fabrication*
 * defects by rewiring; E11 extends the argument to *runtime* faults.
 * The campaign sweeps permanent stuck-at faults, dead cells and
 * seeded transient flips over every latch of the 8-cell prototype
 * and classifies each injection under layered protection: parity on
 * the bus characters, duplicated (self-checking) comparators, TMR
 * voting across three arrays, host software cross-check, bounded
 * retry, and spare-cell bypass through the wafer snake.
 *
 * Acceptance: with full protection, at least 99% of effective
 * (non-masked) permanent stuck-at injections are detected or
 * corrected and the residual silent-corruption rate is zero. The
 * seeded campaign is bit-for-bit reproducible.
 */

#include "bench/bench_common.hh"

#include <string>

#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "fault/model.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::fault;

CampaignConfig
e11Config()
{
    CampaignConfig cfg;
    cfg.cells = 8; // the fabricated prototype
    cfg.alphabetBits = 2;
    cfg.textLen = 48;
    cfg.patternLen = 4;
    cfg.wildcardProb = 0.25;
    cfg.seed = 1979;
    return cfg;
}

std::vector<Fault>
permanentSweep()
{
    auto faults = sweepStuckAtFaults(8, 2);
    const auto dead = sweepDeadCellFaults(8);
    faults.insert(faults.end(), dead.begin(), dead.end());
    return faults;
}

void
printReport()
{
    spm::bench::banner(
        "E11: fault-injection campaign (runtime fault tolerance)",
        "Every latch of the 8-cell prototype attacked with stuck-at, "
        "dead-cell and transient faults;\ndetection by parity + "
        "duplicated comparators + TMR + reference cross-check, "
        "recovery by vote,\nbounded retry and wafer-snake bypass.");

    const CampaignConfig cfg = e11Config();
    FaultCampaign campaign(cfg);
    const auto permanents = permanentSweep();
    const auto transients = sweepTransientFaults(
        cfg.cells, cfg.alphabetBits, campaign.protocolBeats(), 64,
        cfg.seed);

    // --- full protection --------------------------------------------
    auto all = permanents;
    all.insert(all.end(), transients.begin(), transients.end());
    const auto results = campaign.run(all);
    FaultCampaign::coverageTable(
        results,
        "Full protection (parity + self-check + TMR + reference + "
        "retry + bypass)")
        .print();

    const auto perm_results = campaign.run(permanents);
    const auto s = FaultCampaign::summarize(perm_results);
    std::printf(
        "\nPermanent stuck-at/dead-cell sweep: %zu injections, %zu "
        "masked (no observable effect),\n%.1f%% of the %zu effective "
        "injections detected or corrected (acceptance: >= 99%%),\n"
        "residual silent-corruption rate %.2f%% of all injections.\n",
        s.total, s.masked, s.detectedOrCorrectedPct(), s.effective(),
        s.silentPct());

    // --- layered defense without TMR --------------------------------
    // With the voter off, wrong answers survive to the host and the
    // retry and bypass layers do the correcting: transients clear on
    // the re-run, permanents exhaust the retry budget and fall back
    // to the snake re-harvest on N-1 cells.
    CampaignConfig degraded_cfg = cfg;
    degraded_cfg.protection.tmr = false;
    degraded_cfg.retryPolicy.maxRetries = 1;
    FaultCampaign no_tmr(degraded_cfg);
    FaultCampaign::coverageTable(
        no_tmr.run(all),
        "No TMR: detection only, recovery by retry and bypass")
        .print();

    // --- unprotected baseline ---------------------------------------
    CampaignConfig bare_cfg = cfg;
    bare_cfg.protection = Protection::none();
    FaultCampaign bare(bare_cfg);
    FaultCampaign::coverageTable(
        bare.run(all), "Unprotected baseline: every layer off")
        .print();
    std::printf(
        "\nEverything the unprotected machine shows as silent is the "
        "corruption budget the\nprotection layers exist to spend "
        "down.\n");

    // --- the same faults at the other fidelities --------------------
    Table fid("Campaign portability: one stuck-at per point, "
              "reference-checked per fidelity");
    fid.setHeader(
        {"fault", "behavioral", "bit-serial", "gate-level"});
    FaultCampaign port(cfg);
    const auto mini = sweepStuckAtFaults(2, 2);
    std::size_t shown = 0;
    for (std::size_t i = 0; i < mini.size() && shown < 8; i += 3) {
        const Fault &f = mini[i];
        fid.addRowOf(
            f.describe(),
            outcomeName(port.runReferenceChecked(Fidelity::Behavioral,
                                                 f)),
            outcomeName(
                port.runReferenceChecked(Fidelity::BitSerial, f)),
            outcomeName(
                port.runReferenceChecked(Fidelity::GateLevel, f)));
        ++shown;
    }
    fid.print();

    // --- reproducibility --------------------------------------------
    FaultCampaign again(cfg);
    const bool reproducible =
        FaultCampaign::coverageTable(again.run(all), "x").toString() ==
        FaultCampaign::coverageTable(campaign.run(all), "x").toString();
    std::printf("\nReproducibility: two campaigns from seed %llu "
                "produce %s coverage tables.\n",
                static_cast<unsigned long long>(cfg.seed),
                reproducible ? "bit-for-bit identical"
                             : "DIFFERENT (BUG)");
}

void
campaignPermanentSweep(benchmark::State &state)
{
    const CampaignConfig cfg = e11Config();
    const auto faults = permanentSweep();
    for (auto _ : state) {
        FaultCampaign campaign(cfg);
        benchmark::DoNotOptimize(
            FaultCampaign::summarize(campaign.run(faults)).silent);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * faults.size());
}

void
singleTrialFullProtection(benchmark::State &state)
{
    FaultCampaign campaign(e11Config());
    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = systolic::FaultPoint::CompareLatch;
    f.cell = 3;
    for (auto _ : state) {
        benchmark::DoNotOptimize(campaign.runTrial(f).outcome);
    }
}

BENCHMARK(campaignPermanentSweep)->Unit(benchmark::kMillisecond);
BENCHMARK(singleTrialFullProtection)->Unit(benchmark::kMicrosecond);

} // namespace

SPM_BENCH_MAIN(printReport)
