/**
 * @file
 * E15 -- telemetry overhead: what does observing the simulator cost?
 *
 * The telemetry layer promises to be cheap enough to leave on: striped
 * relaxed counters, thread-local span rings, sampling-gated
 * histograms. This experiment quantifies that promise three ways:
 *
 *   end to end     the streaming service serves the same request with
 *                  telemetry runtime-enabled (tracing + sampling on)
 *                  and runtime-disabled; the relative slowdown is the
 *                  headline overhead number, gated in CI at 5%;
 *   micro          ns per counter bump, histogram sample, and scoped
 *                  span against the global sinks;
 *   compiled out   under -DSPM_TELEM_OFF every instrumentation macro
 *                  expands to ((void)0); the same binary reports
 *                  which flavor it is so CI can diff the two builds.
 *
 * The report writes BENCH_E15.json (override with --json <path>;
 * --smoke shrinks the sweep for CI).
 */

#include "bench/bench_common.hh"

#include <algorithm>
#include <chrono>
#include <functional>

#include "service/service.hh"
#include "telemetry/metrics.hh"
#include "telemetry/span.hh"
#include "telemetry/telem.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using spm::bench::jsonReport;
using spm::bench::makeMatchWorkload;
using spm::bench::smokeMode;

double
secondsOf(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

bool
compiledOut()
{
#ifdef SPM_TELEM_OFF
    return true;
#else
    return false;
#endif
}

/** Flip every runtime telemetry switch at once. */
void
setTelemetry(bool on)
{
    telem::TraceBuffer::global().setEnabled(on);
    telem::TraceBuffer::global().setCategoryMask(telem::cat::all);
    telem::setSamplingEnabled(on);
}

service::ServiceConfig
serviceConfig(std::size_t text_len)
{
    service::ServiceConfig cfg;
    cfg.alphabetBits = 2;
    cfg.maxTextLen = std::max<std::size_t>(text_len, 1) * 2;
    cfg.chunkChars = 256;
    cfg.crossCheck = false; // measure serving, not auditing
    cfg.journalEnabled = false;
    return cfg;
}

/** chars/sec in both modes plus the paired overhead estimate. */
struct EndToEnd
{
    double charsPerSecOff = 0;
    double charsPerSecOn = 0;
    double overhead = 0;
};

/**
 * Measure serve() with telemetry off and on in adjacent pairs,
 * alternating which mode goes first. A shared machine adds multi-ms
 * jitter that dwarfs the true overhead, but adjacent runs see nearly
 * the same noise, so the minimum per-pair ratio is a tight upper
 * bound on the real slowdown where independent best-of times are not.
 */
EndToEnd
serviceOverhead(std::size_t n, int pairs)
{
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    service::MatchService svc(serviceConfig(n));
    service::MatchRequest req;
    req.id = 15;
    req.text = w.text;
    req.pattern = w.pattern;

    service::MatchResponse warm = svc.serve(req);
    benchmark::DoNotOptimize(warm);

    const auto serveSeconds = [&](bool on) {
        setTelemetry(on);
        service::MatchResponse resp;
        const double s = secondsOf([&] { resp = svc.serve(req); });
        benchmark::DoNotOptimize(resp);
        return s;
    };

    EndToEnd r;
    double best_off = 1e300;
    double best_on = 1e300;
    double min_ratio = 1e300;
    for (int i = 0; i < pairs; ++i) {
        const bool on_first = (i & 1) != 0;
        const double a = serveSeconds(on_first);
        const double b = serveSeconds(!on_first);
        const double t_on = on_first ? a : b;
        const double t_off = on_first ? b : a;
        best_off = std::min(best_off, t_off);
        best_on = std::min(best_on, t_on);
        min_ratio = std::min(min_ratio, t_on / t_off);
    }
    setTelemetry(false);
    r.charsPerSecOff = static_cast<double>(n) / best_off;
    r.charsPerSecOn = static_cast<double>(n) / best_on;
    r.overhead = std::max(min_ratio - 1.0, 0.0);
    return r;
}

void
endToEndReport()
{
    const std::size_t n = smokeMode() ? 16384 : 131072;
    const int pairs = smokeMode() ? 5 : 7;

    const EndToEnd e = serviceOverhead(n, pairs);
    const double cs_off = e.charsPerSecOff;
    const double cs_on = e.charsPerSecOn;
    const double overhead = e.overhead;

    Table table("Streaming service with telemetry on vs off (" +
                std::to_string(n) + " chars, k = 8, 2-bit alphabet)");
    table.setHeader({"mode", "Mchars/s", "overhead"});
    table.addRowOf("runtime-disabled", Table::fixed(cs_off / 1e6, 3),
                   "baseline");
    table.addRowOf(compiledOut() ? "enabled (compiled out)" : "enabled",
                   Table::fixed(cs_on / 1e6, 3),
                   Table::fixed(100.0 * overhead, 2) + "%");
    std::printf("%s\n", table.toString().c_str());

    jsonReport().set("telemetry.build",
                     compiledOut() ? "telem-off" : "default");
    jsonReport().set("telemetry.compiled_out", compiledOut() ? 1.0 : 0.0);
    jsonReport().set("telemetry.text_chars",
                     static_cast<double>(n));
    jsonReport().set("telemetry.disabled_chars_per_sec", cs_off);
    jsonReport().set("telemetry.enabled_chars_per_sec", cs_on);
    jsonReport().set("telemetry.enabled_overhead_frac",
                     overhead);
}

void
microReport()
{
    const std::uint64_t iters = smokeMode() ? 200000 : 2000000;
    setTelemetry(true);

    const double ctr_s = secondsOf([&] {
        for (std::uint64_t i = 0; i < iters; ++i)
            SPM_TCOUNT_GLOBAL("bench.e15.counter", 1);
    });
    const double hist_s = secondsOf([&] {
        for (std::uint64_t i = 0; i < iters; ++i)
            SPM_THIST_GLOBAL("bench.e15.hist", 0.0, 1.0, 16,
                             static_cast<double>(i % 100) / 100.0);
    });
    const double span_s = secondsOf([&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
            SPM_TSPAN("bench.e15.span", telem::cat::engine, 0, i);
        }
    });
    setTelemetry(false);
    const double span_off_s = secondsOf([&] {
        for (std::uint64_t i = 0; i < iters; ++i) {
            SPM_TSPAN("bench.e15.span", telem::cat::engine, 0, i);
        }
    });

    const double to_ns = 1e9 / static_cast<double>(iters);
    Table table("Per-site cost of the instrumentation primitives");
    table.setHeader({"primitive", "ns/op"});
    table.addRowOf("counter add (striped relaxed)",
                   Table::fixed(ctr_s * to_ns, 1));
    table.addRowOf("histogram sample", Table::fixed(hist_s * to_ns, 1));
    table.addRowOf("scoped span (recording)",
                   Table::fixed(span_s * to_ns, 1));
    table.addRowOf("scoped span (runtime-disabled)",
                   Table::fixed(span_off_s * to_ns, 1));
    std::printf("%s\n", table.toString().c_str());

    jsonReport().set("telemetry.counter_ns", ctr_s * to_ns);
    jsonReport().set("telemetry.histogram_ns", hist_s * to_ns);
    jsonReport().set("telemetry.span_ns", span_s * to_ns);
    jsonReport().set("telemetry.span_disabled_ns", span_off_s * to_ns);
    telem::TraceBuffer::global().clear();
}

void
printReport()
{
    spm::bench::jsonDefaultPath("BENCH_E15.json");
    spm::bench::banner(
        "E15: telemetry overhead",
        "Claim: registry counters, sampling histograms and span tracing\n"
        "cost a few ns per site and under 3-5% end to end, and the\n"
        "SPM_TELEM_OFF build compiles every optional site to nothing.");
    endToEndReport();
    microReport();
}

void
serviceServe(benchmark::State &state)
{
    const bool telemetry_on = state.range(0) != 0;
    const std::size_t n = 16384;
    const auto w = makeMatchWorkload(n, 8, 2, 0.12);
    service::MatchService svc(serviceConfig(n));
    service::MatchRequest req;
    req.text = w.text;
    req.pattern = w.pattern;
    setTelemetry(telemetry_on);
    for (auto _ : state) {
        auto resp = svc.serve(req);
        benchmark::DoNotOptimize(resp);
    }
    setTelemetry(false);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}

void
counterAdd(benchmark::State &state)
{
    setTelemetry(true);
    for (auto _ : state)
        SPM_TCOUNT_GLOBAL("bench.e15.timed_counter", 1);
    setTelemetry(false);
}

BENCHMARK(serviceServe)->Arg(0)->Arg(1);
BENCHMARK(counterAdd);

} // namespace

SPM_BENCH_MAIN(printReport)
