/**
 * @file
 * E2 -- Figure 3-2: the flow of characters.
 *
 * Regenerates the paper's beat-by-beat trace of the two streams
 * moving in opposite directions through the cells, and verifies the
 * meeting choreography analytically: pattern character p_j and text
 * character s_i meet in a cell (never between cells), and every
 * (p_j, s_i) pair needed by some window meets exactly where the
 * closed form predicts.
 */

#include "bench/bench_common.hh"

#include "core/behavioral.hh"
#include "core/reference.hh"
#include "systolic/trace.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::core;

void
printReport()
{
    spm::bench::banner(
        "E2: character choreography (Fig 3-2)",
        "Pattern flows left-to-right, string right-to-left, one cell "
        "per beat, valid characters on alternate cells; pairs meet in "
        "cells thanks to the text phase offset.");

    // The paper's own example: pattern AXC over the Figure 3-1 text.
    const auto pattern = parseSymbols("AXC");
    const auto text = parseSymbols("ABCAACCACB");

    BehavioralChip chip(3);
    systolic::TraceRecorder trace(24);
    chip.attachTrace(&trace);
    const ChipFeedPlan plan(3, pattern, text.size());
    for (Beat u = 0; u < 24; ++u) {
        chip.feedPattern(plan.patternAt(u));
        chip.feedControl(plan.controlAt(u));
        chip.feedString(plan.stringAt(u, text));
        chip.feedResult(plan.resultAt(u));
        chip.step();
    }
    std::fputs(trace.render(chip.engine()).c_str(), stdout);

    // Meeting verification across a range of array sizes.
    Table table("Meeting-cell verification (closed form vs simulation)");
    table.setHeader({"cells m", "text phase", "pairs checked",
                     "all meet in cells"});
    for (std::size_t m : {2u, 3u, 5u, 8u}) {
        const ChipFeedPlan p(m, parseSymbols("AB"), 16);
        // The parity argument: pattern beats are even, text beats
        // have parity phi, and (phi + m - 1) is even, so the beat
        // difference to any cell is always even: characters coincide
        // inside cells.
        const bool meets = (p.textPhase() + m - 1) % 2 == 0;
        table.addRowOf(m, p.textPhase(), m * 16,
                       meets ? "yes" : "NO");
    }
    table.print();
    std::printf(
        "\nShape check: the trace shows the checkerboard of valid\n"
        "('*'-active) cells advancing every beat, as in Figure 3-2.\n");
}

void
traceOverhead(benchmark::State &state)
{
    const auto cells = static_cast<std::size_t>(state.range(0));
    const auto w = spm::bench::makeMatchWorkload(512, cells, 2, 0.2);
    for (auto _ : state) {
        BehavioralChip chip(cells);
        systolic::TraceRecorder trace;
        chip.attachTrace(&trace);
        const ChipFeedPlan plan(cells, w.pattern, w.text.size());
        for (Beat u = 0; u < 256; ++u) {
            chip.feedPattern(plan.patternAt(u));
            chip.feedControl(plan.controlAt(u));
            chip.feedString(plan.stringAt(u, w.text));
            chip.feedResult(plan.resultAt(u));
            chip.step();
        }
        benchmark::DoNotOptimize(trace.beatCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 256);
}

BENCHMARK(traceOverhead)->Arg(4)->Arg(16)->Arg(64);

} // namespace

SPM_BENCH_MAIN(printReport)
