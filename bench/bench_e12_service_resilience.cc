/**
 * @file
 * E12 -- resilience of the streaming match service.
 *
 * The chip is a peripheral; what the host actually experiences is the
 * serving layer in front of it. E12 stresses that layer two ways at
 * once: a fault storm (seeded stuck-at, dead-cell and transient
 * injections against the hardware rungs, >= 100 injections) and a 2x
 * admission overload (twice the queue capacity offered under each
 * backpressure policy). The acceptance bar:
 *
 *   - zero silent corruptions: every completed request's result bits
 *     equal the reference matcher's, even when the answer came from a
 *     degraded rung;
 *   - >= 99% of accepted requests complete;
 *   - every rejected, shed or cancelled request carries a typed
 *     ServiceError;
 *   - a run killed at a checkpoint and resumed is bit-identical to an
 *     uninterrupted run.
 */

#include "bench/bench_common.hh"

#include <memory>
#include <string>
#include <vector>

#include "core/reference.hh"
#include "fault/injector.hh"
#include "fault/model.hh"
#include "service/service.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

using namespace spm;
using namespace spm::service;

constexpr std::uint64_t kSeed = 1980; // the paper's year
constexpr std::size_t kCells = 8;     // the fabricated prototype
constexpr BitWidth kBits = 2;

ServiceConfig
e12Config(BackpressurePolicy policy)
{
    ServiceConfig cfg;
    cfg.cells = kCells;
    cfg.alphabetBits = kBits;
    cfg.chunkChars = 24;
    cfg.queueCapacity = 8;
    cfg.policy = policy;
    cfg.rungFaultBudget = 1;
    cfg.journalEnabled = false; // storms would grow the journal huge
    return cfg;
}

MatchRequest
stormRequest(std::uint64_t id, std::uint64_t seed)
{
    WorkloadGen gen(seed, kBits);
    MatchRequest req;
    const std::size_t k = 3 + gen.rng().nextBelow(5); // 3..7 <= cells
    req.id = id;
    req.pattern = gen.randomPattern(k, 0.25);
    req.text = gen.textWithPlants(64 + gen.rng().nextBelow(64),
                                  req.pattern, 2 * k + 1);
    return req;
}

/** A ladder whose hardware rungs are under fault attack. */
std::vector<std::unique_ptr<ServiceBackend>>
faultyLadder(fault::FaultInjector &inj)
{
    auto behavioral = std::make_unique<BehavioralBackend>(kCells);
    behavioral->setChipPrep([&inj](core::BehavioralChip &chip) {
        inj.attach(chip.engine(), fault::behavioralResolver(chip));
    });
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::move(behavioral));
    ladder.push_back(std::make_unique<SoftwareBackend>());
    return ladder;
}

struct StormOutcome
{
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;
    std::uint64_t typedFailures = 0;
    std::uint64_t untypedFailures = 0; ///< error responses with code Ok
    std::uint64_t silentCorruptions = 0;
    std::uint64_t degradations = 0;
    std::uint64_t crossCheckCatches = 0;
    std::uint64_t injections = 0;
    double meanBeats = 0.0;
};

/** Check one response against the reference; classify the outcome. */
void
scoreResponse(const MatchRequest &req, const MatchResponse &resp,
              StormOutcome &out)
{
    if (resp.ok()) {
        ++out.completed;
        out.meanBeats += static_cast<double>(resp.beats);
        const auto expect =
            core::ReferenceMatcher().match(req.text, req.pattern);
        if (resp.result != expect)
            ++out.silentCorruptions;
    } else if (resp.error.code != ErrorCode::Ok) {
        ++out.typedFailures;
    } else {
        ++out.untypedFailures;
    }
    out.degradations += resp.degradations;
    out.crossCheckCatches += resp.crossCheckFailures;
}

/**
 * Drive @p faults one at a time against a service under 2x overload:
 * for each fault, offer 2 * queueCapacity requests, then drain. The
 * request for a given (fault, slot) pair is seeded, so the storm is
 * reproducible.
 */
StormOutcome
runStorm(BackpressurePolicy policy, const std::vector<fault::Fault> &faults)
{
    StormOutcome out;
    const ServiceConfig cfg = e12Config(policy);
    std::uint64_t id = 0;

    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        fault::FaultInjector inj(kBits);
        inj.addFault(faults[fi]);
        MatchService svc(cfg, faultyLadder(inj));

        std::vector<MatchRequest> batch;
        for (std::size_t s = 0; s < 2 * cfg.queueCapacity; ++s)
            batch.push_back(
                stormRequest(++id, kSeed + 977 * fi + s));

        for (const MatchRequest &req : batch) {
            ++out.offered;
            const auto sub = svc.submit(req);
            if (sub.shedResponse) {
                // Find the shed victim to score its (typed) failure.
                for (const MatchRequest &r : batch)
                    if (r.id == sub.shedResponse->id)
                        scoreResponse(r, *sub.shedResponse, out);
            }
            for (const MatchResponse &resp : sub.drained)
                for (const MatchRequest &r : batch)
                    if (r.id == resp.id)
                        scoreResponse(r, resp, out);
            if (!sub.accepted) {
                if (sub.error.code != ErrorCode::Ok)
                    ++out.typedFailures;
                else
                    ++out.untypedFailures;
            }
        }
        for (const MatchResponse &resp : svc.drain())
            for (const MatchRequest &r : batch)
                if (r.id == resp.id)
                    scoreResponse(r, resp, out);

        out.injections += inj.injections();
    }
    if (out.completed > 0)
        out.meanBeats /= static_cast<double>(out.completed);
    return out;
}

std::vector<fault::Fault>
stormFaults()
{
    // Exhaustive single stuck-at faults over a 2-cell slice plus dead
    // cells and seeded transients: well over the 100-injection bar,
    // each replayed against a fresh service instance.
    auto faults = fault::sweepStuckAtFaults(2, kBits);
    const auto dead = fault::sweepDeadCellFaults(kCells);
    faults.insert(faults.end(), dead.begin(), dead.end());
    const auto trans =
        fault::sweepTransientFaults(kCells, kBits, 200, 64, kSeed);
    faults.insert(faults.end(), trans.begin(), trans.end());
    return faults;
}

void
printStormTable(const std::vector<fault::Fault> &faults)
{
    Table t("Fault storm under 2x admission overload, by backpressure "
            "policy (seed " + std::to_string(kSeed) + ")");
    t.setHeader({"policy", "offered", "completed", "typed fail",
                 "untyped fail", "silent corrupt", "degraded",
                 "xcheck catches", "mean beats", "avail %"});
    bool all_ok = true;
    for (const BackpressurePolicy policy :
         {BackpressurePolicy::Reject, BackpressurePolicy::ShedOldest,
          BackpressurePolicy::Block}) {
        const StormOutcome o = runStorm(policy, faults);
        // Availability: completed over everything the service answered
        // (completions + typed failures; nothing may be untyped).
        const double answered =
            static_cast<double>(o.completed + o.typedFailures);
        const double avail =
            answered > 0.0
                ? 100.0 * static_cast<double>(o.completed) / answered
                : 0.0;
        t.addRowOf(policyName(policy), o.offered, o.completed,
                   o.typedFailures, o.untypedFailures,
                   o.silentCorruptions, o.degradations,
                   o.crossCheckCatches, Table::fixed(o.meanBeats, 1),
                   Table::fixed(avail, 2));
        all_ok = all_ok && o.silentCorruptions == 0 &&
                 o.untypedFailures == 0;
    }
    t.print();
    std::printf("\nAcceptance: zero silent corruptions and every "
                "failure typed across all policies: %s.\n",
                all_ok ? "PASS" : "FAIL");
}

void
printAcceptanceRun(const std::vector<fault::Fault> &faults)
{
    // The >= 99% completion bar is measured without overload: every
    // offered request is accepted (capacity is not the variable), and
    // the degradation ladder must carry >= 99% of them to completion
    // despite >= 100 fault injections.
    std::uint64_t accepted = 0, completed = 0, silent = 0;
    std::uint64_t injections = 0;
    const ServiceConfig cfg = e12Config(BackpressurePolicy::Reject);
    std::uint64_t id = 0;
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        fault::FaultInjector inj(kBits);
        inj.addFault(faults[fi]);
        MatchService svc(cfg, faultyLadder(inj));
        const MatchRequest req = stormRequest(++id, kSeed + 31 * fi);
        ++accepted;
        const MatchResponse resp = svc.serve(req);
        if (resp.ok()) {
            ++completed;
            if (resp.result !=
                core::ReferenceMatcher().match(req.text, req.pattern))
                ++silent;
        }
        injections += inj.injections();
    }
    const double pct =
        100.0 * static_cast<double>(completed) /
        static_cast<double>(accepted);
    std::printf(
        "\nFault-storm completion: %llu injections landed across %llu "
        "accepted requests;\n%llu completed (%.2f%%, acceptance: >= "
        "99%%), %llu silent corruptions (acceptance: 0).\n",
        static_cast<unsigned long long>(injections),
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(completed), pct,
        static_cast<unsigned long long>(silent));
}

std::vector<std::unique_ptr<ServiceBackend>>
behavioralOnlyLadder()
{
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<BehavioralBackend>(kCells));
    ladder.push_back(std::make_unique<SoftwareBackend>());
    return ladder;
}

void
printResumeCheck()
{
    // Kill the stream at every chunk boundary of one request and
    // resume: each resumed result must be bit-identical.
    ServiceConfig cfg = e12Config(BackpressurePolicy::Reject);
    cfg.journalEnabled = true;
    const MatchRequest req = stormRequest(1, kSeed + 4242);

    MatchService golden_svc(cfg, behavioralOnlyLadder());
    const MatchResponse golden = golden_svc.serve(req);

    std::size_t boundaries = 0, identical = 0;
    const std::size_t chunks =
        (req.text.size() + cfg.chunkChars - 1) / cfg.chunkChars;
    for (std::size_t kill = 1; kill < chunks; ++kill) {
        MatchService svc(cfg, behavioralOnlyLadder());
        StreamSession session = svc.startSession(req);
        for (std::size_t i = 0; i < kill; ++i)
            session.step();
        const Checkpoint cp = session.checkpoint();
        session.cancel("storm kill");
        (void)session.finish();

        MatchService resumed_svc(cfg, behavioralOnlyLadder());
        const MatchResponse resumed = resumed_svc.resume(req, cp);
        ++boundaries;
        if (resumed.ok() && resumed.result == golden.result)
            ++identical;
    }
    std::printf("\nCheckpoint/replay: killed and resumed at %zu chunk "
                "boundaries; %zu/%zu bit-identical to the "
                "uninterrupted run.\n",
                boundaries, identical, boundaries);
}

void
printReport()
{
    // The storm deliberately wedges and corrupts chips; per-event
    // warnings are the campaign working as intended, not news.
    setLogMinLevel(LogLevel::Warn);

    spm::bench::banner(
        "E12: service resilience (fault storm + admission overload)",
        "The streaming serving layer in front of the array: >= 100 "
        "seeded fault injections\nagainst the hardware rungs while "
        "every policy absorbs a 2x admission overload.\nDegraded "
        "answers are cross-checked against the reference matcher -- "
        "silent\ncorruption is the one outcome the service may never "
        "produce.");

    const auto faults = stormFaults();
    std::printf("Fault list: %zu faults (stuck-at + dead-cell + "
                "seeded transients), one service\ninstance per fault, "
                "16 requests each under 2x overload.\n",
                faults.size());

    printStormTable(faults);
    printAcceptanceRun(faults);
    printResumeCheck();

    // Reproducibility: the whole storm is a function of the seed.
    const StormOutcome a = runStorm(BackpressurePolicy::Reject, faults);
    const StormOutcome b = runStorm(BackpressurePolicy::Reject, faults);
    const bool same = a.completed == b.completed &&
                      a.typedFailures == b.typedFailures &&
                      a.degradations == b.degradations &&
                      a.crossCheckCatches == b.crossCheckCatches;
    std::printf("\nReproducibility: two storms from seed %llu produce "
                "%s outcomes.\n",
                static_cast<unsigned long long>(kSeed),
                same ? "identical" : "DIFFERENT (BUG)");

    setLogMinLevel(LogLevel::Info);
}

void
serveCleanRequest(benchmark::State &state)
{
    const ServiceConfig cfg = e12Config(BackpressurePolicy::Reject);
    const MatchRequest req = stormRequest(1, kSeed);
    for (auto _ : state) {
        MatchService svc(cfg, behavioralOnlyLadder());
        benchmark::DoNotOptimize(svc.serve(req).beats);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(req.text.size()));
}

void
serveUnderFault(benchmark::State &state)
{
    const ServiceConfig cfg = e12Config(BackpressurePolicy::Reject);
    const MatchRequest req = stormRequest(1, kSeed);
    fault::Fault f;
    f.kind = fault::FaultKind::StuckAt1;
    f.point = systolic::FaultPoint::CompareLatch;
    f.cell = 2;
    for (auto _ : state) {
        fault::FaultInjector inj(kBits);
        inj.addFault(f);
        MatchService svc(cfg, faultyLadder(inj));
        benchmark::DoNotOptimize(svc.serve(req).degradations);
    }
}

BENCHMARK(serveCleanRequest)->Unit(benchmark::kMicrosecond);
BENCHMARK(serveUnderFault)->Unit(benchmark::kMicrosecond);

} // namespace

SPM_BENCH_MAIN(printReport)
