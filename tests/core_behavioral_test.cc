/** @file Tests for the character-level behavioral chip. */

#include <gtest/gtest.h>

#include "core/behavioral.hh"
#include "core/reference.hh"
#include "systolic/trace.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::core
{
namespace
{

TEST(FeedPlan, PatternRecirculates)
{
    const ChipFeedPlan plan(4, parseSymbols("AB"), 10);
    // Even beats carry pattern characters, cycling A B A B ...
    EXPECT_TRUE(plan.patternAt(0).valid);
    EXPECT_EQ(plan.patternAt(0).sym, 0);
    EXPECT_EQ(plan.patternAt(2).sym, 1);
    EXPECT_EQ(plan.patternAt(4).sym, 0);
    EXPECT_FALSE(plan.patternAt(1).valid) << "gaps between characters";
}

TEST(FeedPlan, ControlTrailsPatternByOneBeat)
{
    const ChipFeedPlan plan(4, parseSymbols("AXB"), 10);
    EXPECT_FALSE(plan.controlAt(0).valid);
    const CtlToken c0 = plan.controlAt(1);
    EXPECT_TRUE(c0.valid);
    EXPECT_FALSE(c0.lambda);
    EXPECT_FALSE(c0.x);
    const CtlToken c1 = plan.controlAt(3);
    EXPECT_TRUE(c1.x) << "second pattern character is the wild card";
    const CtlToken c2 = plan.controlAt(5);
    EXPECT_TRUE(c2.lambda) << "lambda marks the last character";
}

TEST(FeedPlan, WildcardEncodedAsOrdinarySymbol)
{
    const ChipFeedPlan plan(4, parseSymbols("X"), 4);
    const PatToken p = plan.patternAt(0);
    EXPECT_TRUE(p.valid);
    EXPECT_NE(p.sym, wildcardSymbol)
        << "the x control bit, not a magic symbol, encodes wild cards";
}

TEST(FeedPlan, TextPhaseMakesStreamsMeet)
{
    // phi must make (phi + cells - 1) even so characters meet inside
    // cells rather than passing between them (Section 3.2.1).
    for (std::size_t m : {1u, 2u, 3u, 8u, 9u}) {
        const ChipFeedPlan plan(m, parseSymbols("A"), 4);
        EXPECT_EQ((plan.textPhase() + m - 1) % 2, 0u) << "m=" << m;
    }
}

TEST(FeedPlan, RejectsPatternLongerThanArray)
{
    EXPECT_THROW(ChipFeedPlan(2, parseSymbols("ABC"), 10),
                 std::logic_error);
}

TEST(Behavioral, PaperFigure31Example)
{
    BehavioralMatcher chip;
    const auto r = chip.match(test::paperText(), test::paperPattern());
    ReferenceMatcher ref;
    EXPECT_EQ(r, ref.match(test::paperText(), test::paperPattern()));
}

TEST(Behavioral, SingleCellChip)
{
    BehavioralMatcher chip(1);
    const auto r = chip.match(parseSymbols("ABAB"), parseSymbols("B"));
    EXPECT_EQ(r, (std::vector<bool>{false, true, false, true}));
}

TEST(Behavioral, DegenerateInputs)
{
    BehavioralMatcher chip(4);
    EXPECT_TRUE(chip.match({}, parseSymbols("A")).empty());
    EXPECT_EQ(chip.match(parseSymbols("A"), parseSymbols("AB")),
              (std::vector<bool>{false}));
    EXPECT_EQ(chip.match(parseSymbols("AB"), {}),
              (std::vector<bool>{false, false}));
}

TEST(Behavioral, ThroughputIsOneResultPerTwoBeats)
{
    // n text characters take 2n + O(m) beats regardless of pattern
    // length: the headline property of the systolic design.
    BehavioralMatcher chip(8);
    WorkloadGen gen(3, 2);
    const auto text = gen.randomText(500);
    const auto pat = gen.randomPattern(8);
    chip.match(text, pat);
    EXPECT_LE(chip.lastBeats(), 2 * 500 + 8 + 8);
}

TEST(Behavioral, BeatCountIndependentOfPatternLength)
{
    WorkloadGen gen(4, 2);
    const auto text = gen.randomText(300);
    Beat beats_short = 0, beats_long = 0;
    {
        BehavioralMatcher chip(16);
        chip.match(text, gen.randomPattern(2));
        beats_short = chip.lastBeats();
    }
    {
        BehavioralMatcher chip(16);
        chip.match(text, gen.randomPattern(16));
        beats_long = chip.lastBeats();
    }
    EXPECT_EQ(beats_short, beats_long)
        << "same array, same text: same beat count";
}

TEST(Behavioral, ChipBiggerThanPatternStillCorrect)
{
    ReferenceMatcher ref;
    const auto text = parseSymbols("ABCABCABC");
    const auto pat = parseSymbols("BC");
    for (std::size_t m = 2; m <= 9; ++m) {
        BehavioralMatcher chip(m);
        EXPECT_EQ(chip.match(text, pat), ref.match(text, pat))
            << "m=" << m;
    }
}

TEST(Behavioral, TraceShowsCheckerboard)
{
    BehavioralChip chip(4);
    systolic::TraceRecorder trace;
    chip.attachTrace(&trace);
    const ChipFeedPlan plan(4, parseSymbols("AB"), 6);
    const auto text = parseSymbols("ABABAB");
    for (Beat u = 0; u < 10; ++u) {
        chip.feedPattern(plan.patternAt(u));
        chip.feedControl(plan.controlAt(u));
        chip.feedString(plan.stringAt(u, text));
        chip.feedResult(plan.resultAt(u));
        chip.step();
    }
    EXPECT_EQ(trace.beatCount(), 10u);
    const std::string art = trace.render(chip.engine());
    EXPECT_NE(art.find("cmp0"), std::string::npos);
    EXPECT_NE(art.find("acc0"), std::string::npos);
    // Half the cells are active each beat.
    EXPECT_DOUBLE_EQ(chip.engine().utilization().mean(), 0.5);
}

/** Property sweep: behavioral chip equals the reference definition. */
class BehavioralProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BehavioralProperty, MatchesReferenceOnRandomWorkloads)
{
    const test::Workload w = test::makeWorkload(GetParam());
    ReferenceMatcher ref;
    // Exercise both exact-size and oversized arrays.
    BehavioralMatcher exact(w.pattern.size());
    BehavioralMatcher oversized(w.pattern.size() + 1 + GetParam() % 5);
    const auto want = ref.match(w.text, w.pattern);
    EXPECT_EQ(exact.match(w.text, w.pattern), want);
    EXPECT_EQ(oversized.match(w.text, w.pattern), want);
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, BehavioralProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

} // namespace
} // namespace spm::core
