/** @file Tests for the baseline matchers (Section 3.3.1 alternatives). */

#include <gtest/gtest.h>

#include "baselines/boyermoore.hh"
#include "baselines/broadcast.hh"
#include "baselines/fftmatch.hh"
#include "baselines/kmp.hh"
#include "baselines/naive.hh"
#include "baselines/staticarray.hh"
#include "core/reference.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::baselines
{
namespace
{

using core::ReferenceMatcher;

TEST(Naive, MatchesReference)
{
    NaiveMatcher naive;
    ReferenceMatcher ref;
    for (std::uint64_t i = 0; i < 10; ++i) {
        const auto w = test::makeWorkload(i);
        EXPECT_EQ(naive.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern));
    }
}

TEST(Naive, CountsComparisons)
{
    NaiveMatcher naive;
    naive.match(parseSymbols("AAAA"), parseSymbols("AA"));
    // Three windows of two comparisons each, no early exits.
    EXPECT_EQ(naive.lastComparisons(), 6u);
}

TEST(Kmp, FailureFunctionClassicExample)
{
    // ABABAC: fail = 0 0 1 2 3 0.
    const auto fail =
        KmpMatcher::failureFunction(parseSymbols("ABABAC"));
    EXPECT_EQ(fail,
              (std::vector<std::size_t>{0, 0, 1, 2, 3, 0}));
}

TEST(Kmp, MatchesReferenceOnExactPatterns)
{
    KmpMatcher kmp;
    ReferenceMatcher ref;
    for (std::uint64_t i = 0; i < 10; ++i) {
        const auto w = test::makeWorkload(i, /*wildcards=*/false);
        EXPECT_EQ(kmp.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern));
    }
}

TEST(Kmp, LinearComparisonBound)
{
    KmpMatcher kmp;
    WorkloadGen gen(1, 1); // binary alphabet: worst-ish case
    const auto text = gen.randomText(2000);
    const auto pat = gen.randomPattern(16);
    kmp.match(text, pat);
    EXPECT_LE(kmp.lastComparisons(), 2u * 2000)
        << "KMP makes at most 2n comparisons";
}

TEST(Kmp, RefusesWildcards)
{
    // Section 3.1: the self-overlap precomputation is meaningless
    // under wild cards.
    KmpMatcher kmp;
    EXPECT_FALSE(kmp.supportsWildcards());
    EXPECT_THROW(kmp.match(parseSymbols("ABAB"), parseSymbols("AX")),
                 std::runtime_error);
}

TEST(BoyerMoore, MatchesReferenceOnExactPatterns)
{
    BoyerMooreMatcher bm;
    ReferenceMatcher ref;
    for (std::uint64_t i = 10; i < 22; ++i) {
        const auto w = test::makeWorkload(i, /*wildcards=*/false);
        EXPECT_EQ(bm.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern))
            << "workload " << i;
    }
}

TEST(BoyerMoore, SublinearOnLargeAlphabet)
{
    // With an 8-character pattern over a 16-symbol alphabet, most
    // windows are dismissed with one comparison and a full shift.
    BoyerMooreMatcher bm;
    WorkloadGen gen(2, 4);
    const auto text = gen.randomText(4000);
    const auto pat = gen.randomPattern(8);
    bm.match(text, pat);
    EXPECT_LT(bm.lastComparisons(), 4000u)
        << "Boyer-Moore skips most of the text";
}

TEST(BoyerMoore, RefusesWildcards)
{
    BoyerMooreMatcher bm;
    EXPECT_THROW(bm.match(parseSymbols("ABAB"), parseSymbols("AX")),
                 std::runtime_error);
}

TEST(Fft, RadixTwoTransformRoundTrips)
{
    std::vector<std::complex<double>> v(8);
    for (int i = 0; i < 8; ++i)
        v[static_cast<std::size_t>(i)] = {double(i), 0.0};
    auto w = v;
    fft(w, false);
    fft(w, true);
    for (int i = 0; i < 8; ++i)
        EXPECT_NEAR(w[static_cast<std::size_t>(i)].real(),
                    v[static_cast<std::size_t>(i)].real(), 1e-9);
}

TEST(Fft, CrossCorrelateSmallExample)
{
    // x = 1 2 3 4, y = 1 1: windows sums 3, 5, 7.
    const auto c = crossCorrelate({1, 2, 3, 4}, {1, 1});
    ASSERT_EQ(c.size(), 3u);
    EXPECT_NEAR(c[0], 3.0, 1e-6);
    EXPECT_NEAR(c[1], 5.0, 1e-6);
    EXPECT_NEAR(c[2], 7.0, 1e-6);
}

TEST(Fft, MatchesReferenceWithWildcards)
{
    FftMatcher fftm;
    ReferenceMatcher ref;
    for (std::uint64_t i = 20; i < 32; ++i) {
        const auto w = test::makeWorkload(i);
        EXPECT_EQ(fftm.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern))
            << "workload " << i;
    }
}

TEST(Fft, LargeTextPrecisionHolds)
{
    FftMatcher fftm;
    ReferenceMatcher ref;
    WorkloadGen gen(3, 8); // full byte alphabet stresses precision
    const auto pat = gen.randomPattern(32, 0.3);
    const auto text = gen.textWithPlants(20000, pat, 997);
    EXPECT_EQ(fftm.match(text, pat), ref.match(text, pat));
}

TEST(Broadcast, MatchesReference)
{
    BroadcastMatcher bc;
    ReferenceMatcher ref;
    for (std::uint64_t i = 30; i < 40; ++i) {
        const auto w = test::makeWorkload(i);
        EXPECT_EQ(bc.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern));
    }
}

TEST(Broadcast, PaysLoadingAndFanout)
{
    BroadcastMatcher bc;
    WorkloadGen gen(4, 2);
    const auto pat = gen.randomPattern(16);
    const auto text = gen.randomText(100);
    bc.match(text, pat);
    EXPECT_EQ(bc.lastLoadBeats(), 16u) << "one beat per pattern char";
    EXPECT_EQ(bc.lastBeats(), 16u + 100u);
    EXPECT_EQ(bc.lastCost().fanout, 16u);
    // The broadcast channel either slows the beat...
    EXPECT_GT(bc.lastCost().stretchedBeatPs(prototypeBeatPs),
              prototypeBeatPs);
    // ...or costs driver power proportional to the fanout.
    EXPECT_DOUBLE_EQ(bc.lastCost().driverPowerUnits(), 16.0);
}

TEST(Broadcast, FanoutPenaltyGrowsWithPattern)
{
    const BroadcastCost small{8};
    const BroadcastCost big{64};
    EXPECT_LT(small.stretchedBeatPs(prototypeBeatPs),
              big.stretchedBeatPs(prototypeBeatPs));
}

TEST(StaticArray, MatchesReference)
{
    StaticArrayMatcher sa;
    ReferenceMatcher ref;
    for (std::uint64_t i = 40; i < 52; ++i) {
        const auto w = test::makeWorkload(i);
        EXPECT_EQ(sa.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern))
            << "workload " << i;
    }
}

TEST(StaticArray, PaysLoadingTime)
{
    // Section 3.3.1: "Loading the cells in preparation for a pattern
    // match would require extra time" -- the cost the bidirectional
    // design avoids.
    StaticArrayMatcher sa;
    WorkloadGen gen(5, 2);
    const auto pat = gen.randomPattern(12);
    const auto text = gen.randomText(50);
    sa.match(text, pat);
    EXPECT_EQ(sa.lastLoadBeats(), 12u);
    EXPECT_GT(sa.lastBeats(), 12u + 50u);
}

} // namespace
} // namespace spm::baselines
