/** @file Unit tests for three-valued logic and device evaluation. */

#include <gtest/gtest.h>

#include "gate/device.hh"
#include "gate/logic.hh"

namespace spm::gate
{
namespace
{

constexpr LogicValue L = LogicValue::L;
constexpr LogicValue H = LogicValue::H;
constexpr LogicValue X = LogicValue::X;

TEST(Logic, NotTable)
{
    EXPECT_EQ(logicNot(L), H);
    EXPECT_EQ(logicNot(H), L);
    EXPECT_EQ(logicNot(X), X);
}

TEST(Logic, AndControllingLow)
{
    EXPECT_EQ(logicAnd(L, X), L);
    EXPECT_EQ(logicAnd(X, L), L);
    EXPECT_EQ(logicAnd(H, H), H);
    EXPECT_EQ(logicAnd(H, X), X);
    EXPECT_EQ(logicAnd(X, X), X);
}

TEST(Logic, OrControllingHigh)
{
    EXPECT_EQ(logicOr(H, X), H);
    EXPECT_EQ(logicOr(X, H), H);
    EXPECT_EQ(logicOr(L, L), L);
    EXPECT_EQ(logicOr(L, X), X);
}

TEST(Logic, XorPropagatesX)
{
    EXPECT_EQ(logicXor(L, H), H);
    EXPECT_EQ(logicXor(H, H), L);
    EXPECT_EQ(logicXor(X, L), X);
    EXPECT_EQ(logicXor(H, X), X);
}

TEST(Logic, XnorIsEquality)
{
    EXPECT_EQ(logicXnor(L, L), H);
    EXPECT_EQ(logicXnor(H, H), H);
    EXPECT_EQ(logicXnor(L, H), L);
    EXPECT_EQ(logicXnor(X, H), X);
}

TEST(Logic, Helpers)
{
    EXPECT_EQ(toLogic(true), H);
    EXPECT_EQ(toLogic(false), L);
    EXPECT_TRUE(isKnown(L));
    EXPECT_FALSE(isKnown(X));
    EXPECT_EQ(logicChar(L), '0');
    EXPECT_EQ(logicChar(H), '1');
    EXPECT_EQ(logicChar(X), 'X');
}

TEST(Device, GateEvaluation)
{
    EXPECT_EQ(Device::evalGate(DeviceKind::Inverter, L, X), H);
    EXPECT_EQ(Device::evalGate(DeviceKind::Nand2, H, H), L);
    EXPECT_EQ(Device::evalGate(DeviceKind::Nand2, L, H), H);
    EXPECT_EQ(Device::evalGate(DeviceKind::Nor2, L, L), H);
    EXPECT_EQ(Device::evalGate(DeviceKind::And2, H, H), H);
    EXPECT_EQ(Device::evalGate(DeviceKind::Or2, L, H), H);
    EXPECT_EQ(Device::evalGate(DeviceKind::Xor2, H, L), H);
    EXPECT_EQ(Device::evalGate(DeviceKind::Xnor2, H, H), H);
}

TEST(Device, PassGateHasNoCombinationalEval)
{
    EXPECT_THROW(Device::evalGate(DeviceKind::PassGate, L, L),
                 std::logic_error);
}

TEST(Device, TransistorBudgets)
{
    // The Figure 3-6 positive comparator: 3 pass transistors, two
    // inverters, an XNOR and a NAND.
    const unsigned total =
        3 * Device::transistorCount(DeviceKind::PassGate) +
        2 * Device::transistorCount(DeviceKind::Inverter) +
        Device::transistorCount(DeviceKind::Xnor2) +
        Device::transistorCount(DeviceKind::Nand2);
    EXPECT_EQ(total, 3u + 4u + 8u + 3u);
}

TEST(Device, KindNames)
{
    EXPECT_STREQ(Device::kindName(DeviceKind::Inverter), "inv");
    EXPECT_STREQ(Device::kindName(DeviceKind::PassGate), "pass");
    EXPECT_STREQ(Device::kindName(DeviceKind::Xnor2), "xnor2");
}

} // namespace
} // namespace spm::gate
