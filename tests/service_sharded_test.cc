/**
 * @file
 * Property tests for the sharded multi-threaded service: stitched
 * results must be bit-identical to the unsharded MatchService (and
 * the reference definition), across chunk and shard boundaries, with
 * the resilience semantics intact per shard. These tests are run
 * under ThreadSanitizer by scripts/check.sh.
 */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "service/service.hh"
#include "service/sharded.hh"
#include "telemetry/span.hh"
#include "tests/helpers.hh"

namespace spm::service
{
namespace
{

ShardedConfig
smallShardConfig(unsigned threads, BitWidth bits)
{
    ShardedConfig cfg;
    cfg.base.alphabetBits = bits;
    cfg.base.maxTextLen = 1 << 20;
    cfg.base.chunkChars = 16;
    cfg.threads = threads;
    cfg.minShardChars = 24; // force several shards on small texts
    return cfg;
}

MatchRequest
randomRequest(std::uint64_t seed, BitWidth bits, std::size_t text_len,
              std::size_t pat_len, unsigned wildcard_pct = 20)
{
    const test::Workload w = test::makeShapedWorkload(
        seed, bits, text_len, pat_len, wildcard_pct);
    MatchRequest req;
    req.id = seed;
    req.text = w.text;
    req.pattern = w.pattern;
    return req;
}

TEST(ShardedService, BitIdenticalToUnshardedService)
{
    for (const unsigned threads : {1u, 2u, 4u}) {
        const BitWidth bits = 2;
        ShardedMatchService sharded(smallShardConfig(threads, bits));
        ServiceConfig plain_cfg = smallShardConfig(threads, bits).base;
        MatchService plain(plain_cfg);

        for (std::uint64_t i = 0; i < 6; ++i) {
            const auto req = randomRequest(0x5AD + 16 * threads + i, bits,
                                           40 + 37 * i, 3 + i % 6);
            const MatchResponse a = sharded.serve(req);
            const MatchResponse b = plain.serve(req);
            ASSERT_TRUE(a.ok()) << a.error.detail;
            ASSERT_TRUE(b.ok()) << b.error.detail;
            EXPECT_EQ(a.result, b.result)
                << "threads=" << threads << " workload " << i << " over "
                << sharded.lastShards() << " shards";
            EXPECT_EQ(a.result.size(), req.text.size());
        }
    }
}

TEST(ShardedService, StitchesMatchesStraddlingShardBoundaries)
{
    // Place a match across every shard boundary: the window overlap
    // (k-1 characters) is exactly what makes these come out right.
    const BitWidth bits = 2;
    ShardedMatchService sharded(smallShardConfig(4, bits));
    core::ReferenceMatcher ref;

    const std::size_t n = 4 * 24; // 4 shards of minShardChars each
    const std::vector<Symbol> pattern = {1, 2, 3, 1, 2};
    const std::size_t k = pattern.size();
    std::vector<Symbol> text(n, 0);
    ASSERT_EQ(sharded.shardCountFor(n, k), 4u);
    for (std::size_t boundary = 24; boundary < n; boundary += 24) {
        // Match ending just after, on, and just before the boundary.
        for (const std::size_t end :
             {boundary - 2, boundary - 1, boundary, boundary + 1}) {
            std::vector<Symbol> t = text;
            for (std::size_t j = 0; j < k; ++j)
                t[end - (k - 1) + j] = pattern[j];
            MatchRequest req;
            req.id = boundary * 10 + end % 10;
            req.text = t;
            req.pattern = pattern;
            const MatchResponse resp = sharded.serve(req);
            ASSERT_TRUE(resp.ok()) << resp.error.detail;
            std::vector<bool> expect(n, false);
            expect[end] = true;
            EXPECT_EQ(resp.result, ref.match(t, pattern))
                << "boundary " << boundary << " end " << end;
            EXPECT_EQ(resp.result, expect);
        }
    }
}

TEST(ShardedService, MatchesReferenceOnRandomWorkloadsWithWildcards)
{
    for (std::uint64_t i = 0; i < 8; ++i) {
        const BitWidth bits = 1 + i % 3;
        ShardedMatchService sharded(smallShardConfig(4, bits));
        core::ReferenceMatcher ref;
        const auto req = randomRequest(0xB0A + i, bits, 150 + 31 * i,
                                       1 + i % 8, 0.3);
        const MatchResponse resp = sharded.serve(req);
        ASSERT_TRUE(resp.ok()) << resp.error.detail;
        EXPECT_GE(sharded.lastShards(), 2u);
        EXPECT_EQ(resp.result, ref.match(req.text, req.pattern))
            << "workload " << i;
    }
}

TEST(ShardedService, ShortRequestsStayOnOneShard)
{
    ShardedMatchService sharded(smallShardConfig(4, 2));
    EXPECT_EQ(sharded.shardCountFor(10, 3), 1u);
    EXPECT_EQ(sharded.shardCountFor(47, 3), 1u);
    EXPECT_EQ(sharded.shardCountFor(48, 3), 2u);
    EXPECT_EQ(sharded.shardCountFor(1 << 16, 3), 4u);
    // A pattern longer than minShardChars raises the floor.
    EXPECT_EQ(sharded.shardCountFor(64, 40), 1u);

    const auto req = randomRequest(0x51, 2, 30, 4);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(sharded.lastShards(), 1u);
    EXPECT_EQ(sharded.lastCriticalBeats(), sharded.lastTotalBeats());
}

TEST(ShardedService, CriticalPathBeatsScaleWithShards)
{
    // The figure of merit: with S equal shards the host waits for the
    // slowest shard, so critical-path beats drop by nearly S relative
    // to the summed effort.
    const BitWidth bits = 2;
    const auto req = randomRequest(0xCAFE, bits, 4096, 8, 0);

    ShardedConfig cfg1 = smallShardConfig(1, bits);
    cfg1.minShardChars = 256;
    ShardedConfig cfg4 = smallShardConfig(4, bits);
    cfg4.minShardChars = 256;
    ShardedMatchService one(cfg1);
    ShardedMatchService four(cfg4);

    const MatchResponse r1 = one.serve(req);
    const MatchResponse r4 = four.serve(req);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r4.ok());
    EXPECT_EQ(r1.result, r4.result);
    EXPECT_EQ(one.lastShards(), 1u);
    EXPECT_EQ(four.lastShards(), 4u);

    const double speedup = static_cast<double>(one.lastCriticalBeats()) /
                           static_cast<double>(four.lastCriticalBeats());
    EXPECT_GE(speedup, 3.0) << "1-shard " << one.lastCriticalBeats()
                            << " beats vs 4-shard critical path "
                            << four.lastCriticalBeats();
    // The overlap recompute keeps total effort within a few percent.
    EXPECT_LT(four.lastTotalBeats(),
              static_cast<Beat>(1.1 * one.lastTotalBeats()));
}

TEST(ShardedService, ValidationAndErrorsMatchUnsharded)
{
    ShardedMatchService sharded(smallShardConfig(4, 2));
    MatchService plain(smallShardConfig(4, 2).base);

    MatchRequest empty_pat;
    empty_pat.text = {0, 1, 2};
    EXPECT_EQ(sharded.validate(empty_pat)->code,
              plain.validate(empty_pat)->code);
    MatchResponse resp = sharded.serve(empty_pat);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error.code, ErrorCode::InvalidPattern);
    EXPECT_TRUE(resp.result.empty());

    // Alphabet overflow in a late shard still surfaces, with the
    // shard called out in the detail.
    MatchRequest bad;
    bad.pattern = {1, 2};
    bad.text.assign(200, 1);
    bad.text[180] = 9; // outside a 2-bit alphabet, lands in shard 3
    resp = sharded.serve(bad);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error.code, ErrorCode::AlphabetOverflow);
    EXPECT_NE(resp.error.detail.find("shard"), std::string::npos);
}

TEST(ShardedService, PerShardJournalsAndCheckpointsAreKept)
{
    ShardedMatchService sharded(smallShardConfig(4, 2));
    const auto req = randomRequest(0x10C, 2, 200, 5);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(sharded.lastShards(), 4u);

    // Every shard streamed its slice in chunks and cut checkpoints;
    // the response aggregates them and the per-shard services keep
    // their own journals (resilience semantics are per shard).
    EXPECT_GE(resp.chunks, 4u);
    EXPECT_GE(resp.checkpoints, 4u);
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_EQ(sharded.shard(s).stats().counter("served").value(), 1u)
            << "shard " << s;
        EXPECT_GE(
            sharded.shard(s).stats().counter("checkpoints").value(), 1u)
            << "shard " << s;
        EXPECT_TRUE(sharded.shard(s).journal().size() > 0) << "shard " << s;
    }
    const std::string dump = sharded.statsDump();
    EXPECT_NE(dump.find("sharded.threads = 4"), std::string::npos);
    EXPECT_NE(dump.find("sharded.last_shards = 4"), std::string::npos);
}

TEST(ShardedService, CustomLadderFactoryPinsBackend)
{
    ShardedConfig cfg = smallShardConfig(2, 2);
    ShardedMatchService sharded(cfg, [](const ServiceConfig &) {
        std::vector<std::unique_ptr<ServiceBackend>> ladder;
        ladder.push_back(std::make_unique<SoftwareBackend>());
        return ladder;
    });
    const auto req = randomRequest(0xFAC, 2, 120, 4);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp.backend, "software-baseline");
    core::ReferenceMatcher ref;
    EXPECT_EQ(resp.result, ref.match(req.text, req.pattern));
}

#ifndef SPM_TELEM_OFF
TEST(ShardedService, TracedServeExportsValidChromeTrace)
{
    // Four worker threads record spans into the global trace buffer
    // concurrently; serve()'s batch join is the happens-before edge
    // the export contract requires. Run under TSan by check.sh.
    auto &buf = telem::TraceBuffer::global();
    buf.clear();
    buf.setEnabled(true);
    buf.setCategoryMask(telem::cat::all);

    ShardedMatchService sharded(smallShardConfig(4, 2));
    const auto req = randomRequest(0x7ACE, 2, 200, 5);
    const MatchResponse resp = sharded.serve(req);
    buf.setEnabled(false);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    ASSERT_EQ(sharded.lastShards(), 4u);

    const std::string json = buf.exportChromeJson("sharded test");
    EXPECT_EQ(telem::validateChromeTrace(json), "") << json.substr(0, 400);

    // The batch span and all four shard spans made it into the trace,
    // recorded from more than one thread.
    const auto events = buf.collect();
    std::size_t batch_spans = 0;
    std::size_t shard_spans = 0;
    std::size_t distinct_tids = 0;
    std::vector<bool> tid_seen(64, false);
    for (const telem::SpanEvent &ev : events) {
        if (std::string(ev.name) == "sharded.serve") {
            ++batch_spans;
            EXPECT_EQ(ev.beat, sharded.lastCriticalBeats());
        }
        if (std::string(ev.name) == "sharded.shard")
            ++shard_spans;
        if (ev.tid < tid_seen.size() && !tid_seen[ev.tid]) {
            tid_seen[ev.tid] = true;
            ++distinct_tids;
        }
    }
    EXPECT_EQ(batch_spans, 1u);
    EXPECT_EQ(shard_spans, 4u);
    EXPECT_GE(distinct_tids, 2u);
    buf.clear();
}
#endif // SPM_TELEM_OFF

TEST(ShardedService, EmptyTextServesEmptyResult)
{
    ShardedMatchService sharded(smallShardConfig(4, 2));
    MatchRequest req;
    req.id = 1;
    req.pattern = {1, 2};
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    EXPECT_TRUE(resp.result.empty());
    EXPECT_EQ(sharded.lastShards(), 1u);
}

TEST(ShardedService, PatternAsLongAsMinShardCharsRaisesSliceFloor)
{
    // floor_chars = max(minShardChars, k): with k > minShardChars the
    // k-1 warm-up overlap spans more than half of every slice, the
    // hardest stitch shape that still shards.
    const BitWidth bits = 2;
    ShardedMatchService sharded(smallShardConfig(4, bits));
    core::ReferenceMatcher ref;
    for (const std::size_t k : {24u, 30u, 50u}) {
        const auto req = randomRequest(0xDE6 + k, bits, 200, k, 30);
        ASSERT_EQ(req.pattern.size(), k);
        const MatchResponse resp = sharded.serve(req);
        ASSERT_TRUE(resp.ok()) << resp.error.detail;
        EXPECT_GE(sharded.lastShards(), 2u) << "k=" << k;
        EXPECT_EQ(resp.result, ref.match(req.text, req.pattern))
            << "k=" << k << " over " << sharded.lastShards() << " shards";
    }
}

TEST(ShardedService, OverlapSpanningAWholeSliceStitchesExactly)
{
    // k equal to the slice length: every slice's window is nearly
    // half warm-up, and each right extension reaches the far end of
    // the neighbor's first chunk.
    const BitWidth bits = 2;
    ShardedConfig cfg = smallShardConfig(4, bits);
    cfg.minShardChars = 50;
    ShardedMatchService sharded(cfg);
    core::ReferenceMatcher ref;
    const auto req = randomRequest(0xDE7, bits, 200, 50, 20);
    ASSERT_EQ(sharded.shardCountFor(200, 50), 4u);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    EXPECT_EQ(sharded.lastShards(), 4u);
    EXPECT_EQ(resp.result, ref.match(req.text, req.pattern));
}

TEST(ShardedService, SingleCharacterShardsMatchReference)
{
    // minShardChars=1 with a tiny text: one character per shard, the
    // degenerate extreme of the slicing arithmetic (warm-up overlap
    // k-1 = 0 or 1, right extensions clamped at the text end).
    const BitWidth bits = 2;
    ShardedConfig cfg = smallShardConfig(4, bits);
    cfg.minShardChars = 1;
    ShardedMatchService sharded(cfg);
    core::ReferenceMatcher ref;
    for (const std::size_t k : {1u, 2u}) {
        const auto req = randomRequest(0xDE8 + k, bits, 4, k, 0);
        const MatchResponse resp = sharded.serve(req);
        ASSERT_TRUE(resp.ok()) << resp.error.detail;
        EXPECT_EQ(sharded.lastShards(), k == 1 ? 4u : 2u);
        EXPECT_EQ(resp.result, ref.match(req.text, req.pattern)) << "k=" << k;
    }
}

TEST(ShardedService, RepeatedServesAreDeterministic)
{
    ShardedMatchService sharded(smallShardConfig(4, 2));
    const auto req = randomRequest(0xD37, 2, 300, 6);
    const MatchResponse a = sharded.serve(req);
    const Beat crit_a = sharded.lastCriticalBeats();
    const Beat total_a = sharded.lastTotalBeats();
    const MatchResponse b = sharded.serve(req);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.result, b.result);
    EXPECT_EQ(a.beats, b.beats);
    EXPECT_EQ(crit_a, sharded.lastCriticalBeats());
    EXPECT_EQ(total_a, sharded.lastTotalBeats());
}

} // namespace
} // namespace spm::service
