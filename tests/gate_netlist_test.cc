/** @file Unit tests for the event-driven netlist simulator. */

#include <gtest/gtest.h>

#include "gate/netlist.hh"

namespace spm::gate
{
namespace
{

TEST(Netlist, InverterChainSettles)
{
    Netlist net("chain");
    const NodeId in = net.addNode("in");
    net.markInput(in);
    NodeId prev = in;
    for (int i = 0; i < 5; ++i) {
        const NodeId out = net.addNode("n" + std::to_string(i));
        net.addInverter(prev, out);
        prev = out;
    }
    net.setInput(in, LogicValue::H, 0);
    net.settle(0);
    // Five inversions of H is L.
    EXPECT_EQ(net.value(prev), LogicValue::L);
    net.setInput(in, LogicValue::L, 1);
    net.settle(1);
    EXPECT_EQ(net.value(prev), LogicValue::H);
}

TEST(Netlist, NodesStartUnknown)
{
    Netlist net;
    const NodeId n = net.addNode("n");
    EXPECT_EQ(net.value(n), LogicValue::X);
    EXPECT_THROW(net.boolValue(n), std::logic_error);
}

TEST(Netlist, GatesEvaluateThroughFanout)
{
    Netlist net;
    const NodeId a = net.addNode("a");
    const NodeId b = net.addNode("b");
    const NodeId nand_out = net.addNode("nand");
    const NodeId inv_out = net.addNode("and");
    net.markInput(a);
    net.markInput(b);
    net.addGate(DeviceKind::Nand2, a, b, nand_out);
    net.addInverter(nand_out, inv_out);

    net.setInput(a, LogicValue::H, 0);
    net.setInput(b, LogicValue::H, 0);
    net.settle(0);
    EXPECT_EQ(net.value(nand_out), LogicValue::L);
    EXPECT_EQ(net.value(inv_out), LogicValue::H);
}

TEST(Netlist, SingleDriverEnforced)
{
    Netlist net;
    const NodeId a = net.addNode("a");
    const NodeId out = net.addNode("out");
    net.addInverter(a, out);
    EXPECT_THROW(net.addInverter(a, out), std::logic_error);
}

TEST(Netlist, InputsMustBeDriverless)
{
    Netlist net;
    const NodeId a = net.addNode("a");
    const NodeId out = net.addNode("out");
    net.addInverter(a, out);
    EXPECT_THROW(net.markInput(out), std::logic_error);
    net.markInput(a);
    EXPECT_THROW(net.setInput(out, LogicValue::H, 0), std::logic_error);
}

TEST(Netlist, PassGateConductsOnlyWhenHigh)
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    const NodeId stored = net.addNode("stored");
    net.markInput(in);
    net.markInput(clk);
    net.addPassGate(in, clk, stored);

    net.setInput(in, LogicValue::H, 0);
    net.setInput(clk, LogicValue::L, 0);
    net.settle(0);
    EXPECT_EQ(net.value(stored), LogicValue::X) << "off: keeps charge (X)";

    net.setInput(clk, LogicValue::H, 1);
    net.settle(1);
    EXPECT_EQ(net.value(stored), LogicValue::H);

    net.setInput(clk, LogicValue::L, 2);
    net.setInput(in, LogicValue::L, 3);
    net.settle(3);
    EXPECT_EQ(net.value(stored), LogicValue::H)
        << "stored charge survives input changes while off";
}

TEST(Netlist, UnknownClockCorruptsStorage)
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    const NodeId stored = net.addNode("stored");
    net.markInput(in);
    net.markInput(clk);
    net.addPassGate(in, clk, stored);
    net.setInput(in, LogicValue::H, 0);
    net.setInput(clk, LogicValue::H, 0);
    net.settle(0);
    net.setInput(clk, LogicValue::X, 1);
    net.settle(1);
    EXPECT_EQ(net.value(stored), LogicValue::X);
}

TEST(Netlist, ChargeDecaysAfterRetention)
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    const NodeId stored = net.addNode("stored");
    const NodeId out = net.addNode("out");
    net.markInput(in);
    net.markInput(clk);
    net.addPassGate(in, clk, stored);
    net.addInverter(stored, out);

    net.setInput(in, LogicValue::H, 0);
    net.setInput(clk, LogicValue::H, 0);
    net.settle(0);
    net.setInput(clk, LogicValue::L, 100);
    net.settle(100);
    EXPECT_EQ(net.value(out), LogicValue::L);

    // Within retention: data survives.
    EXPECT_EQ(net.decayCharge(100 + defaultRetentionPs / 2), 0u);
    EXPECT_EQ(net.value(stored), LogicValue::H);

    // Past retention: the charge leaks away and fanout sees X.
    EXPECT_EQ(net.decayCharge(200 + 2 * defaultRetentionPs), 1u);
    EXPECT_EQ(net.value(stored), LogicValue::X);
    EXPECT_EQ(net.value(out), LogicValue::X);
}

TEST(Netlist, DrivenNodesNeverDecay)
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId out = net.addNode("out");
    net.markInput(in);
    net.addInverter(in, out);
    net.setInput(in, LogicValue::H, 0);
    net.settle(0);
    EXPECT_EQ(net.decayCharge(10 * defaultRetentionPs), 0u);
    EXPECT_EQ(net.value(out), LogicValue::L);
}

TEST(Netlist, RefreshedNodesSurviveDecaySweep)
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    const NodeId stored = net.addNode("stored");
    net.markInput(in);
    net.markInput(clk);
    net.addPassGate(in, clk, stored);
    net.setInput(in, LogicValue::L, 0);
    // Conducting pass gate: the node counts as driven, not storing.
    net.setInput(clk, LogicValue::H, 0);
    net.settle(0);
    EXPECT_EQ(net.decayCharge(5 * defaultRetentionPs), 0u);
    EXPECT_EQ(net.value(stored), LogicValue::L);
}

TEST(Netlist, StatisticsCount)
{
    Netlist net("stats");
    const NodeId a = net.addNode("a");
    const NodeId b = net.addNode("b");
    const NodeId o1 = net.addNode("o1");
    const NodeId o2 = net.addNode("o2");
    net.markInput(a);
    net.markInput(b);
    net.addGate(DeviceKind::Xnor2, a, b, o1);
    net.addInverter(o1, o2);
    EXPECT_EQ(net.deviceCount(), 2u);
    EXPECT_EQ(net.nodeCount(), 4u);
    EXPECT_EQ(net.transistorCount(), 8u + 2u);
    EXPECT_EQ(net.countKind(DeviceKind::Xnor2), 1u);
    EXPECT_EQ(net.countKind(DeviceKind::PassGate), 0u);
    EXPECT_EQ(net.name(), "stats");
    net.setInput(a, LogicValue::H, 0);
    net.settle(0);
    EXPECT_GT(net.evalCount(), 0u);
}

TEST(Netlist, NodeNamesPreserved)
{
    Netlist net;
    const NodeId n = net.addNode("my_node");
    EXPECT_EQ(net.nodeName(n), "my_node");
}

} // namespace
} // namespace spm::gate
