/** @file Unit tests for the systolic engine and trace recorder. */

#include <gtest/gtest.h>

#include "systolic/engine.hh"
#include "systolic/latch.hh"
#include "systolic/trace.hh"

namespace spm::systolic
{
namespace
{

/** A shift stage: copies its source latch on every beat. */
class StageCell : public CellBase
{
  public:
    StageCell(std::string name, unsigned parity, const Latch<int> *src)
        : CellBase(std::move(name), parity), source(src)
    {
    }

    void evaluate(Beat) override { value.write(source->read()); }
    void commit() override { value.commit(); }

    std::string
    stateString() const override
    {
        return std::to_string(value.read());
    }

    const Latch<int> &out() const { return value; }

  private:
    const Latch<int> *source;
    Latch<int> value;
};

class EngineFixture : public ::testing::Test
{
  protected:
    /** Build a chain of @p n stages fed from `input`. */
    void
    buildChain(std::size_t n)
    {
        const Latch<int> *src = &input;
        for (std::size_t i = 0; i < n; ++i) {
            auto &cell = engine.makeCell<StageCell>(
                "s" + std::to_string(i), static_cast<unsigned>(i % 2),
                src);
            cells.push_back(&cell);
            src = &cell.out();
        }
    }

    Engine engine;
    Latch<int> input;
    std::vector<StageCell *> cells;
};

TEST_F(EngineFixture, DataMovesOneCellPerBeat)
{
    buildChain(4);
    input.force(42);
    engine.step();
    EXPECT_EQ(cells[0]->out().read(), 42);
    EXPECT_EQ(cells[1]->out().read(), 0);
    input.force(0);
    engine.step();
    EXPECT_EQ(cells[1]->out().read(), 42);
    engine.step();
    engine.step();
    EXPECT_EQ(cells[3]->out().read(), 42);
}

TEST_F(EngineFixture, SimultaneousMovement)
{
    // Feed a new value every beat; after k beats cell c holds the
    // value fed k-c beats ago -- no value may skip a cell.
    buildChain(3);
    for (int v = 1; v <= 5; ++v) {
        input.force(v * 10);
        engine.step();
    }
    EXPECT_EQ(cells[0]->out().read(), 50);
    EXPECT_EQ(cells[1]->out().read(), 40);
    EXPECT_EQ(cells[2]->out().read(), 30);
}

TEST_F(EngineFixture, ClockAdvancesWithSteps)
{
    buildChain(1);
    engine.run(5);
    EXPECT_EQ(engine.clock().beat(), 5u);
    EXPECT_EQ(engine.stats().counter("beats").value(), 5u);
    EXPECT_EQ(engine.stats().counter("evaluations").value(), 5u);
}

TEST_F(EngineFixture, UtilizationIsHalfForAlternatingParity)
{
    buildChain(4); // parities 0,1,0,1
    engine.run(10);
    EXPECT_DOUBLE_EQ(engine.lastUtilization(), 0.5);
    EXPECT_DOUBLE_EQ(engine.utilization().mean(), 0.5);
}

TEST_F(EngineFixture, HooksRunInOrder)
{
    buildChain(1);
    std::vector<std::string> events;
    engine.onBeatStart([&events](Beat b) {
        events.push_back("start" + std::to_string(b));
    });
    engine.onBeatEnd([&events](Beat b) {
        events.push_back("end" + std::to_string(b));
    });
    engine.run(2);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0], "start0");
    EXPECT_EQ(events[1], "end0");
    EXPECT_EQ(events[2], "start1");
    EXPECT_EQ(events[3], "end1");
}

TEST_F(EngineFixture, CellAccessByIndex)
{
    buildChain(2);
    EXPECT_EQ(engine.cellCount(), 2u);
    EXPECT_EQ(engine.cell(0).cellName(), "s0");
    EXPECT_THROW(engine.cell(2), std::logic_error);
}

TEST_F(EngineFixture, TraceRecordsPerBeatStates)
{
    buildChain(2);
    TraceRecorder trace;
    engine.attachTrace(&trace);
    input.force(7);
    engine.step();
    input.force(8);
    engine.step();
    ASSERT_EQ(trace.beatCount(), 2u);
    EXPECT_EQ(trace.beatOf(0), 0u);
    // Cell 0 has parity 0, active on beat 0 -> starred.
    EXPECT_EQ(trace.at(0, 0), "7*");
    EXPECT_EQ(trace.at(1, 0), "8");
    EXPECT_EQ(trace.at(1, 1), "7*");
}

TEST_F(EngineFixture, TraceRenderContainsHeaders)
{
    buildChain(2);
    TraceRecorder trace;
    engine.attachTrace(&trace);
    engine.run(3);
    const std::string s = trace.render(engine);
    EXPECT_NE(s.find("beat"), std::string::npos);
    EXPECT_NE(s.find("s0"), std::string::npos);
    EXPECT_NE(s.find("s1"), std::string::npos);
}

TEST_F(EngineFixture, TraceBeatLimitBoundsMemory)
{
    buildChain(1);
    TraceRecorder trace(2);
    engine.attachTrace(&trace);
    engine.run(10);
    EXPECT_EQ(trace.beatCount(), 2u);
}

TEST(CellBase, ActivityFollowsParity)
{
    Latch<int> src;
    StageCell even("e", 0, &src);
    StageCell odd("o", 1, &src);
    EXPECT_TRUE(even.activeOn(0));
    EXPECT_FALSE(even.activeOn(1));
    EXPECT_FALSE(odd.activeOn(0));
    EXPECT_TRUE(odd.activeOn(1));
}

} // namespace
} // namespace spm::systolic
