/** @file Unit tests for the CIF writer and reader. */

#include <gtest/gtest.h>

#include "layout/cif.hh"

namespace spm::layout
{
namespace
{

MaskLayout
sampleLayout()
{
    MaskLayout cell("sample");
    cell.addRect(Layer::Diffusion, Rect{0, 0, 2, 10});
    cell.addRect(Layer::Poly, Rect{-2, 4, 6, 6});
    cell.addRect(Layer::Metal, Rect{0, 12, 8, 15});
    cell.addRect(Layer::Contact, Rect{0, 0, 2, 2});
    cell.addRect(Layer::Implant, Rect{1, 7, 3, 9});
    return cell;
}

TEST(Cif, WriterEmitsStructure)
{
    const std::string cif = writeCif(sampleLayout(), 2.5, 3);
    EXPECT_NE(cif.find("DS 3 1 1;"), std::string::npos);
    EXPECT_NE(cif.find("9 sample;"), std::string::npos);
    EXPECT_NE(cif.find("L ND;"), std::string::npos);
    EXPECT_NE(cif.find("L NP;"), std::string::npos);
    EXPECT_NE(cif.find("L NM;"), std::string::npos);
    EXPECT_NE(cif.find("DF;"), std::string::npos);
    EXPECT_NE(cif.find("C 3;"), std::string::npos);
    EXPECT_EQ(cif.back(), '\n');
}

TEST(Cif, BoxesInCentimicrons)
{
    MaskLayout cell("one");
    cell.addRect(Layer::Metal, Rect{0, 0, 4, 2});
    const std::string cif = writeCif(cell, 2.5);
    // 4 lambda x 2.5 um = 10 um = 1000 centimicrons; center (2,1)
    // lambda = (500, 250).
    EXPECT_NE(cif.find("B 1000 500 500 250;"), std::string::npos);
}

TEST(Cif, RoundTripPreservesGeometry)
{
    const MaskLayout original = sampleLayout();
    const MaskLayout parsed = readCif(writeCif(original, 2.5), 2.5);
    EXPECT_EQ(parsed.name(), original.name());
    ASSERT_EQ(parsed.shapeCount(), original.shapeCount());
    // The writer groups by layer, so compare as multisets.
    auto key = [](const Shape &s) {
        return std::tuple(static_cast<int>(s.layer), s.rect.x0,
                          s.rect.y0, s.rect.x1, s.rect.y1);
    };
    std::vector<decltype(key(original.shapes()[0]))> a, b;
    for (const Shape &s : original.shapes())
        a.push_back(key(s));
    for (const Shape &s : parsed.shapes())
        b.push_back(key(s));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST(Cif, RoundTripAtDifferentLambda)
{
    const MaskLayout original = sampleLayout();
    const MaskLayout parsed = readCif(writeCif(original, 1.5), 1.5);
    EXPECT_EQ(parsed.shapeCount(), original.shapeCount());
    EXPECT_EQ(parsed.boundingBox(), original.boundingBox());
}

TEST(Cif, ReaderRejectsUnknownCommands)
{
    EXPECT_THROW(readCif("W 1 2 3;\n"), std::runtime_error);
}

TEST(Cif, ReaderRejectsBoxBeforeLayer)
{
    EXPECT_THROW(readCif("B 100 100 50 50;\n"), std::logic_error);
}

TEST(Cif, ReaderSkipsCommentsAndControl)
{
    const std::string cif =
        "(a comment);\nDS 1 1 1;\n9 c;\nL NM;\nB 500 500 250 250;\n"
        "DF;\nC 1;\nE\n";
    const MaskLayout parsed = readCif(cif, 2.5);
    EXPECT_EQ(parsed.name(), "c");
    ASSERT_EQ(parsed.shapeCount(), 1u);
    EXPECT_EQ(parsed.shapes()[0].rect, Rect(0, 0, 2, 2));
}

} // namespace
} // namespace spm::layout
