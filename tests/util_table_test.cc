/** @file Unit tests for the ASCII table renderer. */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace spm
{
namespace
{

TEST(Table, AlignsColumns)
{
    Table t("caption");
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("caption"), std::string::npos);
    EXPECT_NE(s.find("| name   | value |"), std::string::npos);
    EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RowOfFormatsMixedTypes)
{
    Table t;
    t.addRowOf("k", 42, 2.5, std::string("s"));
    const std::string s = t.toString();
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("2.50"), std::string::npos);
    EXPECT_NE(s.find("s"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 1u);
}

TEST(Table, ShortRowsPadOut)
{
    Table t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("| only |"), std::string::npos);
}

TEST(Table, FixedFormatsDigits)
{
    EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fixed(3.0, 0), "3");
    EXPECT_EQ(Table::fixed(-1.005, 1), "-1.0");
}

TEST(Table, EmptyTableStillRenders)
{
    Table t;
    EXPECT_FALSE(t.toString().empty());
}

} // namespace
} // namespace spm
