/** @file Tests for the host interface model (Figures 1-1, 3-1). */

#include <gtest/gtest.h>

#include "core/hostbus.hh"

namespace spm::core
{
namespace
{

TEST(HostBus, PrototypeCharRate)
{
    // One character per 250 ns beat: 4 million characters per second.
    HostBusModel bus;
    EXPECT_NEAR(bus.chipCharsPerSec(), 4.0e6, 1.0);
}

TEST(HostBus, DemandExceedsEraHosts)
{
    // The paper's claim: the chip's data rate "is higher than the
    // memory bandwidth of most conventional computers."
    HostBusModel bus(prototypeBeatPs, 8);
    EXPECT_TRUE(bus.chipOutrunsHost(hostPdp11()));
    EXPECT_FALSE(bus.chipOutrunsHost(hostVax780()))
        << "a 5 MB/s machine can just keep up with a byte stream";
    EXPECT_GT(bus.chipDemandBytesPerSec(),
              hostPdp11().bandwidthBytesPerSec);
}

TEST(HostBus, EffectiveRateClampedByHost)
{
    HostBusModel bus(prototypeBeatPs, 8);
    const double pdp = bus.effectiveTextCharsPerSec(hostPdp11());
    const double vax = bus.effectiveTextCharsPerSec(hostVax780());
    EXPECT_LT(pdp, vax);
    // Unconstrained, the text rate is half the bus rate.
    EXPECT_NEAR(vax, bus.chipCharsPerSec() / 2.0, 1e3);
    // A slow host scales the rate by its bandwidth ratio.
    EXPECT_NEAR(pdp,
                bus.chipCharsPerSec() / 2.0 *
                    (hostPdp11().bandwidthBytesPerSec /
                     bus.chipDemandBytesPerSec()),
                1e3);
}

TEST(HostBus, SlowerClockEasesDemand)
{
    // At a 1 us beat the chip no longer outruns a 4 MB/s host.
    HostBusModel slow(1'000'000, 8);
    EXPECT_FALSE(slow.chipOutrunsHost(hostVax780()));
    EXPECT_LT(slow.chipDemandBytesPerSec(),
              HostBusModel().chipDemandBytesPerSec());
}

TEST(HostBus, TransactionsScaleWithText)
{
    HostBusModel bus;
    const auto small = bus.busTransactions(1000, 8, 8);
    const auto big = bus.busTransactions(2000, 8, 8);
    // Dominated by 3 transfers per text character (pattern beat,
    // text beat, result bit).
    EXPECT_GT(big, small);
    EXPECT_NEAR(static_cast<double>(big - small), 3.0 * 1000, 1.0);
}

TEST(HostBus, SecondsForBeats)
{
    HostBusModel bus(250'000, 8);
    EXPECT_NEAR(bus.secondsForBeats(4'000'000), 1.0, 1e-9);
}

TEST(HostBus, ParameterValidation)
{
    EXPECT_THROW(HostBusModel(0, 8), std::logic_error);
    EXPECT_THROW(HostBusModel(100, 0), std::logic_error);
    EXPECT_THROW(HostBusModel(100, 17), std::logic_error);
}

TEST(HostBus, InvalidConfigurationThrowsInvalidArgument)
{
    EXPECT_THROW(HostBusModel(0, 8), std::invalid_argument);
    EXPECT_THROW(HostBusModel(100, 0), std::invalid_argument);
    EXPECT_THROW(HostBusModel(100, 17), std::invalid_argument);
}

TEST(HostBus, EvenParityBit)
{
    // The parity bit makes the total number of ones even.
    EXPECT_FALSE(HostBusModel::parityBit(0b00, 2));
    EXPECT_TRUE(HostBusModel::parityBit(0b01, 2));
    EXPECT_TRUE(HostBusModel::parityBit(0b10, 2));
    EXPECT_FALSE(HostBusModel::parityBit(0b11, 2));
    // Only payload bits participate.
    EXPECT_FALSE(HostBusModel::parityBit(0b100, 2));
}

TEST(HostBus, ParityBitIsPricedIntoDemand)
{
    HostBusModel plain(prototypeBeatPs, 8, false);
    HostBusModel checked(prototypeBeatPs, 8, true);
    EXPECT_FALSE(plain.parityEnabled());
    EXPECT_TRUE(checked.parityEnabled());
    EXPECT_EQ(plain.busBitsPerChar(), 8u);
    EXPECT_EQ(checked.busBitsPerChar(), 9u);
    EXPECT_GT(checked.chipDemandBytesPerSec(),
              plain.chipDemandBytesPerSec());
    // Same beat clock: the character rate itself is unchanged.
    EXPECT_DOUBLE_EQ(checked.chipCharsPerSec(), plain.chipCharsPerSec());
}

TEST(HostBus, TransferParityCatchesFlippedBit)
{
    HostBusModel bus(prototypeBeatPs, 8, true);
    EXPECT_TRUE(bus.transferChar(0b1011, 0b1011));
    EXPECT_EQ(bus.charsTransferred(), 1u);
    EXPECT_EQ(bus.parityErrors(), 0u);

    // A single flipped payload bit in transit must be detected.
    EXPECT_FALSE(bus.transferChar(0b1011, 0b1010));
    EXPECT_EQ(bus.charsTransferred(), 2u);
    EXPECT_EQ(bus.parityErrors(), 1u);

    // An even number of flipped bits aliases -- the classic parity
    // blind spot; the transfer checks clean.
    EXPECT_TRUE(bus.transferChar(0b1011, 0b1000));
    EXPECT_EQ(bus.parityErrors(), 1u);

    const std::string dump = bus.statsDump();
    EXPECT_NE(dump.find("hostbus.charsTransferred = 3"),
              std::string::npos);
    EXPECT_NE(dump.find("hostbus.parityErrors = 1"), std::string::npos);

    bus.resetTransferStats();
    EXPECT_EQ(bus.charsTransferred(), 0u);
    EXPECT_EQ(bus.parityErrors(), 0u);
}

TEST(HostBus, UncheckedTransferRidesCorruptionThrough)
{
    // With parity disabled the transfer is counted but never flagged.
    HostBusModel bus(prototypeBeatPs, 8, false);
    EXPECT_TRUE(bus.transferChar(0b1011, 0b1010));
    EXPECT_EQ(bus.charsTransferred(), 1u);
    EXPECT_EQ(bus.parityErrors(), 0u);
}

TEST(HostBus, EraProfilesAreOrdered)
{
    EXPECT_LT(hostPdp11().bandwidthBytesPerSec,
              hostVax780().bandwidthBytesPerSec);
    EXPECT_LT(hostVax780().bandwidthBytesPerSec,
              hostIbm370158().bandwidthBytesPerSec);
}

} // namespace
} // namespace spm::core
