/** @file Tests for the bit-serial checkerboard pipeline. */

#include <gtest/gtest.h>

#include "core/bitserial.hh"
#include "core/reference.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::core
{
namespace
{

TEST(BitSerial, PaperPrototypeConfiguration)
{
    // The fabricated chip: 8 cells of 2-bit characters (Plate 2).
    BitSerialMatcher chip(8, 2);
    ReferenceMatcher ref;
    WorkloadGen gen(1, 2);
    const auto pat = gen.randomPattern(8, 0.25);
    const auto text = gen.textWithPlants(200, pat, 11);
    EXPECT_EQ(chip.match(text, pat), ref.match(text, pat));
}

TEST(BitSerial, SingleBitAlphabet)
{
    BitSerialMatcher chip(0, 1);
    ReferenceMatcher ref;
    WorkloadGen gen(2, 1);
    const auto pat = gen.randomPattern(4);
    const auto text = gen.randomText(64);
    EXPECT_EQ(chip.match(text, pat), ref.match(text, pat));
}

TEST(BitSerial, DerivesBitWidthFromWorkload)
{
    BitSerialMatcher chip; // 0 cells, 0 bits: both derived
    const auto text = parseSymbols("ABCDEFG");
    const auto pat = parseSymbols("CDE");
    ReferenceMatcher ref;
    EXPECT_EQ(chip.match(text, pat), ref.match(text, pat));
}

TEST(BitSerial, PipelineLatencyGrowsWithBitsOnly)
{
    WorkloadGen gen(3, 2);
    const auto text = gen.randomText(100);
    const auto pat = gen.randomPattern(4);
    Beat b2 = 0, b4 = 0;
    {
        BitSerialMatcher chip(4, 2);
        chip.match(text, pat);
        b2 = chip.lastBeats();
    }
    {
        BitSerialMatcher chip(4, 4);
        chip.match(text, pat);
        b4 = chip.lastBeats();
    }
    // Two more bit rows add exactly two beats of drain latency; the
    // throughput (one character per beat) is unchanged.
    EXPECT_EQ(b4, b2 + 2);
}

TEST(BitSerial, CheckerboardActivation)
{
    // "on each beat the active comparators form a checkerboard
    // pattern" (Figure 3-4): with an even total of rows (comparator
    // rows + the accumulator row), exactly half the cells hold valid
    // meetings each beat.
    BitSerialChip chip(4, 3);
    const ChipFeedPlan plan(4, parseSymbols("AB"), 20);
    const auto text = parseSymbols("ABABABABABABABABABAB");
    for (Beat u = 0; u < 30; ++u) {
        for (unsigned row = 0; row < 3; ++row) {
            const PatToken p =
                u >= row ? plan.patternAt(u - row) : PatToken{};
            chip.feedPatternBit(
                row, BitToken{(p.sym >> (2 - row)) != 0, p.valid});
            const StrToken s =
                u >= row ? plan.stringAt(u - row, text) : StrToken{};
            chip.feedStringBit(
                row, BitToken{(s.sym >> (2 - row)) != 0, s.valid});
        }
        chip.feedControl(u >= 2 ? plan.controlAt(u - 2) : CtlToken{});
        const ResToken r = u >= 2 ? plan.resultAt(u - 2) : ResToken{};
        chip.feedResult(r);
        chip.step();
    }
    EXPECT_DOUBLE_EQ(chip.engine().utilization().mean(), 0.5);
}

TEST(BitSerial, MatchesBehavioralBeatForBeat)
{
    // The two fidelity tiers implement the same machine; outputs and
    // (character-level) beat counts must agree.
    const test::Workload w = test::makeWorkload(7);
    BitSerialMatcher bits(w.pattern.size(), w.bits);
    BehavioralMatcher chars(w.pattern.size());
    EXPECT_EQ(bits.match(w.text, w.pattern),
              chars.match(w.text, w.pattern));
}

/** Property sweep across bit widths and array sizes. */
class BitSerialProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BitSerialProperty, MatchesReferenceOnRandomWorkloads)
{
    const test::Workload w = test::makeWorkload(GetParam() + 100);
    ReferenceMatcher ref;
    BitSerialMatcher chip(w.pattern.size() + GetParam() % 3, w.bits);
    EXPECT_EQ(chip.match(w.text, w.pattern), ref.match(w.text, w.pattern));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, BitSerialProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

} // namespace
} // namespace spm::core
