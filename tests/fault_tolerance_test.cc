/**
 * @file
 * Tests for the fault-injection and fault-tolerance subsystem: the
 * injector itself, the detection layers (parity, self-checking
 * comparators, TMR disagreement, reference cross-check), the recovery
 * layers (vote, retry, bypass) and the campaign classification.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/behavioral.hh"
#include "core/gatechip.hh"
#include "core/reference.hh"
#include "fault/bypass.hh"
#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "fault/model.hh"
#include "fault/parity.hh"
#include "fault/retry.hh"
#include "fault/tmr.hh"
#include "flow/wafer.hh"
#include "util/rng.hh"

namespace spm::fault
{
namespace
{

using systolic::FaultPoint;

CampaignConfig
baseConfig()
{
    CampaignConfig cfg;
    cfg.cells = 8;
    cfg.alphabetBits = 2;
    cfg.textLen = 48;
    cfg.patternLen = 4;
    cfg.wildcardProb = 0.25;
    cfg.seed = 1979;
    return cfg;
}

TEST(FaultModel, SweepsAreExhaustiveAndDeterministic)
{
    const auto stuck = sweepStuckAtFaults(8, 2);
    // Per cell and stuck polarity: 2+2 symbol bits, compare, two
    // control bits, result = 8 points; 8 cells x 2 polarities x 8.
    EXPECT_EQ(stuck.size(), 8u * 2u * 8u);
    EXPECT_EQ(sweepDeadCellFaults(8).size(), 8u);

    const auto t1 = sweepTransientFaults(8, 2, 100, 32, 42);
    const auto t2 = sweepTransientFaults(8, 2, 100, 32, 42);
    ASSERT_EQ(t1.size(), 32u);
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].describe(), t2[i].describe());
        EXPECT_GE(t1[i].beat, 1u);
        EXPECT_LE(t1[i].beat, 100u);
    }
}

TEST(FaultInjector, StuckResultLatchCorruptsTheMatch)
{
    // An unprotected run with a stuck result latch must disagree
    // with the reference somewhere -- the injector demonstrably
    // reaches real latches.
    FaultCampaign campaign(baseConfig());
    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = FaultPoint::ResultLatch;
    f.cell = 0;
    EXPECT_EQ(campaign.runReferenceChecked(Fidelity::Behavioral, f),
              Outcome::Detected);
}

TEST(FaultInjector, SameFaultSameOutcome)
{
    FaultCampaign a(baseConfig());
    FaultCampaign b(baseConfig());
    const auto faults = sweepStuckAtFaults(8, 2);
    for (std::size_t i = 0; i < faults.size(); i += 17) {
        const TrialResult ra = a.runTrial(faults[i]);
        const TrialResult rb = b.runTrial(faults[i]);
        EXPECT_EQ(ra.outcome, rb.outcome) << faults[i].describe();
        EXPECT_EQ(ra.detectors(), rb.detectors());
    }
}

TEST(FaultInjector, BitSerialFidelitySeesTheSameFault)
{
    // The same abstract fault lowers onto the bit-serial grid and is
    // caught there by the reference cross-check too.
    FaultCampaign campaign(baseConfig());
    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = FaultPoint::ResultLatch;
    f.cell = 0;
    EXPECT_EQ(campaign.runReferenceChecked(Fidelity::BitSerial, f),
              Outcome::Detected);
}

TEST(FaultInjector, GateLevelStuckNodeDetected)
{
    FaultCampaign campaign(baseConfig());
    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = FaultPoint::ResultLatch;
    f.cell = 0;
    EXPECT_EQ(campaign.runReferenceChecked(Fidelity::GateLevel, f),
              Outcome::Detected);
}

TEST(Netlist, ForceStuckAtPinsTheNode)
{
    core::GateChip chip(2, 2);
    gate::Netlist &net = chip.netlist();
    const gate::NodeId node = net.findNode("r_o_0");
    ASSERT_NE(node, gate::invalidNode);
    EXPECT_EQ(net.findNode("no_such_node"), gate::invalidNode);

    net.forceStuckAt(node, gate::LogicValue::H, 0);
    EXPECT_EQ(net.stuckCount(), 1u);
    EXPECT_EQ(net.value(node), gate::LogicValue::H);
    // Clock activity must not move a stuck node.
    for (int i = 0; i < 8; ++i)
        chip.tick();
    EXPECT_EQ(net.value(node), gate::LogicValue::H);

    net.clearStuckAt(node);
    EXPECT_EQ(net.stuckCount(), 0u);
}

TEST(StreamParity, CleanStreamChecksOut)
{
    StreamParityChecker chk(2);
    for (Symbol s : {Symbol(0), Symbol(1), Symbol(2), Symbol(3)})
        chk.onFeed(s);
    for (Symbol s : {Symbol(0), Symbol(1), Symbol(2), Symbol(3)})
        chk.onExit(s);
    EXPECT_EQ(chk.checked(), 4u);
    EXPECT_EQ(chk.errors(), 0u);
}

TEST(StreamParity, SingleBitCorruptionCaught)
{
    StreamParityChecker chk(2);
    chk.onFeed(Symbol(2));
    chk.onExit(Symbol(3)); // one bit flipped in transit
    EXPECT_EQ(chk.errors(), 1u);
}

TEST(Detection, ParityFlagsStringLatchFault)
{
    CampaignConfig cfg = baseConfig();
    cfg.protection = Protection::none();
    cfg.protection.parity = true;
    cfg.protection.referenceCheck = true;
    FaultCampaign campaign(cfg);

    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = FaultPoint::StringLatch;
    f.cell = 3;
    f.bit = 0;
    const TrialResult tr = campaign.runTrial(f);
    EXPECT_TRUE(tr.parityFlag) << tr.detectors();
    EXPECT_NE(tr.outcome, Outcome::Silent);
}

TEST(Detection, SelfCheckFlagsCompareLatchFault)
{
    CampaignConfig cfg = baseConfig();
    cfg.protection = Protection::none();
    cfg.protection.selfCheck = true;
    cfg.protection.referenceCheck = true;
    FaultCampaign campaign(cfg);

    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = FaultPoint::CompareLatch;
    f.cell = 2;
    const TrialResult tr = campaign.runTrial(f);
    EXPECT_TRUE(tr.selfCheckFlag) << tr.detectors();
    EXPECT_NE(tr.outcome, Outcome::Silent);
}

TEST(Detection, CleanRunRaisesNoSignals)
{
    CampaignConfig cfg = baseConfig();
    FaultCampaign campaign(cfg);
    // A masked "fault": flipping a bit on beat 0 -- before any valid
    // token is latched anywhere -- must leave every signal quiet.
    Fault f;
    f.kind = FaultKind::TransientFlip;
    f.point = FaultPoint::PatternLatch;
    f.cell = 7;
    f.beat = 1;
    const TrialResult tr = campaign.runTrial(f);
    EXPECT_EQ(tr.outcome, Outcome::Masked);
    EXPECT_EQ(tr.detectors(), "-");
}

TEST(Tmr, SingleFaultyLaneIsOutvoted)
{
    // Lane 0 lies (always-true matcher); the two honest lanes carry
    // the vote.
    class AlwaysTrue : public core::Matcher
    {
      public:
        std::vector<bool> match(const std::vector<Symbol> &text,
                                const std::vector<Symbol> &) override
        {
            return std::vector<bool>(text.size(), true);
        }
        std::string name() const override { return "always-true"; }
    };

    TmrMatcher tmr(std::make_unique<AlwaysTrue>(),
                   std::make_unique<core::ReferenceMatcher>(),
                   std::make_unique<core::ReferenceMatcher>());

    WorkloadGen gen(7, 2);
    const auto pattern = gen.randomPattern(3);
    const auto text = gen.textWithPlants(40, pattern, 10);
    const auto golden = core::ReferenceMatcher().match(text, pattern);

    EXPECT_EQ(tmr.match(text, pattern), golden);
    EXPECT_GT(tmr.lastDisagreements(), 0u);
    EXPECT_EQ(tmr.lastLaneErrors(0), tmr.lastDisagreements());
    EXPECT_EQ(tmr.lastLaneErrors(1), 0u);
    EXPECT_EQ(tmr.lastLaneErrors(2), 0u);
}

TEST(Tmr, CampaignVoteCorrectsWithoutRetry)
{
    CampaignConfig cfg = baseConfig();
    cfg.protection = Protection::none();
    cfg.protection.tmr = true;
    cfg.protection.referenceCheck = true;
    FaultCampaign campaign(cfg);

    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = FaultPoint::ResultLatch;
    f.cell = 0;
    const TrialResult tr = campaign.runTrial(f);
    EXPECT_EQ(tr.outcome, Outcome::Corrected);
    EXPECT_TRUE(tr.tmrFlag);
    EXPECT_EQ(tr.attempts, 1u) << "the vote corrects in place";
}

TEST(Retry, TransientClearedOnSecondAttempt)
{
    unsigned calls = 0;
    HostRetryController retry({3, 16});
    const auto result = retry.run(
        [&calls] {
            ++calls;
            return std::vector<bool>{calls >= 2};
        },
        [](const std::vector<bool> &r) { return r[0]; });
    EXPECT_EQ(result[0], true);
    EXPECT_EQ(retry.lastAttempts(), 2u);
    EXPECT_EQ(retry.lastBackoffBeats(), 16u);
}

TEST(Retry, ExhaustionThrowsWithBackoffSpent)
{
    HostRetryController retry({2, 8});
    EXPECT_THROW(
        retry.run([] { return std::vector<bool>{false}; },
                  [](const std::vector<bool> &r) { return r[0]; }),
        RetryExhausted);
    EXPECT_EQ(retry.lastAttempts(), 3u);
    EXPECT_EQ(retry.lastBackoffBeats(), 8u + 16u);
}

TEST(Retry, CampaignTransientRecoversByRerun)
{
    CampaignConfig cfg = baseConfig();
    cfg.protection = Protection::none();
    cfg.protection.referenceCheck = true;
    cfg.protection.retry = true;
    FaultCampaign campaign(cfg);

    // Find a transient the workload is actually sensitive to, then
    // check the retry path corrects it (the upset does not recur).
    const auto transients = sweepTransientFaults(
        8, 2, campaign.protocolBeats(), 64, 123);
    bool exercised = false;
    for (const Fault &f : transients) {
        const TrialResult tr = campaign.runTrial(f);
        if (tr.outcome == Outcome::Masked)
            continue;
        exercised = true;
        EXPECT_EQ(tr.outcome, Outcome::Corrected) << f.describe();
        EXPECT_EQ(tr.attempts, 2u) << f.describe();
    }
    EXPECT_TRUE(exercised)
        << "no transient in the sample had any effect";
}

TEST(Retry, StrictExhaustionSurfacesAnError)
{
    // Permanent fault, no TMR and no bypass: every retry re-attaches
    // the fault, so a strict campaign must surface RetryExhausted.
    CampaignConfig cfg = baseConfig();
    cfg.protection = Protection::none();
    cfg.protection.referenceCheck = true;
    cfg.protection.retry = true;
    cfg.strictRetry = true;
    cfg.retryPolicy.maxRetries = 2;
    FaultCampaign campaign(cfg);

    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = FaultPoint::ResultLatch;
    f.cell = 0;
    EXPECT_THROW(campaign.runTrial(f), RetryExhausted);

    // The lenient campaign classifies the same trial Detected: the
    // wrong answer is flagged, never trusted.
    cfg.strictRetry = false;
    FaultCampaign lenient(cfg);
    const TrialResult tr = lenient.runTrial(f);
    EXPECT_EQ(tr.outcome, Outcome::Detected);
    EXPECT_EQ(tr.attempts, 1u + 3u);
}

TEST(Bypass, RetiringACellDegradesTheChain)
{
    BypassController bp(flow::Wafer(2, 4, 0.0, 1));
    EXPECT_EQ(bp.availableCells(), 8u);
    EXPECT_EQ(bp.retireCell(3), 7u);
    EXPECT_EQ(bp.retiredCount(), 1u);
    EXPECT_FALSE(bp.wafer().isGood(0, 3))
        << "chain position 3 of a pristine 2x4 snake is site (0,3)";
}

TEST(Bypass, CampaignDeadCellRecoversOnDegradedArray)
{
    // No TMR: the dead cell survives every retry, so recovery falls
    // to the snake re-harvest and the multipass re-run on N-1 cells.
    CampaignConfig cfg = baseConfig();
    cfg.protection.tmr = false;
    cfg.retryPolicy.maxRetries = 1;
    FaultCampaign campaign(cfg);

    Fault f;
    f.kind = FaultKind::DeadCell;
    f.cell = 1;
    const TrialResult tr = campaign.runTrial(f);
    ASSERT_NE(tr.outcome, Outcome::Silent);
    ASSERT_NE(tr.outcome, Outcome::Masked)
        << "a dead cell must be observable on this workload";
    EXPECT_EQ(tr.outcome, Outcome::Corrected);
    EXPECT_EQ(tr.degradedCells, cfg.cells - 1)
        << "2x4 wafer has no spare sites: N degrades to N-1";
}

TEST(Campaign, FullProtectionLeavesNothingSilent)
{
    FaultCampaign campaign(baseConfig());
    auto faults = sweepStuckAtFaults(8, 2);
    const auto dead = sweepDeadCellFaults(8);
    faults.insert(faults.end(), dead.begin(), dead.end());

    const auto results = campaign.run(faults);
    const auto s = FaultCampaign::summarize(results);
    EXPECT_EQ(s.silent, 0u);
    EXPECT_GT(s.effective(), 0u);
    EXPECT_GE(s.detectedOrCorrectedPct(), 99.0)
        << "acceptance: >=99% of effective permanent faults "
           "detected or corrected";
}

TEST(Campaign, CoverageTableIsReproducible)
{
    auto faults = sweepStuckAtFaults(4, 2);
    CampaignConfig cfg = baseConfig();
    cfg.cells = 4;
    cfg.textLen = 24;

    FaultCampaign a(cfg);
    FaultCampaign b(cfg);
    const auto ta =
        FaultCampaign::coverageTable(a.run(faults), "campaign");
    const auto tb =
        FaultCampaign::coverageTable(b.run(faults), "campaign");
    EXPECT_EQ(ta.toString(), tb.toString())
        << "seeded campaigns must be bit-for-bit reproducible";
}

TEST(Campaign, SelfCheckingVariantMatchesPlainWhenHealthy)
{
    // The duplicated comparator changes nothing functionally.
    WorkloadGen gen(11, 2);
    const auto pattern = gen.randomPattern(4, 0.25);
    const auto text = gen.textWithPlants(40, pattern, 10);

    core::BehavioralChip chip(
        4, prototypeBeatPs,
        core::BehavioralChip::CellVariant::SelfChecking);
    core::ChipHooks hooks;
    hooks.feedInputs = [&chip](const core::PatToken &p,
                               const core::CtlToken &c,
                               const core::StrToken &s,
                               const core::ResToken &r) {
        chip.feedPattern(p);
        chip.feedControl(c);
        chip.feedString(s);
        chip.feedResult(r);
    };
    hooks.step = [&chip] { chip.step(); };
    hooks.resultOut = [&chip] { return chip.resultOut(); };

    const auto [result, beats] =
        core::runMatchProtocol(hooks, 4, text, pattern);
    EXPECT_EQ(result, core::ReferenceMatcher().match(text, pattern));
    EXPECT_GT(beats, 0u);
    EXPECT_EQ(chip.selfCheckMismatches(), 0u);
}

} // namespace
} // namespace spm::fault
