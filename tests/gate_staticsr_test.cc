/** @file Tests for the static shift register stage (Section 3.3.3). */

#include <gtest/gtest.h>

#include "gate/netlist.hh"
#include "gate/stdcells.hh"

namespace spm::gate
{
namespace
{

constexpr LogicValue L = LogicValue::L;
constexpr LogicValue H = LogicValue::H;

class StaticStageHarness
{
  public:
    StaticStageHarness()
    {
        in = net.addNode("in");
        clk = net.addNode("clk");
        shift = net.addNode("shift");
        net.markInput(in);
        net.markInput(clk);
        net.markInput(shift);
        out = buildStaticShiftStage(net, "st", in, clk, shift);
        net.setInput(clk, L, 0);
        net.setInput(shift, L, 0);
        net.settle(0);
    }

    /** Pulse the clock with the given data and shift command. */
    void
    pulse(bool data, bool do_shift)
    {
        ++now;
        net.setInput(in, data ? H : L, now);
        net.setInput(shift, do_shift ? H : L, now);
        net.setInput(clk, H, now);
        net.settle(now);
        net.setInput(clk, L, ++now);
        net.settle(now);
    }

    LogicValue value() const { return net.value(out); }

    Netlist net;
    NodeId in, clk, shift, out;
    Picoseconds now = 0;
};

TEST(StaticStage, LoadsWhenShiftCommanded)
{
    StaticStageHarness h;
    h.pulse(true, true);
    EXPECT_EQ(h.value(), H);
    h.pulse(false, true);
    EXPECT_EQ(h.value(), L);
}

TEST(StaticStage, DoesNotInvert)
{
    // Unlike the dynamic stage ("They do not invert data between
    // stages, as do dynamic shift registers").
    StaticStageHarness h;
    h.pulse(true, true);
    EXPECT_EQ(h.value(), H) << "stored value has the input's sense";
}

TEST(StaticStage, HoldsWhenShiftLow)
{
    StaticStageHarness h;
    h.pulse(true, true);
    // Clock keeps running, shift deasserted, input changing: the
    // regeneration loop must hold the bit.
    for (int i = 0; i < 10; ++i)
        h.pulse(i % 2 == 0, false);
    EXPECT_EQ(h.value(), H);
}

TEST(StaticStage, SurvivesIndefiniteStall)
{
    // The defining advantage over the dynamic register: data can be
    // held "indefinitely" -- no node decays because every node is
    // statically driven.
    StaticStageHarness h;
    h.pulse(true, true);
    const std::size_t lost =
        h.net.decayCharge(h.now + 1000 * defaultRetentionPs);
    EXPECT_EQ(lost, 0u);
    EXPECT_EQ(h.value(), H);
}

TEST(StaticStage, DynamicStageDiesUnderSameStall)
{
    // Control experiment: the Figure 3-5 dynamic stage loses its bit
    // under the stall the static stage just survived.
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    net.markInput(in);
    net.markInput(clk);
    const NodeId out = buildShiftStage(net, "dyn", in, clk);
    net.setInput(in, H, 1);
    net.setInput(clk, H, 1);
    net.settle(1);
    net.setInput(clk, L, 2);
    net.settle(2);
    ASSERT_EQ(net.value(out), L);
    EXPECT_EQ(net.decayCharge(1000 * defaultRetentionPs), 1u);
    EXPECT_EQ(net.value(out), LogicValue::X);
}

TEST(StaticStage, CostsManyMoreTransistorsThanDynamic)
{
    // The price of regeneration: the paper picked dynamic registers
    // because one inverter plus one pass transistor per cell kept
    // the cells tiny.
    Netlist stat;
    {
        const NodeId in = stat.addNode("in");
        const NodeId clk = stat.addNode("clk");
        const NodeId shift = stat.addNode("shift");
        stat.markInput(in);
        stat.markInput(clk);
        stat.markInput(shift);
        buildStaticShiftStage(stat, "s", in, clk, shift);
    }
    Netlist dyn;
    {
        const NodeId in = dyn.addNode("in");
        const NodeId clk = dyn.addNode("clk");
        dyn.markInput(in);
        dyn.markInput(clk);
        buildShiftStage(dyn, "d", in, clk);
    }
    EXPECT_GE(stat.transistorCount(), 4 * dyn.transistorCount());
}

TEST(StaticStage, ChainOnOnePhaseIsTransparentWhileShifting)
{
    // Level-sensitive latches on a single phase ripple data through
    // the whole chain during one shift pulse -- which is why a real
    // register, static or dynamic, clocks alternate stages on
    // opposite phases (Figure 3-5). This test documents the
    // transparency and verifies the chain still *holds* perfectly
    // once shift is deasserted.
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    const NodeId shift = net.addNode("shift");
    net.markInput(in);
    net.markInput(clk);
    net.markInput(shift);
    NodeId stage = in;
    std::vector<NodeId> outs;
    for (int i = 0; i < 3; ++i) {
        stage = buildStaticShiftStage(net, "s" + std::to_string(i),
                                      stage, clk, shift);
        outs.push_back(stage);
    }
    net.setInput(clk, L, 0);
    net.setInput(shift, L, 0);
    net.settle(0);

    Picoseconds now = 0;
    auto pulse = [&](bool data, bool do_shift) {
        ++now;
        net.setInput(in, data ? H : L, now);
        net.setInput(shift, do_shift ? H : L, now);
        net.setInput(clk, H, now);
        net.settle(now);
        net.setInput(clk, L, ++now);
        net.settle(now);
    };

    // While shifting, the open chain is transparent end to end.
    pulse(true, true);
    EXPECT_EQ(net.value(outs[2]), H);
    // Deassert shift: the bit parks and survives input changes and
    // further clock pulses.
    pulse(false, false);
    pulse(false, false);
    EXPECT_EQ(net.value(outs[2]), H);
    EXPECT_EQ(net.decayCharge(1000 * defaultRetentionPs), 0u);
    EXPECT_EQ(net.value(outs[2]), H);
}

} // namespace
} // namespace spm::gate
