/** @file Unit tests for the BitVec container. */

#include <gtest/gtest.h>

#include "util/bitvec.hh"

namespace spm
{
namespace
{

TEST(BitVec, StartsEmpty)
{
    BitVec v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructFilled)
{
    BitVec zeros(100, false);
    EXPECT_EQ(zeros.size(), 100u);
    EXPECT_EQ(zeros.popcount(), 0u);

    BitVec ones(100, true);
    EXPECT_EQ(ones.popcount(), 100u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_TRUE(ones.get(i));
}

TEST(BitVec, SetAndGet)
{
    BitVec v(130);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_FALSE(v.get(63));
    EXPECT_EQ(v.popcount(), 3u);

    v.set(64, false);
    EXPECT_FALSE(v.get(64));
    EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, PushBackCrossesWordBoundary)
{
    BitVec v;
    for (int i = 0; i < 70; ++i)
        v.pushBack(i % 3 == 0);
    EXPECT_EQ(v.size(), 70u);
    for (int i = 0; i < 70; ++i)
        EXPECT_EQ(v.get(i), i % 3 == 0) << "bit " << i;
}

TEST(BitVec, FromStringAndToString)
{
    const std::string s = "0110100101";
    BitVec v = BitVec::fromString(s);
    EXPECT_EQ(v.toString(), s);
    EXPECT_EQ(v.popcount(), 5u);
}

TEST(BitVec, FromStringRejectsJunk)
{
    EXPECT_THROW(BitVec::fromString("01a"), std::logic_error);
}

TEST(BitVec, FindFirst)
{
    BitVec v(200);
    EXPECT_EQ(v.findFirst(), 200u);
    v.set(131, true);
    EXPECT_EQ(v.findFirst(), 131u);
    v.set(7, true);
    EXPECT_EQ(v.findFirst(), 7u);
}

TEST(BitVec, LogicalOperators)
{
    BitVec a = BitVec::fromString("1100");
    BitVec b = BitVec::fromString("1010");
    EXPECT_EQ((a & b).toString(), "1000");
    EXPECT_EQ((a | b).toString(), "1110");
    EXPECT_EQ((a ^ b).toString(), "0110");
}

TEST(BitVec, SizeMismatchPanics)
{
    BitVec a(4), b(5);
    EXPECT_THROW(a &= b, std::logic_error);
}

TEST(BitVec, FlipRespectsTail)
{
    BitVec v(66, false);
    v.flip();
    EXPECT_EQ(v.popcount(), 66u);
    v.flip();
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ResizeGrowsWithValue)
{
    BitVec v(10, false);
    v.resize(80, true);
    EXPECT_EQ(v.size(), 80u);
    EXPECT_EQ(v.popcount(), 70u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_FALSE(v.get(i));
    for (std::size_t i = 10; i < 80; ++i)
        EXPECT_TRUE(v.get(i));
}

TEST(BitVec, ResizeShrinkDropsBits)
{
    BitVec v(80, true);
    v.resize(5);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_EQ(v.popcount(), 5u);
}

TEST(BitVec, EqualityIncludesLength)
{
    EXPECT_EQ(BitVec::fromString("101"), BitVec::fromString("101"));
    EXPECT_FALSE(BitVec::fromString("101") == BitVec::fromString("1010"));
}

TEST(BitVec, OutOfRangeAccessPanics)
{
    BitVec v(8);
    EXPECT_THROW(v.get(8), std::logic_error);
    EXPECT_THROW(v.set(9, true), std::logic_error);
}

} // namespace
} // namespace spm
