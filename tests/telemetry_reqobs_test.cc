/**
 * @file
 * Unit tests for the request-observability layer: LogHistogram
 * bucketing and exact-count quantiles against a sorted reference,
 * StageClock attribution, the deterministic exemplar reservoir, the
 * RequestObserver fold, and Snapshot::delta interval arithmetic.
 *
 * Under SPM_TELEM_OFF the StageClock and RequestObserver compile to
 * no-ops; those tests flip to asserting exactly that, so the telem-off
 * CI job proves the contract instead of skipping it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "telemetry/metrics.hh"
#include "telemetry/reqobs.hh"

namespace spm::telem
{
namespace
{

TEST(LogHistogram, LowRangeIsExact)
{
    Registry reg;
    LogHistogram &h = reg.logHistogram("lat");
    // With subBits=3 every integer below 2*8=16 has its own bucket.
    for (int v = 0; v < 16; ++v)
        h.sample(static_cast<double>(v));
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(
            LogHistogram::bucketFloor(LogHistogram::bucketIndex(v, 3), 3), v);
        EXPECT_EQ(h.bucketValue(LogHistogram::bucketIndex(v, 3)), 1u);
    }
    EXPECT_EQ(h.samples(), 16u);
}

TEST(LogHistogram, BucketFloorInvertsBucketIndex)
{
    // The floor of the bucket holding u is <= u, and the next
    // bucket's floor is > u: the index function is a monotone
    // partition of the integers.
    std::vector<std::uint64_t> probes = {0,    1,     15,      16,
                                         17,   100,   1000,    4095,
                                         4096, 65535, 1u << 20, 0};
    probes.push_back((std::uint64_t{1} << 62) + 12345);
    for (std::uint64_t u : probes) {
        const std::size_t idx = LogHistogram::bucketIndex(u, 3);
        EXPECT_LE(LogHistogram::bucketFloor(idx, 3), u);
        EXPECT_GT(LogHistogram::bucketFloor(idx + 1, 3), u);
    }
}

TEST(LogHistogram, RelativeErrorIsBounded)
{
    // subBits=3 promises every recorded value lands in a bucket whose
    // width is at most 2^-3 = 12.5% of its floor.
    std::mt19937_64 rng(20);
    for (int i = 0; i < 2000; ++i) {
        // Shift by at least one: at msb 63 the *next* bucket's floor
        // exceeds 2^64 and the inversion check below has no meaning.
        const std::uint64_t u = rng() >> (1 + rng() % 50);
        const std::size_t idx = LogHistogram::bucketIndex(u, 3);
        const std::uint64_t lo = LogHistogram::bucketFloor(idx, 3);
        const std::uint64_t hi = LogHistogram::bucketFloor(idx + 1, 3);
        ASSERT_LE(lo, u);
        ASSERT_GT(hi, u);
        if (lo >= 16) {
            EXPECT_LE(static_cast<double>(hi - lo),
                      static_cast<double>(lo) / 8.0 + 1.0);
        }
    }
}

TEST(LogHistogram, QuantilesTrackASortedReference)
{
    Registry reg;
    LogHistogram &h = reg.logHistogram("lat");
    std::mt19937_64 rng(77);
    std::vector<double> values;
    // Log-uniform latencies across six decades, like real tails.
    std::uniform_real_distribution<double> exp10(0.0, 6.0);
    for (int i = 0; i < 20000; ++i) {
        const double v = std::floor(std::pow(10.0, exp10(rng)));
        values.push_back(v);
        h.sample(v);
    }
    std::sort(values.begin(), values.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        const double exact = values[std::min(rank, values.size()) - 1];
        const double approx = h.quantile(q);
        // Within the 2^-subBits relative-error contract (plus one for
        // the integer rounding of bucket representatives).
        EXPECT_NEAR(approx, exact, exact / 8.0 + 1.0)
            << "q=" << q;
    }
}

TEST(LogHistogram, InvalidSamplesAreCountedApart)
{
    Registry reg;
    LogHistogram &h = reg.logHistogram("lat");
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(-5.0);
    h.sample(3.0);
    EXPECT_EQ(h.invalids(), 2u);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.quantile(0.5), 3.0);
}

TEST(LogHistogram, SnapshotQuantileMatchesLive)
{
    Registry reg;
    LogHistogram &h = reg.logHistogram("lat");
    for (int i = 1; i <= 1000; ++i)
        h.sample(static_cast<double>(i));
    const Snapshot snap = reg.snapshot();
    const Snapshot::LogHistogramData *d = snap.logHistogram("lat");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->samples(), 1000u);
    for (double q : {0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(d->quantile(q), h.quantile(q));
}

TEST(LogHistogram, ResolutionMismatchPanics)
{
    Registry reg;
    reg.logHistogram("lat", 3);
    EXPECT_THROW(reg.logHistogram("lat", 4), std::logic_error);
    EXPECT_NO_THROW(reg.logHistogram("lat", 3));
}

TEST(LogHistogram, JsonRoundTripIsLossless)
{
    Registry reg;
    LogHistogram &h = reg.logHistogram("req.latency_ns");
    h.sample(17.0);
    h.sample(123456.0);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    const Snapshot before = reg.snapshot();
    const std::string json = before.toJson();
    const std::optional<Snapshot> after = Snapshot::fromJson(json);
    ASSERT_TRUE(after.has_value());
    const Snapshot::LogHistogramData *d =
        after->logHistogram("req.latency_ns");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->samples(), 2u);
    EXPECT_EQ(d->invalid, 1u);
    // Quantiles computed from the round-tripped buckets match the
    // live histogram's bucket-midpoint answers exactly.
    EXPECT_DOUBLE_EQ(d->quantile(0.5), h.quantile(0.5));
    EXPECT_EQ(after->toJson(), json);
}

TEST(SnapshotDelta, SubtractsCountersAndLogHistograms)
{
    Registry reg;
    Counter &c = reg.counter("served");
    LogHistogram &h = reg.logHistogram("lat");
    c.add(5);
    h.sample(10.0);
    h.sample(20.0);
    const Snapshot earlier = reg.snapshot();
    c.add(3);
    h.sample(1000.0);
    reg.gauge("depth").set(7.0);
    const Snapshot now = reg.snapshot();

    const Snapshot d = now.delta(earlier);
    EXPECT_EQ(d.counterValue("served"), 3u);
    // Gauges are levels, not rates: the delta keeps the current one.
    EXPECT_EQ(d.gaugeValue("depth"), 7.0);
    const Snapshot::LogHistogramData *ld = d.logHistogram("lat");
    ASSERT_NE(ld, nullptr);
    EXPECT_EQ(ld->samples(), 1u);
    // Interval percentiles see only the interval's sample, to within
    // the log-bucket's 12.5% relative-error bound.
    EXPECT_NEAR(ld->quantile(0.5), 1000.0, 1000.0 / 8.0);
}

TEST(SnapshotDelta, CounterResetClampsToCurrent)
{
    Registry a;
    a.counter("served").add(10);
    const Snapshot earlier = a.snapshot();
    a.reset();
    a.counter("served").add(4);
    const Snapshot now = a.snapshot();
    // A restarted process would otherwise render an underflowed rate.
    EXPECT_EQ(now.delta(earlier).counterValue("served"), 4u);
}

#ifndef SPM_TELEM_OFF

TEST(StageClock, AttributesTimeToMarkedStages)
{
    setSamplingEnabled(true);
    StageClock clock;
    clock.start();
    ASSERT_TRUE(clock.running());
    clock.mark(Stage::Admit);
    clock.note(Stage::QueueWait, 12345);
    clock.mark(Stage::Kernel);
    clock.addBeats(99);
    EXPECT_EQ(clock.stageNs(Stage::QueueWait), 12345u);
    EXPECT_GT(clock.stageNs(Stage::Kernel) + clock.stageNs(Stage::Admit),
              0u);
    EXPECT_EQ(clock.stageNs(Stage::Journal), 0u);
    EXPECT_EQ(clock.beats(), 99u);
    EXPECT_GT(clock.totalNs(), 0u);
    setSamplingEnabled(false);
}

TEST(StageClock, DisabledSamplingDisarms)
{
    setSamplingEnabled(false);
    StageClock clock;
    clock.start();
    EXPECT_FALSE(clock.running());
    clock.mark(Stage::Kernel);
    clock.note(Stage::QueueWait, 1000);
    clock.addBeats(5);
    EXPECT_EQ(clock.stageNs(Stage::Kernel), 0u);
    EXPECT_EQ(clock.stageNs(Stage::QueueWait), 0u);
    EXPECT_EQ(clock.beats(), 0u);
    EXPECT_EQ(clock.totalNs(), 0u);
}

TEST(RequestObserver, FoldsClocksIntoReqHistograms)
{
    setSamplingEnabled(true);
    Registry reg;
    RequestObserver obs(reg, "test", nullptr);
    StageClock clock;
    clock.start();
    clock.note(Stage::QueueWait, 500);
    clock.mark(Stage::Kernel);
    clock.addBeats(64);
    obs.observe(clock, 1, false, nullptr, [] { return std::string(); });
    obs.noteQueueWait(700);
    setSamplingEnabled(false);

    const Snapshot snap = reg.snapshot();
    const Snapshot::LogHistogramData *lat =
        snap.logHistogram("req.latency_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->samples(), 1u);
    EXPECT_NEAR(snap.logHistogram("req.latency_beats")->quantile(0.5), 64.0,
                64.0 / 8.0);
    const Snapshot::LogHistogramData *qw =
        snap.logHistogram("req.stage.queue_wait_ns");
    ASSERT_NE(qw, nullptr);
    // One wait from the clock, one from noteQueueWait.
    EXPECT_EQ(qw->samples(), 2u);
    // Unmarked stages record nothing (no zero-spam).
    EXPECT_EQ(snap.logHistogram("req.stage.journal_ns")->samples(), 0u);
}

TEST(ExemplarReservoir, SlowestClassKeepsTheLargestLatencies)
{
    ExemplarReservoir res(4, 0, 0);
    int built = 0;
    // Descending latencies: the first four offers fill the class and
    // nothing after them ever displaces an entry.
    for (std::uint64_t i = 100; i >= 1; --i) {
        Exemplar e;
        e.requestId = i;
        e.latencyNs = i * 10;
        res.offer(std::move(e), [&] {
            ++built;
            return "case-" + std::to_string(i);
        });
    }
    const std::vector<Exemplar> slow = res.slowest();
    ASSERT_EQ(slow.size(), 4u);
    EXPECT_EQ(slow[0].latencyNs, 1000u);
    EXPECT_EQ(slow[3].latencyNs, 970u);
    EXPECT_EQ(slow[0].caseId, "case-100");
    // The case-id builder ran only for the four retained offers.
    EXPECT_EQ(built, 4);
    EXPECT_EQ(res.offered(), 100u);
}

TEST(ExemplarReservoir, UniformClassIsDeterministic)
{
    const auto run = [] {
        ExemplarReservoir res(0, 8, 0, 0x5eed);
        for (std::uint64_t i = 0; i < 500; ++i) {
            Exemplar e;
            e.requestId = i;
            e.latencyNs = 42;
            res.offer(std::move(e), [] { return std::string("c"); });
        }
        std::vector<std::uint64_t> ids;
        for (const Exemplar &e : res.uniform())
            ids.push_back(e.requestId);
        return ids;
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.size(), 8u);
    // Same seed, same offer sequence -> identical retained sample.
    EXPECT_EQ(a, b);
}

TEST(ExemplarReservoir, ForcedRingNeverDropsForRegularTraffic)
{
    ExemplarReservoir res(2, 2, 3);
    for (std::uint64_t i = 0; i < 50; ++i) {
        Exemplar e;
        e.requestId = i;
        e.latencyNs = 1000000; // every regular offer is "slow"
        res.offer(std::move(e), [] { return std::string("r"); });
    }
    for (std::uint64_t i = 100; i < 105; ++i) {
        Exemplar e;
        e.requestId = i;
        e.latencyNs = 1; // fast, would never be tail-sampled
        e.forced = true;
        e.reason = "watchdog trip";
        res.offer(std::move(e), [] { return std::string("f"); });
    }
    const std::vector<Exemplar> forced = res.forced();
    // Ring of 3: the newest three forced requests, oldest first.
    ASSERT_EQ(forced.size(), 3u);
    EXPECT_EQ(forced[0].requestId, 102u);
    EXPECT_EQ(forced[2].requestId, 104u);
    EXPECT_EQ(forced[0].reason, "watchdog trip");
    EXPECT_NE(res.renderText().find("watchdog trip"), std::string::npos);
}

#else // SPM_TELEM_OFF

TEST(StageClock, CompilesToNothing)
{
    setSamplingEnabled(true);
    StageClock clock;
    clock.start();
    EXPECT_FALSE(clock.running());
    clock.mark(Stage::Kernel);
    clock.addBeats(77);
    EXPECT_EQ(clock.stageNs(Stage::Kernel), 0u);
    EXPECT_EQ(clock.beats(), 0u);
    setSamplingEnabled(false);
}

TEST(RequestObserver, RegistersNothing)
{
    Registry reg;
    RequestObserver obs(reg, "test", nullptr);
    StageClock clock;
    clock.start();
    obs.observe(clock, 1, true, "forced", [] { return std::string("c"); });
    obs.noteQueueWait(123);
    EXPECT_EQ(reg.metricCount(), 0u);
    EXPECT_EQ(reg.snapshot().logHistogram("req.latency_ns"), nullptr);
}

#endif // SPM_TELEM_OFF

} // namespace
} // namespace spm::telem
