/** @file Tests for the self-timed vs clocked timing model. */

#include <gtest/gtest.h>

#include "systolic/selftimed.hh"

namespace spm::systolic
{
namespace
{

SelfTimedModel::Config
baseConfig()
{
    SelfTimedModel::Config cfg;
    cfg.cells = 16;
    cfg.meanDelayNs = 100.0;
    cfg.jitterNs = 25.0;
    cfg.handshakeNs = 15.0;
    cfg.skewPerCellNs = 0.5;
    cfg.seed = 42;
    return cfg;
}

TEST(SelfTimed, DeterministicForSeed)
{
    SelfTimedModel a(baseConfig()), b(baseConfig());
    EXPECT_DOUBLE_EQ(a.selfTimedCompletionNs(100),
                     b.selfTimedCompletionNs(100));
}

TEST(SelfTimed, ZeroBeatsIsFree)
{
    SelfTimedModel m(baseConfig());
    EXPECT_DOUBLE_EQ(m.selfTimedCompletionNs(0), 0.0);
    EXPECT_DOUBLE_EQ(m.clockedCompletionNs(0), 0.0);
}

TEST(SelfTimed, CompletionBoundedByBestAndWorstCase)
{
    auto cfg = baseConfig();
    SelfTimedModel m(cfg);
    const Beat beats = 500;
    const double t = m.selfTimedCompletionNs(beats);
    // Lower bound: every beat takes at least min delay + handshake.
    EXPECT_GE(t, (cfg.meanDelayNs - cfg.jitterNs + cfg.handshakeNs) *
                     static_cast<double>(beats));
    // Upper bound: never worse than worst-case lockstep.
    EXPECT_LE(t, (cfg.meanDelayNs + cfg.jitterNs + cfg.handshakeNs) *
                     static_cast<double>(beats) +
                     1e-6);
}

TEST(SelfTimed, ClockPeriodCoversWorstCasePlusSkew)
{
    auto cfg = baseConfig();
    SelfTimedModel m(cfg);
    EXPECT_DOUBLE_EQ(m.clockPeriodNs(),
                     100.0 + 25.0 + 0.5 * 16);
}

TEST(SelfTimed, SmallArraysFavorTheClock)
{
    // The paper's judgment for the pattern matching chip: at 8
    // cells, skew is negligible and the handshake overhead makes
    // self-timing slower.
    auto cfg = baseConfig();
    cfg.cells = 8;
    SelfTimedModel m(cfg);
    const Beat beats = 2000;
    EXPECT_GT(m.selfTimedCompletionNs(beats),
              m.clockedCompletionNs(beats));
}

TEST(SelfTimed, LargeArraysFavorSelfTiming)
{
    // "For larger systems, of course, self-timed communication may
    // have to be used": skew grows with array length until the
    // clocked period loses to handshaking.
    auto cfg = baseConfig();
    cfg.cells = 512;
    SelfTimedModel m(cfg);
    const Beat beats = 500;
    EXPECT_LT(m.selfTimedCompletionNs(beats),
              m.clockedCompletionNs(beats));
}

TEST(SelfTimed, JitterAveragesOutInLongRuns)
{
    // The self-timed per-beat advance converges near the mean delay
    // plus handshake (neighbors absorb each other's jitter only
    // partially; the max over three neighbors biases upward of the
    // mean but stays well under worst case).
    auto cfg = baseConfig();
    cfg.cells = 64;
    SelfTimedModel m(cfg);
    m.selfTimedCompletionNs(3000);
    const double per_beat = m.lastSelfTimedBeatNs();
    EXPECT_GT(per_beat, cfg.meanDelayNs + cfg.handshakeNs - 1.0);
    EXPECT_LT(per_beat,
              cfg.meanDelayNs + cfg.jitterNs + cfg.handshakeNs);
}

TEST(SelfTimed, ParameterValidation)
{
    auto cfg = baseConfig();
    cfg.cells = 0;
    EXPECT_THROW(SelfTimedModel{cfg}, std::logic_error);
    cfg = baseConfig();
    cfg.jitterNs = 200.0;
    EXPECT_THROW(SelfTimedModel{cfg}, std::logic_error);
}

} // namespace
} // namespace spm::systolic
