/**
 * @file
 * Cross-module integration tests: every matcher implementation in the
 * repository must agree on shared workloads, and the design flow's
 * output must describe the chip the simulators simulate.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/boyermoore.hh"
#include "baselines/broadcast.hh"
#include "baselines/fftmatch.hh"
#include "baselines/kmp.hh"
#include "baselines/naive.hh"
#include "baselines/staticarray.hh"
#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/cascade.hh"
#include "core/gatechip.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "flow/designflow.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm
{
namespace
{

using namespace spm::core;
using namespace spm::baselines;

/** All wild-card-capable matchers under test. */
std::vector<std::unique_ptr<Matcher>>
allWildcardMatchers(std::size_t pattern_len, BitWidth bits)
{
    std::vector<std::unique_ptr<Matcher>> out;
    out.push_back(std::make_unique<BehavioralMatcher>(pattern_len));
    out.push_back(
        std::make_unique<BitSerialMatcher>(pattern_len, bits));
    out.push_back(
        std::make_unique<GateLevelMatcher>(pattern_len, bits));
    out.push_back(std::make_unique<CascadeMatcher>(
        2, (pattern_len + 1) / 2));
    out.push_back(std::make_unique<MultipassMatcher>(
        std::max<std::size_t>(1, pattern_len / 2)));
    out.push_back(std::make_unique<NaiveMatcher>());
    out.push_back(std::make_unique<FftMatcher>());
    out.push_back(std::make_unique<BroadcastMatcher>());
    out.push_back(std::make_unique<StaticArrayMatcher>());
    return out;
}

TEST(Integration, NineImplementationsAgreeOnPaperExample)
{
    const auto text = test::paperText();
    const auto pattern = test::paperPattern();
    ReferenceMatcher ref;
    const auto want = ref.match(text, pattern);
    for (auto &m : allWildcardMatchers(pattern.size(), 2)) {
        EXPECT_EQ(m->match(text, pattern), want) << m->name();
        EXPECT_TRUE(m->supportsWildcards()) << m->name();
    }
}

class CrossImplementation
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CrossImplementation, AllMatchersAgreeOnRandomWorkloads)
{
    const test::Workload w = test::makeWorkload(GetParam() + 500);
    ReferenceMatcher ref;
    const auto want = ref.match(w.text, w.pattern);
    for (auto &m : allWildcardMatchers(w.pattern.size(), w.bits)) {
        EXPECT_EQ(m->match(w.text, w.pattern), want)
            << m->name() << " on workload " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, CrossImplementation,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Integration, ExactMatchersAgreeToo)
{
    KmpMatcher kmp;
    BoyerMooreMatcher bm;
    ReferenceMatcher ref;
    for (std::uint64_t i = 0; i < 6; ++i) {
        const auto w = test::makeWorkload(i + 900, false);
        const auto want = ref.match(w.text, w.pattern);
        EXPECT_EQ(kmp.match(w.text, w.pattern), want);
        EXPECT_EQ(bm.match(w.text, w.pattern), want);
    }
}

TEST(Integration, FlowChipSizeMatchesSimulatedChip)
{
    // The design flow's transistor report must equal the count of
    // the gate-level chip the matcher tests simulate.
    const auto flow_result = flow::runDesignFlow(4, 2);
    GateChip chip(4, 2);
    EXPECT_EQ(flow_result.report.transistors,
              chip.netlist().transistorCount());
}

TEST(Integration, SystolicBeatsAreImplementationInvariant)
{
    // Character-level and cascade report identical beat counts; the
    // bit-serial pipe adds exactly its drain latency.
    WorkloadGen gen(77, 2);
    const auto pat = gen.randomPattern(4);
    const auto text = gen.randomText(100);

    BehavioralMatcher chars(4);
    CascadeMatcher cascade(2, 2);
    BitSerialMatcher bits(4, 2);
    chars.match(text, pat);
    cascade.match(text, pat);
    bits.match(text, pat);
    EXPECT_EQ(chars.lastBeats(), cascade.lastBeats());
    EXPECT_EQ(bits.lastBeats(), chars.lastBeats() + 1);
}

} // namespace
} // namespace spm
