/**
 * @file
 * Shared helpers for the test suite: deterministic workloads and the
 * paper's own running example.
 *
 * All randomized workloads are backed by the conformance case
 * generator (src/conformance/casegen.hh), so the suite and the
 * conformance_fuzz tool draw cases from the same stratified hard
 * regions, and any workload a test logs can be replayed through
 * `conformance_fuzz --replay` via its case ID.
 */

#ifndef SPM_TESTS_HELPERS_HH
#define SPM_TESTS_HELPERS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "conformance/case.hh"
#include "conformance/casegen.hh"
#include "util/rng.hh"
#include "util/strings.hh"
#include "util/types.hh"

namespace spm::test
{

/** A matching workload: text, pattern, and its generator settings. */
struct Workload
{
    std::vector<Symbol> text;
    std::vector<Symbol> pattern;
    BitWidth bits;
    /** Replayable conformance case ID of this workload. */
    std::string caseId;
};

/** The master seed shared by all test workloads. */
inline constexpr std::uint64_t workloadSeed = 0xC0FFEE;

inline Workload
toWorkload(const conformance::CaseSpec &spec)
{
    const conformance::Case c = conformance::materializeSpec(spec);
    return Workload{c.text, c.pattern, c.bits,
                    conformance::encodeSpec(spec)};
}

/**
 * Deterministic workload for a sweep index: varies pattern length,
 * text length, wild card density and alphabet with the index, biased
 * toward the conformance generator's hard regions. The text is always
 * at least as long as the pattern.
 */
inline Workload
makeWorkload(std::uint64_t index, bool wildcards = true)
{
    const conformance::CaseGen gen(workloadSeed);
    conformance::CaseSpec spec = gen.specAt(index);
    if (!wildcards)
        spec.wildcardPct = 0;
    // Tests built on this helper index into the text by pattern
    // offsets, so exclude the generator's k > n degenerate shapes.
    spec.textLen = std::max(spec.textLen, spec.patternLen + 8);
    return toWorkload(spec);
}

/**
 * Workload with explicit shape knobs (alphabet, text and pattern
 * length, wild-card percentage), still materialized by the
 * conformance generator so matches get planted deterministically.
 */
inline Workload
makeShapedWorkload(std::uint64_t seed, BitWidth bits,
                   std::size_t text_len, std::size_t pattern_len,
                   unsigned wildcard_pct = 20)
{
    conformance::CaseSpec spec;
    spec.seed = seed;
    spec.bits = bits;
    spec.patternLen = pattern_len;
    spec.textLen = text_len;
    spec.wildcardPct = wildcard_pct;
    return toWorkload(spec);
}

/** The pattern of the paper's Figure 3-1 example: AXC. */
inline std::vector<Symbol>
paperPattern()
{
    return parseSymbols("AXC");
}

/** A text exercising the Figure 3-1 example's matches. */
inline std::vector<Symbol>
paperText()
{
    return parseSymbols("ABCAACCACB");
}

} // namespace spm::test

#endif // SPM_TESTS_HELPERS_HH
