/**
 * @file
 * Shared helpers for the test suite: deterministic workloads and the
 * paper's own running example.
 */

#ifndef SPM_TESTS_HELPERS_HH
#define SPM_TESTS_HELPERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"
#include "util/strings.hh"
#include "util/types.hh"

namespace spm::test
{

/** A matching workload: text, pattern, and its generator settings. */
struct Workload
{
    std::vector<Symbol> text;
    std::vector<Symbol> pattern;
    BitWidth bits;
};

/**
 * Deterministic workload for a sweep index: varies pattern length,
 * text length, wild card density and alphabet with the index.
 */
inline Workload
makeWorkload(std::uint64_t index, bool wildcards = true)
{
    const BitWidth bits = 1 + index % 4;
    WorkloadGen gen(0xC0FFEE + index, bits);
    const std::size_t len = 1 + gen.rng().nextBelow(10);
    const std::size_t n = len + gen.rng().nextBelow(80);
    const double density = wildcards ? 0.25 : 0.0;
    Workload w;
    w.bits = bits;
    w.pattern = gen.randomPattern(len, density);
    w.text = gen.textWithPlants(n, w.pattern,
                                len + 1 + gen.rng().nextBelow(6));
    return w;
}

/** The pattern of the paper's Figure 3-1 example: AXC. */
inline std::vector<Symbol>
paperPattern()
{
    return parseSymbols("AXC");
}

/** A text exercising the Figure 3-1 example's matches. */
inline std::vector<Symbol>
paperText()
{
    return parseSymbols("ABCAACCACB");
}

} // namespace spm::test

#endif // SPM_TESTS_HELPERS_HH
