/** @file Tests for the gate-level chip. */

#include <gtest/gtest.h>

#include "core/bitserial.hh"
#include "core/gatechip.hh"
#include "core/reference.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::core
{
namespace
{

TEST(GateChip, PrototypeInventory)
{
    // 8 cells x 2-bit characters: 16 single-bit comparators (7
    // devices each) plus 8 accumulators.
    GateChip chip(8, 2);
    const gate::Netlist &net = chip.netlist();
    EXPECT_EQ(net.countKind(gate::DeviceKind::Xnor2) +
                  net.countKind(gate::DeviceKind::Xor2),
              16u)
        << "one equality gate per comparator cell";
    EXPECT_GT(net.transistorCount(), 400u);
    EXPECT_LT(net.transistorCount(), 1200u)
        << "well inside late-70s NMOS budgets";
}

TEST(GateChip, MatchesReferenceOnPaperExample)
{
    GateLevelMatcher chip(3, 2);
    ReferenceMatcher ref;
    EXPECT_EQ(chip.match(test::paperText(), test::paperPattern()),
              ref.match(test::paperText(), test::paperPattern()));
}

TEST(GateChip, MatchesBitSerialModel)
{
    const test::Workload w = test::makeWorkload(55);
    GateLevelMatcher gates(w.pattern.size(), w.bits);
    BitSerialMatcher tokens(w.pattern.size(), w.bits);
    EXPECT_EQ(gates.match(w.text, w.pattern),
              tokens.match(w.text, w.pattern));
}

TEST(GateChip, SimulatedTimeMatchesPrototypeRate)
{
    // 250 ns per beat: matching n characters takes about 2n beats of
    // 250 ns each once the pipeline is full.
    GateLevelMatcher chip(2, 1);
    WorkloadGen gen(9, 1);
    const auto text = gen.randomText(50);
    const auto pat = gen.randomPattern(2);
    chip.match(text, pat);
    EXPECT_GT(chip.lastBeats(), 100u);
}

TEST(GateChip, StallDestroysState)
{
    // Section 3.3.3 failure injection: stop the clock past the
    // retention limit and the dynamic registers lose their data.
    GateChip chip(4, 2);
    const ChipFeedPlan plan(4, parseSymbols("AB"), 8);
    const auto text = parseSymbols("ABABABAB");
    for (Beat u = 0; u < 12; ++u) {
        for (unsigned row = 0; row < 2; ++row) {
            const PatToken p =
                u >= row ? plan.patternAt(u - row) : PatToken{};
            chip.setPatternBit(row,
                               p.valid && ((p.sym >> (1 - row)) & 1));
            const StrToken s =
                u >= row ? plan.stringAt(u - row, text) : StrToken{};
            chip.setStringBit(row,
                              s.valid && ((s.sym >> (1 - row)) & 1));
        }
        const CtlToken c = u >= 1 ? plan.controlAt(u - 1) : CtlToken{};
        chip.setControl(c.valid && c.lambda, c.valid && c.x);
        const ResToken r = u >= 1 ? plan.resultAt(u - 1) : ResToken{};
        chip.setResultIn(r.valid && r.value);
        chip.tick();
    }
    // Short stall: harmless. Long stall: many nodes decay to X.
    EXPECT_EQ(chip.stall(gate::defaultRetentionPs / 100), 0u);
    const std::size_t lost = chip.stall(2 * gate::defaultRetentionPs);
    EXPECT_GT(lost, 10u)
        << "a stopped clock wipes the dynamic shift registers";
}

TEST(GateChip, RowRangeChecked)
{
    GateChip chip(2, 2);
    EXPECT_THROW(chip.setPatternBit(2, true), std::logic_error);
    EXPECT_THROW(chip.setStringBit(5, false), std::logic_error);
}

TEST(GateChip, ParameterValidation)
{
    EXPECT_THROW(GateChip(0, 2), std::logic_error);
    EXPECT_THROW(GateChip(2, 0), std::logic_error);
    EXPECT_THROW(GateChip(2, 9), std::logic_error);
}

TEST(GateChip, TransistorCountScalesLinearly)
{
    GateLevelMatcher small(2, 2);
    GateLevelMatcher big(8, 2);
    WorkloadGen gen(5, 2);
    const auto text = gen.randomText(20);
    const auto pat = gen.randomPattern(2);
    small.match(text, pat);
    big.match(text, pat);
    // 4x the cells: close to 4x the transistors (modulo edge cells).
    const double ratio = static_cast<double>(big.lastTransistors()) /
                         static_cast<double>(small.lastTransistors());
    EXPECT_NEAR(ratio, 4.0, 0.5);
}

/** Property sweep: gate level equals the reference definition. */
class GateProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GateProperty, MatchesReferenceOnRandomWorkloads)
{
    const test::Workload w = test::makeWorkload(GetParam() + 300);
    ReferenceMatcher ref;
    GateLevelMatcher chip(w.pattern.size(), w.bits);
    EXPECT_EQ(chip.match(w.text, w.pattern),
              ref.match(w.text, w.pattern));
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, GateProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace spm::core
