/**
 * @file
 * Regression replay of the committed conformance corpus.
 *
 * Every case ID under tests/corpus/ is a shape that once mattered: a
 * word-boundary pattern length, a shard-straddling match, a minimized
 * reproduction. This test replays the whole corpus across the full
 * oracle registry (extension and golden-trace legs included) and
 * fails on any disagreement, so the corpus acts as a permanent
 * differential regression suite.
 */

#include <gtest/gtest.h>

#include "conformance/harness.hh"

#ifndef SPM_CORPUS_DIR
#error "SPM_CORPUS_DIR must point at tests/corpus"
#endif

namespace spm::conformance
{
namespace
{

TEST(Corpus, EveryCommittedCaseAgreesAcrossAllOracles)
{
    HarnessConfig cfg;
    const RunReport r = runCorpus(SPM_CORPUS_DIR, cfg);
    ASSERT_GT(r.casesRun, 0u)
        << "corpus empty or unreadable: " << SPM_CORPUS_DIR;
    EXPECT_GT(r.comparisons, r.casesRun);
    for (const Failure &f : r.failures)
        ADD_FAILURE() << f.report();
    EXPECT_TRUE(r.ok());
}

TEST(Corpus, RejectsAMissingPath)
{
    const RunReport r =
        runCorpus("/nonexistent/corpus/path", HarnessConfig{});
    EXPECT_FALSE(r.ok());
}

} // namespace
} // namespace spm::conformance
