/** @file Unit tests for symbol/string conversions. */

#include <gtest/gtest.h>

#include "util/strings.hh"

namespace spm
{
namespace
{

TEST(Strings, ParseLettersAndWildcards)
{
    const auto syms = parseSymbols("AXC");
    ASSERT_EQ(syms.size(), 3u);
    EXPECT_EQ(syms[0], 0);
    EXPECT_EQ(syms[1], wildcardSymbol);
    EXPECT_EQ(syms[2], 2);
}

TEST(Strings, ParseIsCaseInsensitive)
{
    EXPECT_EQ(parseSymbols("abc"), parseSymbols("ABC"));
    EXPECT_EQ(parseSymbols("x"), parseSymbols("X"));
}

TEST(Strings, ParseSkipsSpaces)
{
    EXPECT_EQ(parseSymbols("A B C"), parseSymbols("ABC"));
}

TEST(Strings, ParseRejectsUnknown)
{
    EXPECT_THROW(parseSymbols("A?C"), std::runtime_error);
}

TEST(Strings, RenderRoundTrips)
{
    const std::string s = "ABCXBA";
    EXPECT_EQ(renderSymbols(parseSymbols(s)), s);
}

TEST(Strings, RenderLargeSymbols)
{
    EXPECT_EQ(renderSymbols({Symbol(100)}), "<100>");
}

TEST(Strings, BytesToSymbols)
{
    const auto syms = bytesToSymbols("a\xff");
    ASSERT_EQ(syms.size(), 2u);
    EXPECT_EQ(syms[0], Symbol('a'));
    EXPECT_EQ(syms[1], Symbol(255));
}

TEST(Strings, RenderMatchPositions)
{
    std::vector<bool> r = {false, true, false, true, true};
    EXPECT_EQ(renderMatchPositions(r), "1, 3, 4");
    EXPECT_EQ(renderMatchPositions({false, false}), "");
}

TEST(Strings, RequiredBits)
{
    EXPECT_EQ(requiredBits({0}), 1u);
    EXPECT_EQ(requiredBits({1}), 1u);
    EXPECT_EQ(requiredBits({2}), 2u);
    EXPECT_EQ(requiredBits({3}), 2u);
    EXPECT_EQ(requiredBits({4}), 3u);
    EXPECT_EQ(requiredBits({255}), 8u);
    // Wild cards do not affect the required width.
    EXPECT_EQ(requiredBits({wildcardSymbol, 1}), 1u);
}

} // namespace
} // namespace spm
