/** @file Tests for the task dependency graph engine (Section 4). */

#include <gtest/gtest.h>

#include "flow/taskgraph.hh"

namespace spm::flow
{
namespace
{

TEST(TaskGraph, TopologicalOrderRespectsDependencies)
{
    TaskGraph g;
    const TaskId a = g.addTask("a", "", 1);
    const TaskId b = g.addTask("b", "", 1);
    const TaskId c = g.addTask("c", "", 1);
    g.addDependency(c, b);
    g.addDependency(b, a);
    const auto order = g.topologicalOrder();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], a);
    EXPECT_EQ(order[1], b);
    EXPECT_EQ(order[2], c);
}

TEST(TaskGraph, DetectsCycles)
{
    TaskGraph g;
    const TaskId a = g.addTask("a", "", 1);
    const TaskId b = g.addTask("b", "", 1);
    g.addDependency(a, b);
    g.addDependency(b, a);
    EXPECT_THROW(g.topologicalOrder(), std::runtime_error);
}

TEST(TaskGraph, SelfDependencyRejected)
{
    TaskGraph g;
    const TaskId a = g.addTask("a", "", 1);
    EXPECT_THROW(g.addDependency(a, a), std::logic_error);
}

TEST(TaskGraph, EffortAccounting)
{
    TaskGraph g;
    const TaskId a = g.addTask("a", "", 2);
    const TaskId b = g.addTask("b", "", 3);
    const TaskId c = g.addTask("c", "", 5);
    g.addDependency(c, a); // chain a -> c (7 days)
    (void)b;               // b is parallel (3 days)
    EXPECT_DOUBLE_EQ(g.totalEffortDays(), 10.0);
    EXPECT_DOUBLE_EQ(g.criticalPathDays(), 7.0);
    const auto path = g.criticalPath();
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], a);
    EXPECT_EQ(path[1], c);
}

TEST(TaskGraph, ParallelBranchesShortenCriticalPath)
{
    TaskGraph g;
    const TaskId root = g.addTask("root", "", 1);
    const TaskId l1 = g.addTask("l1", "", 4);
    const TaskId l2 = g.addTask("l2", "", 2);
    const TaskId join = g.addTask("join", "", 1);
    g.addDependency(l1, root);
    g.addDependency(l2, root);
    g.addDependency(join, l1);
    g.addDependency(join, l2);
    EXPECT_DOUBLE_EQ(g.totalEffortDays(), 8.0);
    EXPECT_DOUBLE_EQ(g.criticalPathDays(), 6.0) << "root->l1->join";
}

TEST(TaskGraph, RenderListsTasksAndDeps)
{
    TaskGraph g;
    const TaskId a = g.addTask("Algorithm", "think hard", 10);
    const TaskId b = g.addTask("Layout", "draw rectangles", 5);
    g.addDependency(b, a);
    const std::string s = g.render();
    EXPECT_NE(s.find("Algorithm"), std::string::npos);
    EXPECT_NE(s.find("Layout"), std::string::npos);
    EXPECT_NE(s.find("<-  Algorithm"), std::string::npos);
    EXPECT_NE(s.find("think hard"), std::string::npos);
}

TEST(TaskGraph, BadIdsPanic)
{
    TaskGraph g;
    g.addTask("a", "", 1);
    EXPECT_THROW(g.task(5), std::logic_error);
    EXPECT_THROW(g.addDependency(0, 9), std::logic_error);
}

} // namespace
} // namespace spm::flow
