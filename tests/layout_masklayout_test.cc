/** @file Unit tests for mask layouts and stick diagrams. */

#include <gtest/gtest.h>

#include "layout/masklayout.hh"
#include "layout/sticks.hh"

namespace spm::layout
{
namespace
{

TEST(MaskLayout, CollectsShapesAndBounds)
{
    MaskLayout cell("c");
    cell.addRect(Layer::Metal, Rect{0, 0, 4, 3});
    cell.addRect(Layer::Poly, Rect{10, 5, 12, 9});
    EXPECT_EQ(cell.shapeCount(), 2u);
    EXPECT_EQ(cell.boundingBox(), Rect(0, 0, 12, 9));
    EXPECT_EQ(cell.cellArea(), 12 * 9);
    EXPECT_EQ(cell.areaOn(Layer::Metal), 12);
    EXPECT_EQ(cell.areaOn(Layer::Poly), 8);
    EXPECT_EQ(cell.areaOn(Layer::Diffusion), 0);
}

TEST(MaskLayout, RejectsDegenerateRects)
{
    MaskLayout cell;
    EXPECT_THROW(cell.addRect(Layer::Metal, Rect{0, 0, 0, 5}),
                 std::logic_error);
}

TEST(MaskLayout, PortsLookup)
{
    MaskLayout cell;
    cell.addPort("in", Layer::Poly, Point{1, 2});
    EXPECT_EQ(cell.port("in").at, (Point{1, 2}));
    EXPECT_EQ(cell.port("in").layer, Layer::Poly);
    EXPECT_THROW(cell.port("missing"), std::logic_error);
}

TEST(MaskLayout, MergeTranslatesShapesAndPrefixesPorts)
{
    MaskLayout inner("inner");
    inner.addRect(Layer::Diffusion, Rect{0, 0, 2, 2});
    inner.addPort("out", Layer::Metal, Point{1, 1});

    MaskLayout outer("outer");
    outer.merge(inner, 10, 20, "a.");
    EXPECT_EQ(outer.shapes()[0].rect, Rect(10, 20, 12, 22));
    EXPECT_EQ(outer.port("a.out").at, (Point{11, 21}));
}

TEST(MaskLayout, AsciiRenderShowsLayers)
{
    MaskLayout cell("tiny");
    cell.addRect(Layer::Metal, Rect{0, 0, 4, 4});
    const std::string art = cell.renderAscii(2);
    EXPECT_NE(art.find('M'), std::string::npos);
    EXPECT_NE(art.find("tiny"), std::string::npos);
}

TEST(MaskLayout, EmptyRenderIsSafe)
{
    MaskLayout cell;
    EXPECT_EQ(cell.renderAscii(), "(empty layout)\n");
}

TEST(Layers, NamesAndColors)
{
    EXPECT_STREQ(layerName(Layer::Diffusion), "diffusion");
    EXPECT_STREQ(layerColor(Layer::Diffusion), "green");
    EXPECT_STREQ(layerColor(Layer::Poly), "red");
    EXPECT_STREQ(layerColor(Layer::Metal), "blue");
    EXPECT_STREQ(layerColor(Layer::Implant), "yellow");
    EXPECT_STREQ(cifLayerName(Layer::Metal), "NM");
}

TEST(DesignRules, MeadConwayValues)
{
    const DesignRules &r = defaultRules();
    EXPECT_EQ(r.minWidth(Layer::Diffusion), 2);
    EXPECT_EQ(r.minWidth(Layer::Poly), 2);
    EXPECT_EQ(r.minWidth(Layer::Metal), 3);
    EXPECT_EQ(r.minSpacing(Layer::Diffusion), 3);
    EXPECT_EQ(r.minSpacing(Layer::Poly), 2);
    EXPECT_EQ(r.minSpacing(Layer::Metal), 3);
    EXPECT_EQ(r.contactSize, 2);
}

TEST(StickDiagram, SegmentsAndMarkers)
{
    StickDiagram s("cell");
    s.addSegment(Layer::Poly, Point{0, 0}, Point{0, 4}, "clk");
    s.addSegment(Layer::Diffusion, Point{0, 2}, Point{5, 2}, "p");
    s.addMarker(StickComponent::EnhancementFet, Point{0, 2}, "T1");
    s.addMarker(StickComponent::DepletionFet, Point{2, 2}, "pull");
    s.addMarker(StickComponent::ContactCut, Point{5, 2}, "c");
    EXPECT_EQ(s.segments().size(), 2u);
    EXPECT_EQ(s.markers().size(), 3u);
    EXPECT_EQ(s.transistorCount(), 2u);
    EXPECT_EQ(s.boundingBox(), Rect(0, 0, 5, 4));
}

TEST(StickDiagram, RejectsDiagonals)
{
    StickDiagram s("bad");
    EXPECT_THROW(
        s.addSegment(Layer::Poly, Point{0, 0}, Point{2, 2}, "n"),
        std::logic_error);
}

TEST(StickDiagram, WireLengthByLayer)
{
    StickDiagram s("w");
    s.addSegment(Layer::Metal, Point{0, 0}, Point{10, 0}, "a");
    s.addSegment(Layer::Metal, Point{0, 0}, Point{0, 5}, "a");
    s.addSegment(Layer::Poly, Point{0, 0}, Point{3, 0}, "b");
    EXPECT_EQ(s.wireLength(Layer::Metal), 15);
    EXPECT_EQ(s.wireLength(Layer::Poly), 3);
    EXPECT_EQ(s.wireLength(Layer::Diffusion), 0);
}

TEST(StickDiagram, NetsAreUnique)
{
    StickDiagram s("n");
    s.addSegment(Layer::Metal, Point{0, 0}, Point{1, 0}, "vdd");
    s.addSegment(Layer::Metal, Point{0, 1}, Point{1, 1}, "vdd");
    s.addSegment(Layer::Poly, Point{0, 2}, Point{1, 2}, "clk");
    EXPECT_EQ(s.nets().size(), 2u);
}

TEST(StickDiagram, AsciiRenderShowsComponents)
{
    StickDiagram s("art");
    s.addSegment(Layer::Diffusion, Point{0, 0}, Point{4, 0}, "d");
    s.addMarker(StickComponent::EnhancementFet, Point{2, 0}, "T");
    const std::string art = s.renderAscii();
    EXPECT_NE(art.find('T'), std::string::npos);
    EXPECT_NE(art.find('d'), std::string::npos);
}

} // namespace
} // namespace spm::layout
