/**
 * @file
 * Unit tests for the metrics registry: bucket boundary placement,
 * striped aggregation under concurrent writers, snapshot merge
 * semantics (the sharded service's aggregation path), and the four
 * render formats round-tripping through trace_view's JSON reader.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "telemetry/metrics.hh"

namespace spm::telem
{
namespace
{

TEST(Counter, AddAndValue)
{
    Registry reg;
    Counter &c = reg.counter("beats");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, GetOrCreateReturnsSameInstance)
{
    Registry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_EQ(reg.metricCount(), 1u);
}

TEST(Counter, ConstLookupPanicsWhenMissing)
{
    Registry reg;
    const Registry &cref = reg;
    EXPECT_THROW(cref.counter("nonexistent"), std::logic_error);
}

TEST(Counter, ConcurrentWritersSumExactly)
{
    Registry reg(8);
    Counter &c = reg.counter("hits");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&c] {
            for (int i = 0; i < kPerThread; ++i)
                c.add();
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, LastWriteWins)
{
    Registry reg;
    Gauge &g = reg.gauge("depth");
    EXPECT_EQ(g.value(), 0.0);
    g.set(7.0);
    g.set(3.5);
    EXPECT_EQ(g.value(), 3.5);
}

TEST(Histogram, BucketBoundariesAreHalfOpen)
{
    Registry reg;
    // [0, 10) in 5 buckets of width 2: [0,2) [2,4) [4,6) [6,8) [8,10)
    Histogram &h = reg.histogram("lat", 0.0, 10.0, 5);
    h.sample(0.0);  // exactly lo -> bucket 0
    h.sample(1.99); // bucket 0
    h.sample(2.0);  // exact boundary -> bucket 1, not 0
    h.sample(8.0);  // bucket 4
    h.sample(9.99); // bucket 4
    h.sample(10.0); // exactly hi -> overflow, not bucket 4
    h.sample(-0.1); // below lo -> underflow
    h.sample(1e9);  // far above -> overflow

    EXPECT_EQ(h.bucketValue(0), 2u);
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(2), 0u);
    EXPECT_EQ(h.bucketValue(3), 0u);
    EXPECT_EQ(h.bucketValue(4), 2u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 2u);
    EXPECT_EQ(h.samples(), 8u);
}

TEST(Histogram, SumAndMeanTrackSamples)
{
    Registry reg;
    Histogram &h = reg.histogram("v", 0.0, 100.0, 4);
    h.sample(10.0);
    h.sample(20.0);
    h.sample(30.0);
    EXPECT_NEAR(h.sum(), 60.0, 1e-6);
    const Snapshot snap = reg.snapshot();
    const Snapshot::HistogramData *d = snap.histogram("v");
    ASSERT_NE(d, nullptr);
    EXPECT_NEAR(d->mean(), 20.0, 1e-6);
}

TEST(Histogram, NegativeValuesSumCorrectly)
{
    Registry reg;
    Histogram &h = reg.histogram("signed", -10.0, 10.0, 4);
    h.sample(-5.0);
    h.sample(2.0);
    EXPECT_NEAR(h.sum(), -3.0, 1e-6);
}

TEST(Histogram, ShapeMismatchPanics)
{
    Registry reg;
    reg.histogram("h", 0.0, 10.0, 5);
    EXPECT_THROW(reg.histogram("h", 0.0, 10.0, 8), std::logic_error);
    EXPECT_THROW(reg.histogram("h", 0.0, 20.0, 5), std::logic_error);
    // Same shape is the same histogram.
    EXPECT_NO_THROW(reg.histogram("h", 0.0, 10.0, 5));
}

TEST(Snapshot, MergeAddsCountersAndHistogramCells)
{
    Registry a;
    Registry b;
    a.counter("served").add(3);
    b.counter("served").add(4);
    b.counter("only_b").add(1);
    a.histogram("lat", 0.0, 8.0, 4).sample(1.0);
    b.histogram("lat", 0.0, 8.0, 4).sample(1.5);
    b.histogram("lat", 0.0, 8.0, 4).sample(7.0);
    a.gauge("depth").set(2.0);
    b.gauge("depth").set(3.0);
    b.gauge("threads").set(4.0);

    Snapshot s = a.snapshot();
    s.merge(b.snapshot());

    EXPECT_EQ(s.counterValue("served"), 7u);
    EXPECT_EQ(s.counterValue("only_b"), 1u);
    const Snapshot::HistogramData *d = s.histogram("lat");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->buckets[0], 2u); // 1.0 and 1.5 both in [0,2)
    EXPECT_EQ(d->buckets[3], 1u);
    EXPECT_EQ(d->samples(), 3u);
    EXPECT_NEAR(d->sum, 9.5, 1e-6);
    // Gauges sum when both sides have the entry (queue depths across
    // shards); absent entries are taken as-is.
    EXPECT_EQ(s.gaugeValue("depth"), 5.0);
    EXPECT_EQ(s.gaugeValue("threads"), 4.0);
}

TEST(Snapshot, MergeShapeMismatchPanics)
{
    Registry a;
    Registry b;
    a.histogram("h", 0.0, 8.0, 4).sample(1.0);
    b.histogram("h", 0.0, 8.0, 8).sample(1.0);
    Snapshot s = a.snapshot();
    EXPECT_THROW(s.merge(b.snapshot()), std::logic_error);
}

TEST(Snapshot, RenderTextMatchesLegacyDumpFormat)
{
    Registry reg;
    reg.counter("beats").add(12);
    reg.counter("evaluations").add(48);
    const std::string text = reg.snapshot().renderText("engine.");
    EXPECT_NE(text.find("engine.beats = 12"), std::string::npos);
    EXPECT_NE(text.find("engine.evaluations = 48"), std::string::npos);
}

TEST(Snapshot, RenderPrometheusSanitizesNames)
{
    Registry reg;
    reg.counter("engine.beats").add(5);
    reg.gauge("queue depth").set(2);
    reg.histogram("lat", 0.0, 4.0, 2).sample(1.0);
    const std::string prom = reg.snapshot().renderPrometheus();
    EXPECT_NE(prom.find("spm_engine_beats 5"), std::string::npos);
    EXPECT_NE(prom.find("spm_queue_depth 2"), std::string::npos);
    // Cumulative le-buckets with a +Inf terminator.
    EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(prom.find("spm_lat_count 1"), std::string::npos);
}

TEST(Snapshot, JsonRoundTripIsLossless)
{
    Registry reg(4);
    reg.counter("served").add(1234567);
    reg.gauge("depth").set(3.25);
    Histogram &h = reg.histogram("lat", 0.0, 64.0, 8);
    h.sample(-1.0);
    h.sample(0.5);
    h.sample(63.9);
    h.sample(100.0);

    const Snapshot before = reg.snapshot();
    const std::string json = before.toJson();
    const std::optional<Snapshot> after = Snapshot::fromJson(json);
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->counterValue("served"), 1234567u);
    EXPECT_EQ(after->gaugeValue("depth"), 3.25);
    const Snapshot::HistogramData *d = after->histogram("lat");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->buckets, before.histogram("lat")->buckets);
    EXPECT_EQ(d->under, 1u);
    EXPECT_EQ(d->over, 1u);
    EXPECT_NEAR(d->sum, before.histogram("lat")->sum, 1e-6);
    // And the round trip is a fixed point.
    EXPECT_EQ(after->toJson(), json);
}

TEST(Snapshot, FromJsonRejectsGarbage)
{
    EXPECT_FALSE(Snapshot::fromJson("").has_value());
    EXPECT_FALSE(Snapshot::fromJson("not json").has_value());
    EXPECT_FALSE(Snapshot::fromJson("[1,2,3]").has_value());
    EXPECT_FALSE(Snapshot::fromJson("{\"counters\":7}").has_value());
}

TEST(Registry, ResetZeroesEverything)
{
    Registry reg;
    reg.counter("c").add(5);
    reg.gauge("g").set(5);
    reg.histogram("h", 0.0, 4.0, 2).sample(1.0);
    reg.reset();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0.0);
    EXPECT_EQ(reg.histogram("h", 0.0, 4.0, 2).samples(), 0u);
}

TEST(Registry, GlobalIsUsableAndStable)
{
    Counter &c = Registry::global().counter("test.metrics.global");
    const std::uint64_t before = c.value();
    c.add(2);
    EXPECT_EQ(Registry::global().counter("test.metrics.global").value(),
              before + 2);
}

TEST(Histogram, NanSamplesLandInTheInvalidCell)
{
    Registry reg;
    Histogram &h = reg.histogram("lat", 0.0, 10.0, 5);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(1.0);
    // Invalid samples are counted apart and excluded from the sample
    // count and the sum (NaN would otherwise poison both).
    EXPECT_EQ(h.invalids(), 2u);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_NEAR(h.sum(), 1.0, 1e-6);
    h.reset();
    EXPECT_EQ(h.invalids(), 0u);
}

TEST(Histogram, EdgeCountersSurviveEveryRender)
{
    Registry reg;
    Histogram &h = reg.histogram("lat", 0.0, 10.0, 5);
    h.sample(10.0);  // exactly hi -> overflow (half-open [lo, hi))
    h.sample(-1.0);  // underflow
    h.sample(std::numeric_limits<double>::quiet_NaN());
    const Snapshot snap = reg.snapshot();
    const Snapshot::HistogramData *d = snap.histogram("lat");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->under, 1u);
    EXPECT_EQ(d->over, 1u);
    EXPECT_EQ(d->invalid, 1u);

    const std::string text = snap.renderText();
    EXPECT_NE(text.find("invalid:1"), std::string::npos);
    const std::string table = snap.renderTable();
    EXPECT_NE(table.find("invalid=1"), std::string::npos);
    const std::string prom = snap.renderPrometheus();
    EXPECT_NE(prom.find("spm_lat_edge{kind=\"under\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("spm_lat_edge{kind=\"over\"} 1"),
              std::string::npos);
    EXPECT_NE(prom.find("spm_lat_edge{kind=\"invalid\"} 1"),
              std::string::npos);
}

TEST(Histogram, InvalidCountRoundTripsThroughJson)
{
    Registry reg;
    Histogram &h = reg.histogram("lat", 0.0, 10.0, 5);
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(3.0);
    const Snapshot before = reg.snapshot();
    const std::optional<Snapshot> after =
        Snapshot::fromJson(before.toJson());
    ASSERT_TRUE(after.has_value());
    ASSERT_NE(after->histogram("lat"), nullptr);
    EXPECT_EQ(after->histogram("lat")->invalid, 1u);
    EXPECT_EQ(after->toJson(), before.toJson());
}

TEST(Snapshot, FromJsonAcceptsHistogramsWithoutInvalidField)
{
    // Snapshots dumped before the invalid cell existed must still
    // parse (the committed goldens are in that format).
    const std::string legacy =
        "{\"counters\":{},\"gauges\":{},\"histograms\":{"
        "\"lat\":{\"lo\":0,\"hi\":4,\"buckets\":[1,0],"
        "\"under\":0,\"over\":0,\"sum\":1}}}";
    const std::optional<Snapshot> snap = Snapshot::fromJson(legacy);
    ASSERT_TRUE(snap.has_value());
    ASSERT_NE(snap->histogram("lat"), nullptr);
    EXPECT_EQ(snap->histogram("lat")->invalid, 0u);
}

TEST(Snapshot, RenderPrometheusEscapesHostileMetricNames)
{
    Registry reg;
    reg.counter("bad\"name{with}\nnewline").add(1);
    const std::string prom = reg.snapshot().renderPrometheus();
    // Every non-[a-zA-Z0-9_] byte is replaced, so no quote, brace or
    // newline from the metric name can corrupt the exposition format.
    EXPECT_NE(prom.find("spm_bad_name_with__newline 1"),
              std::string::npos);
    std::size_t pos = prom.find("spm_bad");
    ASSERT_NE(pos, std::string::npos);
    const std::string metricLine =
        prom.substr(pos, prom.find('\n', pos) - pos);
    EXPECT_EQ(metricLine.find('"'), std::string::npos);
    EXPECT_EQ(metricLine.find('{'), std::string::npos);
}

TEST(Snapshot, ConcurrentSnapshotWhileWritingIsCoherent)
{
    // The registry contract: snapshot() may run concurrently with
    // writers and must see a value no larger than the true total and
    // no tearing (TSan runs this test in CI).
    Registry reg(4);
    Counter &c = reg.counter("served");
    Histogram &h = reg.histogram("lat", 0.0, 100.0, 10);
    LogHistogram &lh = reg.logHistogram("lat_ns");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&] {
            while (!go.load())
                std::this_thread::yield();
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                h.sample(static_cast<double>(i % 100));
                lh.sample(static_cast<double>(i));
            }
        });
    go.store(true);
    const std::uint64_t total =
        static_cast<std::uint64_t>(kThreads) * kPerThread;
    for (int i = 0; i < 50; ++i) {
        const Snapshot snap = reg.snapshot();
        EXPECT_LE(snap.counterValue("served"), total);
        const Snapshot::LogHistogramData *d = snap.logHistogram("lat_ns");
        ASSERT_NE(d, nullptr);
        EXPECT_LE(d->samples(), total);
    }
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(reg.counter("served").value(), total);
    EXPECT_EQ(reg.histogram("lat", 0.0, 100.0, 10).samples(), total);
    EXPECT_EQ(reg.snapshot().logHistogram("lat_ns")->samples(), total);
}

} // namespace
} // namespace spm::telem
