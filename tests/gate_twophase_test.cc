/** @file Unit tests for the two-phase clock driver. */

#include <gtest/gtest.h>

#include "gate/stdcells.hh"
#include "gate/twophase.hh"

namespace spm::gate
{
namespace
{

constexpr LogicValue L = LogicValue::L;
constexpr LogicValue H = LogicValue::H;

TEST(TwoPhaseClock, StartsQuiescent)
{
    Netlist net;
    TwoPhaseClock clk(net);
    EXPECT_EQ(net.value(clk.phi1()), L);
    EXPECT_EQ(net.value(clk.phi2()), L);
    EXPECT_EQ(clk.beat(), 0u);
    EXPECT_EQ(clk.now(), 0u);
}

TEST(TwoPhaseClock, PhasesAlternateByBeatParity)
{
    Netlist net;
    TwoPhaseClock clk(net, 1000);
    // A pass gate on each phase records which phase pulsed.
    const NodeId one = net.addNode("one");
    net.markInput(one);
    const NodeId via1 = net.addNode("via1");
    const NodeId via2 = net.addNode("via2");
    net.addPassGate(one, clk.phi1(), via1);
    net.addPassGate(one, clk.phi2(), via2);
    net.setInput(one, H, 0);
    net.settle(0);

    clk.tickBeat(); // beat 0: phi1
    EXPECT_EQ(net.value(via1), H);
    EXPECT_EQ(net.value(via2), LogicValue::X);
    clk.tickBeat(); // beat 1: phi2
    EXPECT_EQ(net.value(via2), H);
    EXPECT_EQ(clk.beat(), 2u);
}

TEST(TwoPhaseClock, PhaseForParity)
{
    Netlist net;
    TwoPhaseClock clk(net);
    EXPECT_EQ(clk.phaseFor(0), clk.phi1());
    EXPECT_EQ(clk.phaseFor(1), clk.phi2());
    EXPECT_EQ(clk.phaseFor(2), clk.phi1());
}

TEST(TwoPhaseClock, TimeAdvancesOneBeatPerTick)
{
    Netlist net;
    TwoPhaseClock clk(net, 250'000);
    clk.run(4);
    EXPECT_EQ(clk.now(), 4u * 250'000u);
    EXPECT_EQ(clk.beat(), 4u);
}

TEST(TwoPhaseClock, ShiftRegisterAdvancesOneStagePerBeat)
{
    // Figure 3-5: a chain of pass transistor + inverter stages on
    // alternating phases; one data bit advances one stage per beat.
    Netlist net;
    TwoPhaseClock clk(net, 1000);
    const NodeId in = net.addNode("in");
    net.markInput(in);
    NodeId stage = in;
    std::vector<NodeId> outs;
    for (int i = 0; i < 4; ++i) {
        stage = buildShiftStage(net, "s" + std::to_string(i), stage,
                                clk.phaseFor(i));
        outs.push_back(stage);
    }

    net.setInput(in, H, 0);
    clk.tickBeat();
    EXPECT_EQ(net.value(outs[0]), L); // one inversion
    net.setInput(in, L, clk.now());
    clk.tickBeat();
    EXPECT_EQ(net.value(outs[1]), H); // two inversions of the H
    clk.tickBeat();
    clk.tickBeat();
    EXPECT_EQ(net.value(outs[3]), H) << "H arrives after 4 beats";
}

TEST(TwoPhaseClock, StallWithinRetentionIsHarmless)
{
    Netlist net;
    TwoPhaseClock clk(net, 1000);
    const NodeId in = net.addNode("in");
    net.markInput(in);
    const NodeId out = buildShiftStage(net, "s", in, clk.phi1());
    net.setInput(in, H, 0);
    clk.tickBeat();
    EXPECT_EQ(net.value(out), L);
    EXPECT_EQ(clk.stall(defaultRetentionPs / 10), 0u);
    EXPECT_EQ(net.value(out), L);
}

TEST(TwoPhaseClock, LongStallDestroysDynamicData)
{
    // Section 3.3.3: dynamic shift registers hold data for about
    // 1 ms; a stopped clock loses the chip's entire state.
    Netlist net;
    TwoPhaseClock clk(net, 1000);
    const NodeId in = net.addNode("in");
    net.markInput(in);
    const NodeId out = buildShiftStage(net, "s", in, clk.phi1());
    net.setInput(in, H, 0);
    clk.tickBeat();
    ASSERT_EQ(net.value(out), L);
    EXPECT_EQ(clk.stall(2 * defaultRetentionPs), 1u);
    EXPECT_EQ(net.value(out), LogicValue::X);
}

TEST(TwoPhaseClock, ContinuousShiftingRefreshes)
{
    // Data is refreshed only by shifting it: many beats with stalls
    // that keep each phi1-to-phi1 gap inside retention never decay.
    // (A phi1-clocked stage refreshes every *other* beat, so each
    // per-beat stall may be at most half the remaining budget.)
    Netlist net;
    TwoPhaseClock clk(net, 1000);
    const NodeId in = net.addNode("in");
    net.markInput(in);
    const NodeId out = buildShiftStage(net, "s", in, clk.phi1());
    for (int i = 0; i < 50; ++i) {
        net.setInput(in, H, clk.now());
        clk.tickBeat();
        EXPECT_EQ(clk.stall(defaultRetentionPs / 3), 0u) << "beat " << i;
    }
    EXPECT_EQ(net.value(out), L);
}

} // namespace
} // namespace spm::gate
