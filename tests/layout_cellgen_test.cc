/** @file Unit tests for layout generation from circuits. */

#include <gtest/gtest.h>

#include "gate/stdcells.hh"
#include "layout/cellgen.hh"
#include "layout/drc.hh"

namespace spm::layout
{
namespace
{

/** Build a standalone positive comparator netlist. */
gate::Netlist
comparatorNet()
{
    gate::Netlist net("cmp");
    const gate::NodeId clk = net.addNode("clk");
    net.markInput(clk);
    gate::ComparatorPorts ports;
    ports.pIn = net.addNode("p_in");
    ports.sIn = net.addNode("s_in");
    ports.dIn = net.addNode("d_in");
    ports.pOut = net.addNode("p_out");
    ports.sOut = net.addNode("s_out");
    ports.dOut = net.addNode("d_out");
    net.markInput(ports.pIn);
    net.markInput(ports.sIn);
    net.markInput(ports.dIn);
    gate::buildComparator(net, "cell", ports, clk, true);
    return net;
}

class DeviceTileTest
    : public ::testing::TestWithParam<gate::DeviceKind>
{
};

TEST_P(DeviceTileTest, TileIsDrcClean)
{
    const MaskLayout tile = deviceTile(GetParam(), "tile");
    const auto violations = checkLayout(tile);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0].toString());
}

TEST_P(DeviceTileTest, TileHasRailsAndPorts)
{
    const MaskLayout tile = deviceTile(GetParam(), "tile");
    EXPECT_GT(tile.areaOn(Layer::Metal), 0);
    EXPECT_GT(tile.areaOn(Layer::Diffusion), 0);
    EXPECT_GT(tile.areaOn(Layer::Poly), 0);
    EXPECT_NO_THROW(tile.port("a"));
    EXPECT_NO_THROW(tile.port("out"));
    EXPECT_EQ(tile.boundingBox().height(), tileHeight);
    EXPECT_EQ(tile.boundingBox().width(), tileWidth(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DeviceTileTest,
    ::testing::Values(gate::DeviceKind::Inverter,
                      gate::DeviceKind::Nand2, gate::DeviceKind::Nor2,
                      gate::DeviceKind::And2, gate::DeviceKind::Or2,
                      gate::DeviceKind::Xor2, gate::DeviceKind::Xnor2,
                      gate::DeviceKind::PassGate),
    [](const auto &info) {
        return gate::Device::kindName(info.param);
    });

TEST(DeviceTile, StaticGatesCarryImplant)
{
    EXPECT_GT(deviceTile(gate::DeviceKind::Inverter, "i")
                  .areaOn(Layer::Implant),
              0);
    EXPECT_EQ(deviceTile(gate::DeviceKind::PassGate, "p")
                  .areaOn(Layer::Implant),
              0)
        << "pass transistors have no pullup";
}

TEST(CellGen, ComparatorLayoutIsDrcClean)
{
    const gate::Netlist net = comparatorNet();
    const MaskLayout cell = generateCellLayout(net, "cmp-layout");
    const auto violations = checkLayout(cell);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations[0].toString());
    EXPECT_GT(cell.cellArea(), 0);
}

TEST(CellGen, LayoutHasPowerAndNetPorts)
{
    const gate::Netlist net = comparatorNet();
    const MaskLayout cell = generateCellLayout(net, "cmp-layout");
    EXPECT_NO_THROW(cell.port("vdd"));
    EXPECT_NO_THROW(cell.port("gnd"));
    EXPECT_NO_THROW(cell.port("p_in.w"));
    EXPECT_NO_THROW(cell.port("d_out.e"));
}

TEST(CellGen, SticksMatchCircuitInventory)
{
    const gate::Netlist net = comparatorNet();
    const StickDiagram sticks = generateCellSticks(net, "cmp-sticks");
    // One enhancement marker per device plus one depletion pullup per
    // static gate (4 of the 7 devices).
    EXPECT_EQ(sticks.transistorCount(), net.deviceCount() + 4);
    EXPECT_FALSE(sticks.nets().empty());
    EXPECT_GT(sticks.wireLength(Layer::Metal), 0);
}

TEST(CellGen, TiledArrayIsDrcCleanAndScales)
{
    const gate::Netlist net = comparatorNet();
    const MaskLayout cell = generateCellLayout(net, "cell");
    const MaskLayout small = tileCellArray(cell, cell, 1, 2, "a12");
    const MaskLayout big = tileCellArray(cell, cell, 2, 4, "a24");
    EXPECT_TRUE(isClean(small));
    EXPECT_TRUE(isClean(big));
    // 4x the cells means roughly 4x the area.
    const double ratio = static_cast<double>(big.cellArea()) /
                         static_cast<double>(small.cellArea());
    EXPECT_NEAR(ratio, 4.0, 1.0);
}

TEST(CellGen, PadRingAddsRequestedPads)
{
    MaskLayout core("core");
    core.addRect(Layer::Metal, Rect{0, 0, 600, 300});
    const MaskLayout die = addPadRing(core, 12, "die");
    EXPECT_TRUE(isClean(die));
    for (int i = 0; i < 12; ++i)
        EXPECT_NO_THROW(die.port("pad" + std::to_string(i)));
    EXPECT_GT(die.cellArea(), core.cellArea());
}

TEST(CellGen, PadLimitedDieGrowsToSeatAllPads)
{
    // A tiny core with many pads: the die becomes pad-limited and
    // grows until the perimeter seats every pad, staying DRC-clean.
    MaskLayout core("tiny");
    core.addRect(Layer::Metal, Rect{0, 0, 10, 10});
    const MaskLayout die = addPadRing(core, 64, "die");
    EXPECT_TRUE(isClean(die));
    for (int i = 0; i < 64; ++i)
        EXPECT_NO_THROW(die.port("pad" + std::to_string(i)));
    const DesignRules &rules = defaultRules();
    // 16 pads per side at (pad + spacing) pitch do not fit around a
    // 10-lambda core without growth.
    EXPECT_GE(die.boundingBox().width(),
              16 * (rules.padSize + rules.padSpacing));
}

TEST(AreaReport, ConvertsToPhysicalUnits)
{
    AreaReport report;
    report.dieArea = 1'000'000; // lambda^2
    // At lambda = 2.5 um: 1e6 * 6.25 um^2 = 6.25 mm^2.
    EXPECT_NEAR(report.dieAreaMm2(2.5), 6.25, 1e-9);
    EXPECT_NE(report.toString().find("6.25"), std::string::npos);
}

} // namespace
} // namespace spm::layout
