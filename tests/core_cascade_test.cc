/** @file Tests for multi-chip cascades (Figure 3-7). */

#include <gtest/gtest.h>

#include "core/behavioral.hh"
#include "core/cascade.hh"
#include "core/reference.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::core
{
namespace
{

TEST(Cascade, FiveChipFigure37)
{
    // "A cascade of k chips with n cells each can match patterns of
    // up to kn characters": five 8-cell chips handle a 40-character
    // pattern that no single chip could.
    CascadeMatcher cascade(5, 8);
    ReferenceMatcher ref;
    WorkloadGen gen(21, 2);
    const auto pat = gen.randomPattern(40, 0.2);
    const auto text = gen.textWithPlants(300, pat, 50);
    EXPECT_EQ(cascade.match(text, pat), ref.match(text, pat));
}

TEST(Cascade, EquivalentToMonolithicChip)
{
    // The cascade's pin-to-pin wiring must be beat-for-beat identical
    // to one long array: same outputs, same beat count.
    WorkloadGen gen(22, 3);
    const auto pat = gen.randomPattern(6, 0.3);
    const auto text = gen.textWithPlants(120, pat, 9);

    CascadeMatcher cascade(3, 2); // 3 chips x 2 cells
    BehavioralMatcher mono(6);
    EXPECT_EQ(cascade.match(text, pat), mono.match(text, pat));
    EXPECT_EQ(cascade.lastBeats(), mono.lastBeats());
}

TEST(Cascade, SingleChipDegenerateCase)
{
    CascadeMatcher cascade(1, 4);
    BehavioralMatcher mono(4);
    const auto text = parseSymbols("ABCABC");
    const auto pat = parseSymbols("BC");
    EXPECT_EQ(cascade.match(text, pat), mono.match(text, pat));
}

TEST(Cascade, PatternSpanningChipBoundary)
{
    // A pattern longer than one chip forces every partial result to
    // cross chip boundaries mid-accumulation.
    CascadeMatcher cascade(2, 2);
    ReferenceMatcher ref;
    const auto text = parseSymbols("AABABABB");
    const auto pat = parseSymbols("ABAB"); // 4 cells across 2 chips
    EXPECT_EQ(cascade.match(text, pat), ref.match(text, pat));
}

TEST(Cascade, BoundaryTransferPreservesTokens)
{
    // Drive a 2x1 cascade manually and watch a pattern token hop
    // between chips with a one-beat pin delay.
    ChipCascade cascade(2, 1);
    cascade.feedPattern(PatToken{3, true});
    cascade.feedControl(CtlToken{true, false, true});
    cascade.feedString(StrToken{});
    cascade.feedResult(ResToken{});
    cascade.step();
    // The token is now in chip 0's single cell.
    EXPECT_TRUE(cascade.chip(0).patternOut().valid);
    EXPECT_EQ(cascade.chip(0).patternOut().sym, 3);
    EXPECT_FALSE(cascade.chip(1).patternOut().valid);

    cascade.feedPattern(PatToken{});
    cascade.step();
    EXPECT_FALSE(cascade.chip(0).patternOut().valid);
    EXPECT_TRUE(cascade.chip(1).patternOut().valid);
    EXPECT_EQ(cascade.chip(1).patternOut().sym, 3);
}

TEST(Cascade, PinBudgetPerChip)
{
    // Pattern/string in+out at char width, control and result pairs,
    // two clocks, power and ground (Section 3.4).
    EXPECT_EQ(ChipCascade::pinsPerChip(2), 4u * 2 + 4 + 2 + 2 + 2);
    EXPECT_EQ(ChipCascade::pinsPerChip(8), 4u * 8 + 4 + 2 + 2 + 2);
}

TEST(Cascade, ParameterValidation)
{
    EXPECT_THROW(ChipCascade(0, 4), std::logic_error);
    EXPECT_THROW(ChipCascade(4, 0), std::logic_error);
}

/** Property sweep over cascade geometries. */
class CascadeProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CascadeProperty, MatchesReferenceOnRandomWorkloads)
{
    const std::uint64_t seed = GetParam();
    WorkloadGen gen(seed * 31 + 5, 2);
    const std::size_t chips = 1 + seed % 4;
    const std::size_t cells = 1 + gen.rng().nextBelow(4);
    const std::size_t max_pat = chips * cells;
    const std::size_t len = 1 + gen.rng().nextBelow(max_pat);
    const auto pat = gen.randomPattern(len, 0.25);
    const auto text =
        gen.textWithPlants(len + 60, pat, len + 2);

    CascadeMatcher cascade(chips, cells);
    ReferenceMatcher ref;
    EXPECT_EQ(cascade.match(text, pat), ref.match(text, pat))
        << chips << " chips x " << cells << " cells, pattern " << len;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, CascadeProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

} // namespace
} // namespace spm::core
