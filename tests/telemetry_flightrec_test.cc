/**
 * @file
 * Flight recorder tests: the bounded event ring, trip dumps and their
 * sinks, and the frozen case-ID format — telem::literalCaseId must
 * stay byte-identical to conformance::encodeLiteral so every dump
 * line replays with `conformance_fuzz --replay`.
 */

#include <gtest/gtest.h>

#include <vector>

#include "conformance/case.hh"
#include "telemetry/flightrec.hh"

namespace spm::telem
{
namespace
{

FlightEvent
chunkEvent(std::uint64_t req, std::uint64_t offset)
{
    FlightEvent ev;
    ev.kind = FlightKind::ChunkCommit;
    ev.beat = offset * 3;
    ev.shard = 2;
    ev.requestId = req;
    ev.offset = offset;
    return ev;
}

TEST(FlightRecorder, RingIsBoundedOldestFirst)
{
    FlightRecorder rec(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        rec.record(chunkEvent(1, i));
    const std::vector<FlightEvent> events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(rec.recordedTotal(), 10u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].offset, 6 + i);
        EXPECT_EQ(events[i].seq, 6 + i); // sequence numbers persist
    }
}

TEST(FlightRecorder, RingWraparoundIsExactAtBoundaries)
{
    FlightRecorder rec(4);
    // Exactly full: nothing evicted yet.
    for (std::uint64_t i = 0; i < 4; ++i)
        rec.record(chunkEvent(1, i));
    ASSERT_EQ(rec.events().size(), 4u);
    EXPECT_EQ(rec.events().front().offset, 0u);

    // One past capacity: exactly the oldest event falls out.
    rec.record(chunkEvent(1, 4));
    std::vector<FlightEvent> events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().offset, 1u);
    EXPECT_EQ(events.back().offset, 4u);

    // Several complete wraps: order and sequence numbers stay exact.
    for (std::uint64_t i = 5; i < 21; ++i)
        rec.record(chunkEvent(1, i));
    events = rec.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(rec.recordedTotal(), 21u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].offset, 17 + i);
        EXPECT_EQ(events[i].seq, 17 + i);
    }

    // A trip after wrapping reports only the retained history.
    rec.setDumpSink([](const std::string &) {});
    const std::string dump = rec.trip("wrap check", chunkEvent(1, 21));
    EXPECT_NE(dump.find("(4 prior"), std::string::npos);
}

TEST(FlightRecorder, TripDumpCarriesHistoryAndTrigger)
{
    FlightRecorder rec(8);
    std::vector<std::string> sunk;
    rec.setDumpSink([&sunk](const std::string &d) { sunk.push_back(d); });

    rec.record(chunkEvent(7, 0));
    rec.record(chunkEvent(7, 16));

    FlightEvent trip;
    trip.kind = FlightKind::WatchdogTrip;
    trip.beat = 99;
    trip.shard = 2;
    trip.requestId = 7;
    trip.code = "deadline_exceeded";
    trip.caseId = "l1:2:1.2:0.1.2.3";
    const std::string dump = rec.trip("watchdog trip", trip);

    EXPECT_EQ(rec.tripCount(), 1u);
    EXPECT_EQ(rec.lastDump(), dump);
    ASSERT_EQ(sunk.size(), 1u);
    EXPECT_EQ(sunk[0], dump);

    // Header names the reason and counts the prior events.
    EXPECT_NE(dump.find("=== flight dump: watchdog trip (2 prior"),
              std::string::npos);
    // History renders oldest first, then the trigger, marked.
    EXPECT_NE(dump.find("chunk_commit"), std::string::npos);
    EXPECT_NE(dump.find("watchdog_trip"), std::string::npos);
    EXPECT_NE(dump.find("<-- trigger"), std::string::npos);
    // Structured fields all present: beat, shard, taxonomy code, and
    // the replayable case ID.
    EXPECT_NE(dump.find("beat=99"), std::string::npos);
    EXPECT_NE(dump.find("shard=2"), std::string::npos);
    EXPECT_NE(dump.find("code=deadline_exceeded"), std::string::npos);
    EXPECT_NE(dump.find("case=l1:2:1.2:0.1.2.3"), std::string::npos);
}

TEST(FlightRecorder, ClearForgetsHistoryKeepsTotals)
{
    FlightRecorder rec(8);
    rec.setDumpSink([](const std::string &) {});
    rec.record(chunkEvent(1, 0));
    rec.trip("test", chunkEvent(1, 1));
    rec.clear();
    EXPECT_TRUE(rec.events().empty());
    EXPECT_TRUE(rec.lastDump().empty());
    EXPECT_EQ(rec.tripCount(), 1u);
    EXPECT_EQ(rec.recordedTotal(), 2u);
}

TEST(FlightRecorder, KindNamesAreStableTokens)
{
    EXPECT_STREQ(flightKindName(FlightKind::ChunkCommit), "chunk_commit");
    EXPECT_STREQ(flightKindName(FlightKind::WatchdogTrip),
                 "watchdog_trip");
    EXPECT_STREQ(flightKindName(FlightKind::CrossCheckMismatch),
                 "crosscheck_mismatch");
    EXPECT_STREQ(flightKindName(FlightKind::LadderTransition),
                 "ladder_transition");
    EXPECT_STREQ(flightKindName(FlightKind::ConformanceFailure),
                 "conformance_failure");
    EXPECT_STREQ(flightKindName(FlightKind::Note), "note");
}

TEST(LiteralCaseId, MatchesConformanceEncodingExactly)
{
    struct Shape
    {
        BitWidth bits;
        std::vector<Symbol> pattern;
        std::vector<Symbol> text;
    };
    const std::vector<Shape> shapes = {
        {2, {1, 2, 3}, {0, 1, 2, 3, 1, 2, 3}},
        {1, {0, wildcardSymbol, 1}, {1, 0, 1, 0}},
        {3, {7, wildcardSymbol}, {}},
        {2, {}, {1, 2}},
        {4, {15, 0, wildcardSymbol, 9}, {15, 0, 3, 9, 15}},
    };
    for (const Shape &s : shapes) {
        conformance::Case c;
        c.bits = s.bits;
        c.pattern = s.pattern;
        c.text = s.text;
        EXPECT_EQ(literalCaseId(s.bits, s.pattern, s.text),
                  conformance::encodeLiteral(c))
            << "bits=" << int(s.bits);
    }
}

TEST(LiteralCaseId, RoundTripsThroughDecodeCase)
{
    const std::vector<Symbol> pattern = {1, wildcardSymbol, 3};
    const std::vector<Symbol> text = {0, 1, 2, 3, 1, 0, 3};
    const std::string id = literalCaseId(2, pattern, text);
    const std::optional<conformance::Case> c =
        conformance::decodeCase(id);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->bits, 2);
    EXPECT_EQ(c->pattern, pattern);
    EXPECT_EQ(c->text, text);
}

TEST(FlightRecorder, GlobalIsUsable)
{
    const std::uint64_t before = FlightRecorder::global().recordedTotal();
    FlightEvent ev;
    ev.kind = FlightKind::Note;
    ev.note = "flightrec test marker";
    FlightRecorder::global().record(ev);
    EXPECT_EQ(FlightRecorder::global().recordedTotal(), before + 1);
}

} // namespace
} // namespace spm::telem
