/**
 * @file
 * Tests for SCOAP testability scoring: the textbook controllability
 * and observability values on hand-built gates, saturation on
 * unobservable logic, pass-transistor clock costs, and the difficulty
 * ordering the fault grader relies on.
 */

#include <gtest/gtest.h>

#include "core/gatechip.hh"
#include "fault/scoap.hh"
#include "gate/netlist.hh"

namespace spm::fault
{
namespace
{

using gate::DeviceKind;
using gate::Netlist;
using gate::NodeId;

TEST(Scoap, PrimaryInputsCostOne)
{
    Netlist net("inputs");
    const NodeId a = net.addNode("a");
    net.markInput(a);
    const ScoapResult s = computeScoap(net, {a});
    EXPECT_EQ(s.cc0[a], 1u);
    EXPECT_EQ(s.cc1[a], 1u);
    EXPECT_EQ(s.co[a], 0u);
}

TEST(Scoap, NandTextbookValues)
{
    Netlist net("nand");
    const NodeId a = net.addNode("a");
    const NodeId b = net.addNode("b");
    net.markInput(a);
    net.markInput(b);
    const NodeId out = net.addNode("out");
    net.addGate(DeviceKind::Nand2, a, b, out);

    const ScoapResult s = computeScoap(net, {out});
    // CC1(out) = min(CC0(a), CC0(b)) + 1; CC0(out) = CC1 both + 1.
    EXPECT_EQ(s.cc1[out], 2u);
    EXPECT_EQ(s.cc0[out], 3u);
    // CO(a) = CO(out) + CC1(b) + 1: hold the other input at its
    // non-controlling value.
    EXPECT_EQ(s.co[out], 0u);
    EXPECT_EQ(s.co[a], 2u);
    EXPECT_EQ(s.co[b], 2u);
}

TEST(Scoap, XorHasNoCheapSide)
{
    Netlist net("xor");
    const NodeId a = net.addNode("a");
    const NodeId b = net.addNode("b");
    net.markInput(a);
    net.markInput(b);
    const NodeId out = net.addNode("out");
    net.addGate(DeviceKind::Xor2, a, b, out);

    const ScoapResult s = computeScoap(net, {out});
    // Both polarities need both inputs set: min over the two odd /
    // even assignments, plus the gate's own +1.
    EXPECT_EQ(s.cc1[out], 3u);
    EXPECT_EQ(s.cc0[out], 3u);
    // Observing an input costs controlling the other to either value.
    EXPECT_EQ(s.co[a], 2u);
}

TEST(Scoap, InverterChainScoresGrowWithDepth)
{
    Netlist net("chain");
    const NodeId in = net.addNode("in");
    net.markInput(in);
    NodeId prev = in;
    std::vector<NodeId> stages{in};
    for (int i = 0; i < 4; ++i) {
        const NodeId out = net.addNode("n" + std::to_string(i));
        net.addInverter(prev, out);
        stages.push_back(out);
        prev = out;
    }

    const ScoapResult s = computeScoap(net, {prev});
    for (std::size_t i = 0; i + 1 < stages.size(); ++i) {
        // Controllability grows toward the output, observability
        // toward the input; their sum (fault difficulty) is flat on a
        // fanout-free chain -- every stage is equally testable, which
        // mirrors the equivalence collapse of the whole chain.
        EXPECT_LT(s.cc0[stages[i]], s.cc0[stages[i + 1]]);
        EXPECT_GT(s.co[stages[i]], s.co[stages[i + 1]]);
        EXPECT_EQ(s.difficulty({stages[i], false}),
                  s.difficulty({stages[i + 1], (i % 2) == 0}));
    }
}

TEST(Scoap, UnobservedLogicSaturates)
{
    Netlist net("deadend");
    const NodeId a = net.addNode("a");
    net.markInput(a);
    const NodeId out = net.addNode("out");
    net.addInverter(a, out);

    // Nothing is observed: every CO saturates and so does difficulty.
    const ScoapResult s = computeScoap(net, {});
    EXPECT_GE(s.co[out], scoapUnreachable);
    EXPECT_GE(s.difficulty({out, false}), scoapUnreachable);
    // Controllability is still finite.
    EXPECT_EQ(s.cc0[out], 2u);
}

TEST(Scoap, PassGateChargesTheClock)
{
    Netlist net("dynamic");
    const NodeId in = net.addNode("in");
    const NodeId ctl = net.addNode("ctl");
    net.markInput(in);
    net.markInput(ctl);
    const NodeId out = net.addNode("out");
    net.addPassGate(in, ctl, out);

    const ScoapResult s = computeScoap(net, {out});
    // CC(out) = CC(in) + CC1(ctl) + 1: data moves only while the
    // clock is high.
    EXPECT_EQ(s.cc0[out], 3u);
    EXPECT_EQ(s.cc1[out], 3u);
    // Observing the input also needs the clock high.
    EXPECT_EQ(s.co[in], 2u);
}

TEST(Scoap, ChipScoresAreFiniteAndRanked)
{
    core::GateChip chip(4, 2);
    const ScoapResult s =
        computeScoap(chip.netlist(), {chip.resultNode()});
    ASSERT_EQ(s.cc0.size(), chip.netlist().nodeCount());

    // The recirculating shift registers close cycles; the fixpoint
    // must still make every node controllable.
    for (gate::NodeId n = 0; n < chip.netlist().nodeCount(); ++n) {
        EXPECT_LT(s.cc0[n], scoapUnreachable)
            << chip.netlist().nodeName(n);
        EXPECT_LT(s.cc1[n], scoapUnreachable)
            << chip.netlist().nodeName(n);
    }
    // The observed result node is the easiest place to observe.
    EXPECT_EQ(s.co[chip.resultNode()], 0u);
}

} // namespace
} // namespace spm::fault
