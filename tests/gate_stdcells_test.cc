/** @file Unit tests for the comparator and accumulator standard cells. */

#include <gtest/gtest.h>

#include "gate/netlist.hh"
#include "gate/stdcells.hh"

namespace spm::gate
{
namespace
{

constexpr LogicValue L = LogicValue::L;
constexpr LogicValue H = LogicValue::H;

/** Harness around a single comparator cell. */
class ComparatorHarness
{
  public:
    explicit ComparatorHarness(bool positive) : net("harness")
    {
        clk = net.addNode("clk");
        net.markInput(clk);
        ports.pIn = net.addNode("p_in");
        ports.sIn = net.addNode("s_in");
        ports.dIn = net.addNode("d_in");
        ports.pOut = net.addNode("p_out");
        ports.sOut = net.addNode("s_out");
        ports.dOut = net.addNode("d_out");
        net.markInput(ports.pIn);
        net.markInput(ports.sIn);
        net.markInput(ports.dIn);
        buildComparator(net, "cell", ports, clk, positive);
        net.setInput(clk, L, 0);
        net.settle(0);
    }

    /** Apply inputs and pulse the clock once. */
    void
    latch(bool p, bool s, bool d)
    {
        ++now;
        net.setInput(ports.pIn, p ? H : L, now);
        net.setInput(ports.sIn, s ? H : L, now);
        net.setInput(ports.dIn, d ? H : L, now);
        net.setInput(clk, H, now);
        net.settle(now);
        net.setInput(clk, L, ++now);
        net.settle(now);
    }

    bool pOut() const { return net.value(ports.pOut) == H; }
    bool sOut() const { return net.value(ports.sOut) == H; }
    bool dOut() const { return net.value(ports.dOut) == H; }

    Netlist net;
    NodeId clk;
    ComparatorPorts ports;
    Picoseconds now = 0;
};

TEST(Comparator, PositiveTwinTruthTable)
{
    // Positive twin: positive inputs, inverted outputs:
    //   pOut = NOT p, sOut = NOT s, dOut = NOT (d AND (p == s)).
    for (int p = 0; p <= 1; ++p) {
        for (int s = 0; s <= 1; ++s) {
            for (int d = 0; d <= 1; ++d) {
                ComparatorHarness h(true);
                h.latch(p, s, d);
                EXPECT_EQ(h.pOut(), !p);
                EXPECT_EQ(h.sOut(), !s);
                EXPECT_EQ(h.dOut(), !(d && p == s))
                    << "p=" << p << " s=" << s << " d=" << d;
            }
        }
    }
}

TEST(Comparator, NegativeTwinTruthTable)
{
    // Inverted twin: inverted inputs, positive outputs. Feeding the
    // complements must recover the positive function.
    for (int p = 0; p <= 1; ++p) {
        for (int s = 0; s <= 1; ++s) {
            for (int d = 0; d <= 1; ++d) {
                ComparatorHarness h(false);
                h.latch(!p, !s, !d); // inverted senses
                EXPECT_EQ(h.pOut(), p);
                EXPECT_EQ(h.sOut(), s);
                EXPECT_EQ(h.dOut(), d && p == s)
                    << "p=" << p << " s=" << s << " d=" << d;
            }
        }
    }
}

TEST(Comparator, HoldsOutputsWhileClockLow)
{
    ComparatorHarness h(true);
    h.latch(true, true, true);
    ASSERT_FALSE(h.dOut()); // match with d: dOut = NOT true
    // Change inputs without clocking: outputs must not move.
    h.net.setInput(h.ports.pIn, L, h.now + 1);
    h.net.setInput(h.ports.sIn, H, h.now + 1);
    h.net.settle(h.now + 1);
    EXPECT_FALSE(h.dOut());
    EXPECT_FALSE(h.pOut());
}

TEST(Comparator, DeviceInventoryMatchesFigure36)
{
    // Three pass transistors, two shift register inverters, the
    // equality gate and the d gate.
    ComparatorHarness h(true);
    EXPECT_EQ(h.net.countKind(DeviceKind::PassGate), 3u);
    EXPECT_EQ(h.net.countKind(DeviceKind::Inverter), 2u);
    EXPECT_EQ(h.net.countKind(DeviceKind::Xnor2), 1u);
    EXPECT_EQ(h.net.countKind(DeviceKind::Nand2), 1u);
    EXPECT_EQ(h.net.deviceCount(), 7u);
}

TEST(ShiftStage, InvertsAndStores)
{
    Netlist net;
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    net.markInput(in);
    net.markInput(clk);
    const NodeId out = buildShiftStage(net, "st", in, clk);
    net.setInput(clk, L, 0);

    net.setInput(in, H, 1);
    net.setInput(clk, H, 1);
    net.settle(1);
    net.setInput(clk, L, 2);
    net.settle(2);
    EXPECT_EQ(net.value(out), L) << "stage inverts";

    net.setInput(in, L, 3); // no clock: stored value holds
    net.settle(3);
    EXPECT_EQ(net.value(out), L);
}

/** Harness around one accumulator cell with a two-phase clock. */
class AccumulatorHarness
{
  public:
    explicit AccumulatorHarness(bool positive) : net("harness")
    {
        clkA = net.addNode("clkA");
        clkB = net.addNode("clkB");
        net.markInput(clkA);
        net.markInput(clkB);
        ports.lambdaIn = net.addNode("l_in");
        ports.xIn = net.addNode("x_in");
        ports.dIn = net.addNode("d_in");
        ports.rIn = net.addNode("r_in");
        ports.lambdaOut = net.addNode("l_out");
        ports.xOut = net.addNode("x_out");
        ports.rOut = net.addNode("r_out");
        net.markInput(ports.lambdaIn);
        net.markInput(ports.xIn);
        net.markInput(ports.dIn);
        net.markInput(ports.rIn);
        buildAccumulator(net, "cell", ports, clkA, clkB, positive);
        net.setInput(clkA, L, 0);
        net.setInput(clkB, L, 0);
        net.settle(0);
        pos = positive;
        // The dynamic t loop wakes up as undefined charge; one lambda
        // beat defines it (t <- TRUE), just as the chip needs a
        // priming recirculation after power-up.
        beat(true, false, false, false);
    }

    /**
     * One active beat (inputs latched on clkA) followed by one idle
     * beat (t updated on clkB), in positive logic.
     */
    void
    beat(bool lambda, bool x, bool d, bool r)
    {
        auto lv = [this](bool v) { return v == pos ? H : L; };
        ++now;
        net.setInput(ports.lambdaIn, lv(lambda), now);
        net.setInput(ports.xIn, lv(x), now);
        net.setInput(ports.dIn, lv(d), now);
        net.setInput(ports.rIn, lv(r), now);
        net.setInput(clkA, H, now);
        net.settle(now);
        net.setInput(clkA, L, ++now);
        net.settle(now);
        net.setInput(clkB, H, ++now);
        net.settle(now);
        net.setInput(clkB, L, ++now);
        net.settle(now);
    }

    bool
    rOut() const
    {
        const bool raw = net.value(ports.rOut) == H;
        return pos ? !raw : raw; // positive twin inverts outputs
    }

    Netlist net;
    NodeId clkA, clkB;
    AccumulatorPorts ports;
    Picoseconds now = 0;
    bool pos;
};

class AccumulatorTwinTest : public ::testing::TestWithParam<bool>
{
};

TEST_P(AccumulatorTwinTest, MatchRunEmitsAccumulatedResult)
{
    AccumulatorHarness h(GetParam());
    // Pattern of length 3, all comparisons match: lambda on the
    // third beat must output TRUE.
    h.beat(false, false, true, false);
    h.beat(false, false, true, false);
    h.beat(true, false, true, false);
    EXPECT_TRUE(h.rOut());
}

TEST_P(AccumulatorTwinTest, SingleMismatchKillsResult)
{
    AccumulatorHarness h(GetParam());
    h.beat(false, false, true, false);
    h.beat(false, false, false, false); // mismatch mid-pattern
    h.beat(true, false, true, false);
    EXPECT_FALSE(h.rOut());
}

TEST_P(AccumulatorTwinTest, WildcardOverridesMismatch)
{
    AccumulatorHarness h(GetParam());
    h.beat(false, false, true, false);
    h.beat(false, true, false, false); // mismatch but x set
    h.beat(true, false, true, false);
    EXPECT_TRUE(h.rOut());
}

TEST_P(AccumulatorTwinTest, LambdaResetsForNextSubstring)
{
    AccumulatorHarness h(GetParam());
    // A failed window must not poison the next one.
    h.beat(false, false, false, false);
    h.beat(true, false, true, false);
    EXPECT_FALSE(h.rOut());
    h.beat(false, false, true, false);
    h.beat(true, false, true, false);
    EXPECT_TRUE(h.rOut());
}

TEST_P(AccumulatorTwinTest, PassesResultStreamBetweenLambdas)
{
    AccumulatorHarness h(GetParam());
    h.beat(false, false, true, true); // non-lambda: rOut <- rIn
    EXPECT_TRUE(h.rOut());
    h.beat(false, false, true, false);
    EXPECT_FALSE(h.rOut());
}

TEST_P(AccumulatorTwinTest, ForwardsControlBits)
{
    AccumulatorHarness h(GetParam());
    h.beat(true, true, false, false);
    // Outputs are positive for the negative twin, inverted for the
    // positive twin.
    const bool raw_l = h.net.value(h.ports.lambdaOut) == H;
    const bool raw_x = h.net.value(h.ports.xOut) == H;
    EXPECT_EQ(h.pos ? !raw_l : raw_l, true);
    EXPECT_EQ(h.pos ? !raw_x : raw_x, true);
}

INSTANTIATE_TEST_SUITE_P(BothTwins, AccumulatorTwinTest,
                         ::testing::Values(true, false),
                         [](const auto &info) {
                             return info.param ? "positive" : "negative";
                         });

} // namespace
} // namespace spm::gate
