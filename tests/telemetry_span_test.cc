/**
 * @file
 * Span tracing tests: RAII recording, category filtering, per-thread
 * ring wraparound, multi-thread interleave under the collect-at-
 * quiescence contract, and the Chrome trace-event JSON export checked
 * against the schema validator trace_view --check uses.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "telemetry/jsonlite.hh"
#include "telemetry/span.hh"
#include "telemetry/telem.hh"

namespace spm::telem
{
namespace
{

TEST(ScopedSpan, RecordsCompleteEventWithBeatAndArg)
{
    TraceBuffer buf(64);
    buf.setEnabled(true);
    {
        ScopedSpan span(buf, "test.work", cat::service, 7, 99);
        span.setBeat(123);
    }
    const std::vector<SpanEvent> events = buf.collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "test.work");
    EXPECT_EQ(events[0].phase, SpanEvent::Phase::Complete);
    EXPECT_EQ(events[0].beat, 123u);
    EXPECT_EQ(events[0].arg, 99u);
    EXPECT_EQ(events[0].category, cat::service);
}

TEST(ScopedSpan, DisabledBufferRecordsNothing)
{
    TraceBuffer buf(64);
    ASSERT_FALSE(buf.enabled());
    {
        ScopedSpan span(buf, "test.work", cat::service);
    }
    instant(buf, "test.instant", cat::service);
    EXPECT_TRUE(buf.collect().empty());
    EXPECT_EQ(buf.recordedTotal(), 0u);
}

TEST(ScopedSpan, CategoryMaskFilters)
{
    TraceBuffer buf(64);
    buf.setEnabled(true);
    buf.setCategoryMask(cat::service);
    {
        ScopedSpan in(buf, "kept", cat::service);
        ScopedSpan out(buf, "filtered", cat::gate);
    }
    const auto events = buf.collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "kept");

    // Liveness is captured at construction: a span started while its
    // category was filtered stays dead even if the mask opens later.
    {
        ScopedSpan span(buf, "still.dead", cat::gate);
        buf.setCategoryMask(cat::all);
    }
    EXPECT_EQ(buf.collect().size(), 1u);
}

TEST(Instant, RecordsInstantPhase)
{
    TraceBuffer buf(64);
    buf.setEnabled(true);
    instant(buf, "trip", cat::service, 42, 3);
    const auto events = buf.collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, SpanEvent::Phase::Instant);
    EXPECT_EQ(events[0].beat, 42u);
}

TEST(TraceBuffer, RingWrapsKeepingMostRecent)
{
    TraceBuffer buf(8);
    buf.setEnabled(true);
    for (std::uint64_t i = 0; i < 20; ++i)
        instant(buf, "tick", cat::engine, i, i);
    const auto events = buf.collect();
    ASSERT_EQ(events.size(), buf.ringCapacity());
    EXPECT_EQ(buf.recordedTotal(), 20u);
    EXPECT_EQ(buf.droppedTotal(), 20u - buf.ringCapacity());
    // The survivors are the newest events, in order.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].arg, 20 - buf.ringCapacity() + i);
}

TEST(TraceBuffer, MultiThreadInterleaveCollectsAll)
{
    TraceBuffer buf(1024);
    buf.setEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kEach = 100;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&buf] {
            for (int i = 0; i < kEach; ++i) {
                ScopedSpan span(buf, "worker", cat::sharded, 0,
                                static_cast<std::uint64_t>(i));
            }
        });
    for (auto &t : ts)
        t.join(); // the happens-before edge collect() requires

    const auto events = buf.collect();
    EXPECT_EQ(events.size(),
              static_cast<std::size_t>(kThreads) * kEach);
    // Dense per-thread tids, all within range.
    for (const SpanEvent &e : events)
        EXPECT_LT(e.tid, static_cast<std::uint32_t>(kThreads) + 1);
    // Sorted by start time.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].startUs, events[i].startUs);
}

TEST(TraceBuffer, ChromeExportPassesSchemaCheck)
{
    TraceBuffer buf(64);
    buf.setEnabled(true);
    {
        ScopedSpan span(buf, "serve", cat::service, 10, 1);
    }
    instant(buf, "trip", cat::service, 11, 2);
    const std::string json = buf.exportChromeJson("unit test");
    EXPECT_EQ(validateChromeTrace(json), "");

    // Spot-check the fields Perfetto needs.
    const std::optional<JsonValue> doc = jsonParse(json);
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isArray());
    ASSERT_GE(doc->arrayItems().size(), 3u); // metadata + X + I
    bool saw_complete = false;
    bool saw_instant = false;
    for (const JsonValue &ev : doc->arrayItems()) {
        const JsonValue *ph = ev.member("ph");
        ASSERT_NE(ph, nullptr);
        EXPECT_NE(ev.member("ts"), nullptr);
        EXPECT_NE(ev.member("pid"), nullptr);
        EXPECT_NE(ev.member("tid"), nullptr);
        EXPECT_NE(ev.member("name"), nullptr);
        if (ph->asString() == "X") {
            saw_complete = true;
            EXPECT_NE(ev.member("dur"), nullptr);
            ASSERT_NE(ev.member("args"), nullptr);
            EXPECT_NE(ev.member("args")->member("beat"), nullptr);
        }
        if (ph->asString() == "I")
            saw_instant = true;
    }
    EXPECT_TRUE(saw_complete);
    EXPECT_TRUE(saw_instant);
}

TEST(TraceBuffer, ValidatorRejectsBrokenTraces)
{
    EXPECT_NE(validateChromeTrace(""), "");
    EXPECT_NE(validateChromeTrace("{}"), "");
    EXPECT_NE(validateChromeTrace("[]"), "");
    EXPECT_NE(validateChromeTrace("[{\"ph\":\"X\"}]"), "");
    // An 'X' event without dur is malformed.
    EXPECT_NE(validateChromeTrace(
                  "[{\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0,"
                  "\"name\":\"x\"}]"),
              "");
    EXPECT_EQ(validateChromeTrace(
                  "[{\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":1,"
                  "\"tid\":0,\"name\":\"x\"}]"),
              "");
}

TEST(TraceBuffer, ClearDropsEventsAndTotals)
{
    TraceBuffer buf(64);
    buf.setEnabled(true);
    instant(buf, "a", cat::engine);
    buf.clear();
    EXPECT_TRUE(buf.collect().empty());
    EXPECT_EQ(buf.recordedTotal(), 0u);
    instant(buf, "b", cat::engine);
    const auto events = buf.collect();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "b");
}

TEST(Categories, NamesAndMaskRoundTrip)
{
    EXPECT_EQ(cat::maskOf("service,sharded"),
              cat::service | cat::sharded);
    EXPECT_EQ(cat::names(cat::service | cat::sharded),
              "service,sharded");
    EXPECT_THROW(cat::maskOf("nonsense"), std::logic_error);
}

#ifdef SPM_TELEM_OFF
TEST(TelemOff, MacrosCompileToNothing)
{
    TraceBuffer &buf = TraceBuffer::global();
    buf.setEnabled(true);
    const std::uint64_t before = buf.recordedTotal();
    {
        SPM_TSPAN("off.span", cat::service, 1, 2);
        SPM_TSPAN_NAMED(named, "off.named", cat::service, 1, 2);
        named.setBeat(3); // NullSpan keeps call sites compiling
        named.setArg(4);
        SPM_TINSTANT("off.instant", cat::service, 1, 2);
    }
    EXPECT_EQ(buf.recordedTotal(), before);
    buf.setEnabled(false);
}
#endif

} // namespace
} // namespace spm::telem
