/**
 * @file
 * Property tests for src/multipattern: the Aho-Corasick baseline and
 * the bit-sliced fused-plane realization against the naive per-pattern
 * reference on randomized dictionaries, plane-dedup equivalence, and
 * bit-identical chunked-vs-one-shot feeding under randomized splits.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "multipattern/acmatch.hh"
#include "multipattern/dict.hh"
#include "multipattern/planes.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace spm::multipattern
{
namespace
{

std::vector<Symbol>
randomText(Rng &rng, std::size_t n, BitWidth bits)
{
    std::vector<Symbol> text(n);
    for (auto &c : text)
        c = static_cast<Symbol>(rng.nextBelow(std::uint64_t(1) << bits));
    return text;
}

/**
 * Random dictionary biased toward shared structure: members are drawn
 * as fresh strings, prefixes/suffixes of earlier members, or
 * substrings of the text (guaranteed hits), so the suffix trie and
 * the failure links both get exercised with overlap.
 */
DictPatterns
randomDict(Rng &rng, const std::vector<Symbol> &text, std::size_t p,
           std::size_t max_len, BitWidth bits, unsigned wildcard_pct)
{
    const std::uint64_t sigma = std::uint64_t(1) << bits;
    DictPatterns dict;
    dict.reserve(p);
    for (std::size_t i = 0; i < p; ++i) {
        std::vector<Symbol> member;
        const std::size_t kind = i == 0 ? 0 : rng.nextBelow(4);
        if (kind == 1 || kind == 2) {
            // Prefix or suffix of an earlier member.
            const auto &base = dict[rng.nextBelow(dict.size())];
            if (!base.empty()) {
                const std::size_t len = 1 + rng.nextBelow(base.size());
                member.assign(kind == 1
                                  ? base.begin()
                                  : base.end() -
                                        static_cast<std::ptrdiff_t>(len),
                              kind == 1 ? base.begin() +
                                              static_cast<std::ptrdiff_t>(len)
                                        : base.end());
            }
        } else if (kind == 3 && !text.empty()) {
            // Substring of the text: a guaranteed hit.
            const std::size_t len =
                1 + rng.nextBelow(std::min<std::size_t>(max_len, text.size()));
            const std::size_t at = rng.nextBelow(text.size() - len + 1);
            member.assign(text.begin() + static_cast<std::ptrdiff_t>(at),
                          text.begin() + static_cast<std::ptrdiff_t>(at + len));
        }
        if (member.empty()) {
            const std::size_t len = 1 + rng.nextBelow(max_len);
            member.resize(len);
            for (auto &c : member)
                c = static_cast<Symbol>(rng.nextBelow(sigma));
        }
        for (auto &c : member)
            if (rng.nextBelow(100) < wildcard_pct)
                c = wildcardSymbol;
        dict.push_back(std::move(member));
    }
    return dict;
}

TEST(AhoCorasick, MatchesNaiveOnRandomLiteralDictionaries)
{
    Rng rng(0x19A0u);
    NaiveDictMatcher naive;
    AhoCorasickMatcher ac;
    for (int round = 0; round < 60; ++round) {
        const BitWidth bits = round % 3 == 0 ? 2 : 8;
        const std::size_t n = 1 + rng.nextBelow(300);
        const std::size_t p = 1 + rng.nextBelow(20);
        const auto text = randomText(rng, n, bits);
        const auto dict = randomDict(rng, text, p, 12, bits, 0);
        ASSERT_EQ(ac.matchAll(text, dict), naive.matchAll(text, dict))
            << "round " << round;
    }
}

TEST(AhoCorasick, RejectsWildcards)
{
    DictPatterns dict = {{Symbol(1), wildcardSymbol}};
    EXPECT_THROW(AhoCorasickAutomaton{dict}, std::invalid_argument);
}

TEST(AhoCorasick, HandlesDuplicateAndNestedMembers)
{
    // "b" is a suffix of "ab"; duplicates must both report; the empty
    // member matches nowhere.
    const DictPatterns dict = {{1, 2}, {2}, {1, 2}, {}, {2, 1, 2}};
    const std::vector<Symbol> text = {1, 2, 1, 2, 2};
    NaiveDictMatcher naive;
    AhoCorasickMatcher ac;
    const DictHits got = ac.matchAll(text, dict);
    EXPECT_EQ(got, naive.matchAll(text, dict));
    EXPECT_EQ(got.bits[0], got.bits[2]);
    EXPECT_EQ(got.bits[3], std::vector<bool>(text.size(), false));
}

TEST(AhoCorasick, ContiguousStorageIsCompact)
{
    const DictPatterns dict = {{1, 2, 3}, {1, 2, 4}, {2, 3}};
    AhoCorasickAutomaton automaton(dict);
    // Shared prefixes share trie states: root + {1,12,123,124,2,23}.
    EXPECT_EQ(automaton.stateCount(), 7u);
    EXPECT_EQ(automaton.edgeCount(), 6u);
    EXPECT_EQ(automaton.patternCount(), 3u);
}

TEST(BitSlicedDict, MatchesNaiveWithWildcards)
{
    Rng rng(0x19A1u);
    NaiveDictMatcher naive;
    BitSlicedDictMatcher planes;
    for (int round = 0; round < 60; ++round) {
        const BitWidth bits = round % 4 == 0 ? 2 : (round % 4 == 1 ? 5 : 8);
        const std::size_t n = 1 + rng.nextBelow(300);
        const std::size_t p = 1 + rng.nextBelow(24);
        const unsigned wc = round % 2 == 0 ? 0 : 25;
        const auto text = randomText(rng, n, bits);
        const auto dict = randomDict(rng, text, p, 12, bits, wc);
        ASSERT_EQ(planes.matchAll(text, dict), naive.matchAll(text, dict))
            << "round " << round;
    }
}

TEST(BitSlicedDict, WordBoundaryStraddles)
{
    // Plant a member so matches end exactly at packed-word boundaries
    // (positions 63, 64, 127, 128): the shifted-plane carry path.
    std::vector<Symbol> text(200, Symbol(0));
    const std::vector<Symbol> member = {1, 2, 3, 4, 5};
    for (std::size_t end : {63u, 64u, 127u, 128u, 199u})
        for (std::size_t j = 0; j < member.size(); ++j)
            text[end - member.size() + 1 + j] = member[j];
    const DictPatterns dict = {member, {2, 3}, {5}};
    NaiveDictMatcher naive;
    BitSlicedDictMatcher planes;
    EXPECT_EQ(planes.matchAll(text, dict), naive.matchAll(text, dict));
}

TEST(BitSlicedDict, DegenerateShapes)
{
    NaiveDictMatcher naive;
    BitSlicedDictMatcher planes;
    const std::vector<Symbol> text = {1, 2, 3};
    // Empty dict, empty member, member longer than the text, an
    // all-wildcard member, and a one-symbol member.
    const DictPatterns dict = {{},
                               {1, 2, 3, 1},
                               {wildcardSymbol, wildcardSymbol},
                               {2}};
    EXPECT_EQ(planes.matchAll(text, dict), naive.matchAll(text, dict));
    EXPECT_TRUE(planes.matchAll(text, {}).bits.empty());
    const DictHits onEmpty = planes.matchAll({}, dict);
    for (const auto &row : onEmpty.bits)
        EXPECT_TRUE(row.empty());
}

TEST(BitSlicedDict, DedupEquivalentToNoDedup)
{
    Rng rng(0x19A2u);
    BitSlicedDictMatcher deduped(true);
    BitSlicedDictMatcher independent(false);
    for (int round = 0; round < 40; ++round) {
        const BitWidth bits = round % 2 == 0 ? 2 : 8;
        const std::size_t n = 1 + rng.nextBelow(300);
        const std::size_t p = 1 + rng.nextBelow(80);
        const auto text = randomText(rng, n, bits);
        const auto dict = randomDict(rng, text, p, 10, bits, 20);
        ASSERT_EQ(deduped.matchAll(text, dict),
                  independent.matchAll(text, dict))
            << "round " << round;
    }
}

TEST(BitSlicedDict, DedupSharesSuffixNodesAndPlanes)
{
    // 8 members sharing a 4-symbol suffix: the suffix trie must fold
    // the shared tail into one chain per group, and the character
    // classes must be built once, not per member.
    DictPatterns dict;
    for (Symbol lead = 0; lead < 8; ++lead)
        dict.push_back({lead, Symbol(9), Symbol(10), Symbol(11), Symbol(12)});
    Rng rng(0x19A6u);
    std::vector<Symbol> text(300);
    for (auto &c : text)
        c = static_cast<Symbol>(rng.nextBelow(13));
    BitSlicedDictMatcher deduped(true);
    BitSlicedDictMatcher independent(false);
    (void)deduped.matchAll(text, dict);
    (void)independent.matchAll(text, dict);
    // Shared suffix: 4 shared nodes + 8 leaves = 12 < 8 * 5 = 40.
    EXPECT_EQ(deduped.lastTrieNodes(), 12u);
    EXPECT_EQ(independent.lastTrieNodes(), 40u);
    EXPECT_LT(deduped.lastEqMasks(), independent.lastEqMasks());
    EXPECT_EQ(deduped.lastSweeps(), 1u);
    EXPECT_EQ(deduped.lastPatternChars(), 40u);
}

TEST(BitSlicedDict, FusesAtMostSixtyFourPerSweep)
{
    Rng rng(0x19A3u);
    const auto text = randomText(rng, 150, 4);
    DictPatterns dict = randomDict(rng, text, 130, 6, 4, 10);
    BitSlicedDictMatcher planes;
    NaiveDictMatcher naive;
    EXPECT_EQ(planes.matchAll(text, dict), naive.matchAll(text, dict));
    EXPECT_EQ(planes.lastSweeps(), 3u);
}

TEST(Chunked, BitSlicedMatchesOneShotUnderRandomSplits)
{
    Rng rng(0x19A4u);
    BitSlicedDictMatcher planes;
    for (int round = 0; round < 40; ++round) {
        const BitWidth bits = round % 2 == 0 ? 2 : 8;
        const std::size_t n = 1 + rng.nextBelow(260);
        const auto text = randomText(rng, n, bits);
        const auto dict =
            randomDict(rng, text, 1 + rng.nextBelow(12), 9, bits, 15);
        const DictHits oneShot = planes.matchAll(text, dict);

        DictStreamState state;
        DictHits stitched;
        stitched.bits.assign(dict.size(), {});
        std::size_t at = 0;
        while (at < n) {
            const std::size_t len =
                std::min<std::size_t>(n - at, 1 + rng.nextBelow(40));
            const std::vector<Symbol> chunk(
                text.begin() + static_cast<std::ptrdiff_t>(at),
                text.begin() + static_cast<std::ptrdiff_t>(at + len));
            const DictHits part = feedDictChunk(planes, state, chunk, dict);
            for (std::size_t p = 0; p < dict.size(); ++p)
                stitched.bits[p].insert(stitched.bits[p].end(),
                                        part.bits[p].begin(),
                                        part.bits[p].end());
            at += len;
        }
        ASSERT_EQ(stitched, oneShot) << "round " << round;
        EXPECT_EQ(state.seen, static_cast<std::uint64_t>(n));
    }
}

TEST(Chunked, AhoCorasickStreamStateMatchesOneShot)
{
    Rng rng(0x19A5u);
    for (int round = 0; round < 40; ++round) {
        const BitWidth bits = round % 2 == 0 ? 2 : 8;
        const std::size_t n = 1 + rng.nextBelow(260);
        const auto text = randomText(rng, n, bits);
        const auto dict =
            randomDict(rng, text, 1 + rng.nextBelow(12), 9, bits, 0);
        AhoCorasickAutomaton automaton(dict);
        const DictHits oneShot = automaton.matchAll(text);

        AhoCorasickAutomaton::StreamState state;
        DictHits stitched;
        stitched.bits.assign(dict.size(), {});
        std::size_t at = 0;
        while (at < n) {
            const std::size_t len =
                std::min<std::size_t>(n - at, 1 + rng.nextBelow(40));
            const std::vector<Symbol> chunk(
                text.begin() + static_cast<std::ptrdiff_t>(at),
                text.begin() + static_cast<std::ptrdiff_t>(at + len));
            const DictHits part = automaton.feed(state, chunk);
            for (std::size_t p = 0; p < dict.size(); ++p)
                stitched.bits[p].insert(stitched.bits[p].end(),
                                        part.bits[p].begin(),
                                        part.bits[p].end());
            at += len;
        }
        ASSERT_EQ(stitched, oneShot) << "round " << round;
        EXPECT_EQ(state.seen, static_cast<std::uint64_t>(n));
    }
}

TEST(Chunked, CarryRejectsOversizedTail)
{
    BitSlicedDictMatcher planes;
    DictStreamState state;
    state.tail = {1, 2, 3, 4};
    EXPECT_THROW(feedDictChunk(planes, state, {1}, {{1, 2}}),
                 std::invalid_argument);
}

TEST(DictHits, TotalHitsCounts)
{
    DictHits hits;
    hits.bits = {{true, false, true}, {false, false, false}, {true}};
    EXPECT_EQ(hits.totalHits(), 3u);
    EXPECT_EQ(longestPattern({{1, 2}, {}, {1, 2, 3}}), 3u);
    EXPECT_EQ(longestPattern({}), 0u);
}

} // namespace
} // namespace spm::multipattern
