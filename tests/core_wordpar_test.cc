/**
 * @file
 * Property tests for the bit-sliced word-parallel matcher: bit
 * identical to the reference definition on randomized workloads
 * across pattern lengths 1..64 and beyond, alphabet sizes 2/4/256,
 * and wild-card densities, plus the packed-word invariants the
 * sharded service relies on.
 */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "core/wordpar.hh"
#include "tests/helpers.hh"

namespace spm::core
{
namespace
{

std::vector<bool>
unpack(const std::vector<std::uint64_t> &words, std::size_t n)
{
    std::vector<bool> out(n, false);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = (words[i / 64] >> (i % 64)) & 1u;
    return out;
}

TEST(WordParallel, PaperExample)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    const auto text = test::paperText();
    const auto pattern = test::paperPattern();
    EXPECT_EQ(wp.match(text, pattern), ref.match(text, pattern));
}

TEST(WordParallel, DegenerateShapes)
{
    WordParallelMatcher wp;
    const std::vector<Symbol> text{1, 2, 3};
    EXPECT_EQ(wp.match(text, {}), std::vector<bool>(3, false));
    EXPECT_EQ(wp.match({}, {1}), std::vector<bool>());
    // Pattern longer than the text never matches.
    EXPECT_EQ(wp.match(text, {1, 2, 3, 1}), std::vector<bool>(3, false));
}

TEST(WordParallel, AllWildcardPatternMatchesEveryFullWindow)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    const auto text = test::makeShapedWorkload(0xA11, 2, 150, 5, 0).text;
    for (std::size_t k : {std::size_t(1), std::size_t(5),
                          std::size_t(70)}) {
        const std::vector<Symbol> pattern(k, wildcardSymbol);
        EXPECT_EQ(wp.match(text, pattern), ref.match(text, pattern))
            << "k=" << k;
    }
}

TEST(WordParallel, MatchesReferenceOnRandomWorkloads)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    // Alphabet sizes 2, 4 and 256; every pattern length 1..64; mixed
    // wild-card densities; text lengths straddling word boundaries.
    for (BitWidth bits : {1u, 2u, 8u}) {
        for (std::size_t k = 1; k <= 64; ++k) {
            const unsigned pct =
                (k % 3 == 0) ? 30 : static_cast<unsigned>(k % 3) * 10;
            const std::size_t n =
                k + (k * 37) % 200 + (k % 2 ? 64 : 1);
            const auto w = test::makeShapedWorkload(
                0xBE7 * k + bits, bits, n, k, pct);
            EXPECT_EQ(wp.match(w.text, w.pattern),
                      ref.match(w.text, w.pattern))
                << "bits=" << bits << " k=" << k << " n=" << n
                << " case=" << w.caseId;
        }
    }
}

TEST(WordParallel, HandlesPatternsLongerThanOneWord)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    for (std::size_t k : {std::size_t(65), std::size_t(100),
                          std::size_t(130), std::size_t(257)}) {
        const auto w = test::makeShapedWorkload(0x10AD + k, 2,
                                                k * 3 + 17, k, 25);
        EXPECT_EQ(wp.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern))
            << "k=" << k << " case=" << w.caseId;
    }
}

TEST(WordParallel, PackedFormAgreesAndKeepsSlackBitsClear)
{
    WordParallelMatcher wp;
    for (std::size_t n : {std::size_t(63), std::size_t(64),
                          std::size_t(65), std::size_t(190)}) {
        const auto w = test::makeShapedWorkload(0x9AC + n, 2, n, 4, 20);
        const auto &pattern = w.pattern;
        const auto &text = w.text;
        const auto packed = wp.matchPacked(text, pattern);
        ASSERT_EQ(packed.size(), (n + 63) / 64);
        EXPECT_EQ(unpack(packed, n), wp.match(text, pattern));
        if (n % 64 != 0) {
            const std::uint64_t slack =
                packed.back() >> (n % 64);
            EXPECT_EQ(slack, 0u) << "n=" << n;
        }
    }
}

TEST(WordParallel, ReportsKernelEffort)
{
    WordParallelMatcher wp;
    const auto w = test::makeShapedWorkload(0xEFF, 8, 10'000, 16, 0);
    wp.matchPacked(w.text, w.pattern);
    EXPECT_GT(wp.lastWordOps(), 0u);
    EXPECT_GE(wp.lastPlanes(), 1u);
    EXPECT_LE(wp.lastPlanes(), 8u);
    // Word ops must be far below the n*k bit operations the scalar
    // reference performs -- that is the whole point of the kernel.
    EXPECT_LT(wp.lastWordOps(), 10'000u * 16u / 4u);
}

} // namespace
} // namespace spm::core
