/**
 * @file
 * Property tests for the bit-sliced word-parallel matcher: bit
 * identical to the reference definition on randomized workloads
 * across pattern lengths 1..64 and beyond, alphabet sizes 2/4/256,
 * and wild-card densities, plus the packed-word invariants the
 * sharded service relies on.
 */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "core/wordpar.hh"
#include "tests/helpers.hh"
#include "util/rng.hh"

namespace spm::core
{
namespace
{

std::vector<bool>
unpack(const std::vector<std::uint64_t> &words, std::size_t n)
{
    std::vector<bool> out(n, false);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = (words[i / 64] >> (i % 64)) & 1u;
    return out;
}

TEST(WordParallel, PaperExample)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    const auto text = test::paperText();
    const auto pattern = test::paperPattern();
    EXPECT_EQ(wp.match(text, pattern), ref.match(text, pattern));
}

TEST(WordParallel, DegenerateShapes)
{
    WordParallelMatcher wp;
    const std::vector<Symbol> text{1, 2, 3};
    EXPECT_EQ(wp.match(text, {}), std::vector<bool>(3, false));
    EXPECT_EQ(wp.match({}, {1}), std::vector<bool>());
    // Pattern longer than the text never matches.
    EXPECT_EQ(wp.match(text, {1, 2, 3, 1}), std::vector<bool>(3, false));
}

TEST(WordParallel, AllWildcardPatternMatchesEveryFullWindow)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    WorkloadGen gen(0xA11, 2);
    const auto text = gen.randomText(150);
    for (std::size_t k : {std::size_t(1), std::size_t(5),
                          std::size_t(70)}) {
        const std::vector<Symbol> pattern(k, wildcardSymbol);
        EXPECT_EQ(wp.match(text, pattern), ref.match(text, pattern))
            << "k=" << k;
    }
}

TEST(WordParallel, MatchesReferenceOnRandomWorkloads)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    // Alphabet sizes 2, 4 and 256; every pattern length 1..64; mixed
    // wild-card densities; text lengths straddling word boundaries.
    for (BitWidth bits : {1u, 2u, 8u}) {
        for (std::size_t k = 1; k <= 64; ++k) {
            WorkloadGen gen(0xBE7 * k + bits, bits);
            const double density = (k % 3 == 0) ? 0.3 : (k % 3) * 0.1;
            const auto pattern = gen.randomPattern(k, density);
            const std::size_t n =
                k + gen.rng().nextBelow(200) + (k % 2 ? 64 : 1);
            const auto text =
                gen.textWithPlants(n, pattern, k + 3);
            EXPECT_EQ(wp.match(text, pattern), ref.match(text, pattern))
                << "bits=" << bits << " k=" << k << " n=" << n;
        }
    }
}

TEST(WordParallel, HandlesPatternsLongerThanOneWord)
{
    WordParallelMatcher wp;
    ReferenceMatcher ref;
    for (std::size_t k : {std::size_t(65), std::size_t(100),
                          std::size_t(130), std::size_t(257)}) {
        WorkloadGen gen(0x10AD + k, 2);
        const auto pattern = gen.randomPattern(k, 0.25);
        const auto text = gen.textWithPlants(k * 3 + 17, pattern, k + 5);
        EXPECT_EQ(wp.match(text, pattern), ref.match(text, pattern))
            << "k=" << k;
    }
}

TEST(WordParallel, PackedFormAgreesAndKeepsSlackBitsClear)
{
    WordParallelMatcher wp;
    for (std::size_t n : {std::size_t(63), std::size_t(64),
                          std::size_t(65), std::size_t(190)}) {
        WorkloadGen gen(0x9AC + n, 2);
        const auto pattern = gen.randomPattern(4, 0.2);
        const auto text = gen.textWithPlants(n, pattern, 9);
        const auto packed = wp.matchPacked(text, pattern);
        ASSERT_EQ(packed.size(), (n + 63) / 64);
        EXPECT_EQ(unpack(packed, n), wp.match(text, pattern));
        if (n % 64 != 0) {
            const std::uint64_t slack =
                packed.back() >> (n % 64);
            EXPECT_EQ(slack, 0u) << "n=" << n;
        }
    }
}

TEST(WordParallel, ReportsKernelEffort)
{
    WordParallelMatcher wp;
    WorkloadGen gen(0xEFF, 8);
    const auto pattern = gen.randomPattern(16, 0.0);
    const auto text = gen.randomText(10'000);
    wp.matchPacked(text, pattern);
    EXPECT_GT(wp.lastWordOps(), 0u);
    EXPECT_GE(wp.lastPlanes(), 1u);
    EXPECT_LE(wp.lastPlanes(), 8u);
    // Word ops must be far below the n*k bit operations the scalar
    // reference performs -- that is the whole point of the kernel.
    EXPECT_LT(wp.lastWordOps(), 10'000u * 16u / 4u);
}

} // namespace
} // namespace spm::core
