/**
 * @file
 * Chaos-harness tests: seeded fault storms against the sharded
 * service must end in recovery (bit-identical to the un-faulted
 * answer) or a typed error -- never a hang, never silent corruption.
 * These tests are run under ThreadSanitizer by scripts/check.sh.
 */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "service/chaos.hh"
#include "service/service.hh"
#include "service/sharded.hh"
#include "tests/helpers.hh"

namespace spm::service
{
namespace
{

ShardedConfig
chaosShardConfig(unsigned threads, unsigned spares)
{
    ShardedConfig cfg;
    cfg.base.alphabetBits = 2;
    cfg.base.maxTextLen = 1 << 20;
    cfg.base.chunkChars = 16;
    cfg.threads = threads;
    cfg.spareShards = spares;
    cfg.minShardChars = 24;
    return cfg;
}

/** Software-only ladders keep the storm, not gate simulation, hot. */
ShardedMatchService::LadderFactory
softwareFactory()
{
    return [](const ServiceConfig &) {
        std::vector<std::unique_ptr<ServiceBackend>> ladder;
        ladder.push_back(std::make_unique<SoftwareBackend>());
        return ladder;
    };
}

MatchRequest
randomRequest(std::uint64_t seed, std::size_t text_len, std::size_t pat_len)
{
    const test::Workload w =
        test::makeShapedWorkload(seed, 2, text_len, pat_len, 20);
    MatchRequest req;
    req.id = seed;
    req.text = w.text;
    req.pattern = w.pattern;
    return req;
}

std::vector<bool>
expected(const MatchRequest &req)
{
    core::ReferenceMatcher ref;
    return ref.match(req.text, req.pattern);
}

bool
hasErrorKind(const std::vector<ShardError> &errors, ShardFaultKind kind)
{
    for (const ShardError &e : errors)
        if (e.kind == kind)
            return true;
    return false;
}

TEST(ChaosPlan, DecisionsAreSeededAndReplayable)
{
    ChaosConfig cfg;
    cfg.seed = 42;
    cfg.stallProb = 0.1;
    cfg.hangProb = 0.1;
    cfg.throwProb = 0.1;
    cfg.corruptProb = 0.1;
    const ChaosPlan a(cfg), b(cfg);
    bool any_injection = false;
    for (std::uint32_t slot = 0; slot < 4; ++slot)
        for (std::uint64_t w = 0; w < 128; ++w) {
            EXPECT_EQ(a.decide(slot, w), b.decide(slot, w))
                << "slot " << slot << " window " << w;
            any_injection |= a.decide(slot, w) != ChaosKind::None;
        }
    EXPECT_TRUE(any_injection) << "a 40% storm that never fires";

    // A different seed is a different storm.
    ChaosConfig other = cfg;
    other.seed = 43;
    const ChaosPlan c(other);
    bool any_diff = false;
    for (std::uint32_t slot = 0; slot < 4 && !any_diff; ++slot)
        for (std::uint64_t w = 0; w < 128 && !any_diff; ++w)
            any_diff = a.decide(slot, w) != c.decide(slot, w);
    EXPECT_TRUE(any_diff);
}

TEST(ChaosPlan, TargetsAndInjectionCapAreHonored)
{
    ChaosConfig cfg;
    cfg.seed = 7;
    cfg.throwProb = 1.0;
    cfg.targetSlots = {1};
    cfg.maxInjectionsPerSlot = 3;
    const ChaosPlan plan(cfg);
    for (std::uint64_t w = 0; w < 32; ++w)
        EXPECT_EQ(plan.decide(0, w), ChaosKind::None) << "untargeted slot";
    unsigned injected = 0;
    for (std::uint64_t w = 0; w < 32; ++w)
        if (plan.decide(1, w) != ChaosKind::None)
            ++injected;
    EXPECT_EQ(injected, 3u) << "cap must bound the storm per slot";
    // The capped verdicts are themselves replayable.
    EXPECT_NE(plan.decide(1, 0), ChaosKind::None);
    EXPECT_EQ(plan.decide(1, 10), ChaosKind::None);
}

TEST(ChaosService, InjectedExceptionRecoversOnSpare)
{
    ChaosConfig storm;
    storm.seed = 11;
    storm.throwProb = 1.0;
    storm.targetSlots = {0, 1}; // primaries only; the spare stays clean
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedMatchService sharded(
        chaosShardConfig(2, 1),
        makeChaosLadderFactory(plan, softwareFactory()));

    const auto req = randomRequest(0xE1, 300, 5);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    EXPECT_EQ(resp.result, expected(req));
    EXPECT_GT(plan->injections(), 0u);
    EXPECT_TRUE(hasErrorKind(sharded.lastShardErrors(),
                             ShardFaultKind::Exception));
    const telem::Snapshot snap = sharded.metricsSnapshot();
    EXPECT_GE(snap.counterValue("sharded.shard_exceptions"), 2u);
    EXPECT_GE(snap.counterValue("sharded.spare_serves"), 2u);
}

TEST(ChaosService, ExceptionWithoutSparesFailsTyped)
{
    ChaosConfig storm;
    storm.seed = 12;
    storm.throwProb = 1.0;
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedConfig cfg = chaosShardConfig(2, 0);
    ShardedMatchService sharded(
        cfg, makeChaosLadderFactory(plan, softwareFactory()));

    const auto req = randomRequest(0xE2, 300, 5);
    const MatchResponse resp = sharded.serve(req);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error.code, ErrorCode::ShardFailed);
    EXPECT_NE(resp.error.detail.find("unrecovered"), std::string::npos)
        << resp.error.detail;
    EXPECT_TRUE(resp.result.empty()) << "no partial bits on failure";
}

TEST(ChaosService, StallTripsWatchdogAndFailsOverToSpare)
{
    ChaosConfig storm;
    storm.seed = 13;
    storm.stallProb = 1.0;
    storm.targetSlots = {0, 1};
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedMatchService sharded(
        chaosShardConfig(2, 1),
        makeChaosLadderFactory(plan, softwareFactory()));

    const auto req = randomRequest(0xE3, 300, 5);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    EXPECT_EQ(resp.result, expected(req));
    // The stall exhausted the (single-rung) ladder on both primaries;
    // the spare served the retries honestly.
    EXPECT_GE(sharded.metricsSnapshot().counterValue("sharded.shard_retries"),
              2u);
    EXPECT_TRUE(hasErrorKind(sharded.lastShardErrors(),
                             ShardFaultKind::ServeError));
}

TEST(ChaosService, HangIsAbandonedAtDeadlineAndServedBySpare)
{
    ChaosConfig storm;
    storm.seed = 14;
    storm.hangProb = 1.0;
    storm.hangMs = 80;
    storm.targetSlots = {0, 1};
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedConfig cfg = chaosShardConfig(2, 1);
    cfg.batchDeadlineMs = 20;
    ShardedMatchService sharded(
        cfg, makeChaosLadderFactory(plan, softwareFactory()));

    const auto req = randomRequest(0xE4, 60, 5);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    EXPECT_EQ(resp.result, expected(req))
        << "late straggler results must be discarded, not stitched";
    EXPECT_TRUE(
        hasErrorKind(sharded.lastShardErrors(), ShardFaultKind::Timeout));
    EXPECT_GE(sharded.metricsSnapshot().counterValue("sharded.shard_timeouts"),
              1u);

    // Both primaries are still leased to their sleeping stragglers;
    // the very next request routes around the wedged pool entirely
    // (forced onto the spare) and still answers correctly.
    const MatchResponse again = sharded.serve(req);
    ASSERT_TRUE(again.ok()) << again.error.detail;
    EXPECT_EQ(again.result, expected(req));
}

TEST(ChaosService, QuarantineOpensProbesHalfOpenAndHeals)
{
    // Slot 0 throws on its first three windows, then behaves: two
    // failures quarantine it, the first half-open probe fails (third
    // injection), the second probe succeeds and closes the breaker.
    ChaosConfig storm;
    storm.seed = 15;
    storm.throwProb = 1.0;
    storm.targetSlots = {0};
    storm.maxInjectionsPerSlot = 3;
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedConfig cfg = chaosShardConfig(2, 1);
    cfg.minShardChars = 256; // single-shard requests, always slot 0 first
    cfg.quarantineAfter = 2;
    cfg.probeAfterBatches = 2;
    ShardedMatchService sharded(
        cfg, makeChaosLadderFactory(plan, softwareFactory()));

    const auto req = randomRequest(0xE5, 100, 4);
    const std::vector<bool> want = expected(req);

    // Serves 1-2: slot 0 throws, spare recovers, breaker opens.
    for (int i = 0; i < 2; ++i) {
        const MatchResponse r = sharded.serve(req);
        ASSERT_TRUE(r.ok()) << r.error.detail;
        EXPECT_EQ(r.result, want);
    }
    EXPECT_EQ(sharded.breakerState(0), BreakerState::Open);

    // Serve 3: quarantined slot is skipped; slot 1 serves honestly.
    const MatchResponse r3 = sharded.serve(req);
    ASSERT_TRUE(r3.ok());
    EXPECT_TRUE(sharded.lastShardErrors().empty());

    // Serve 4: half-open probe on slot 0 fails (last injection);
    // straight back to quarantine, request still recovered.
    const MatchResponse r4 = sharded.serve(req);
    ASSERT_TRUE(r4.ok());
    EXPECT_EQ(r4.result, want);
    EXPECT_EQ(sharded.breakerState(0), BreakerState::Open);

    // Serve 5 routes around; serve 6 probes again -- the storm is
    // spent, the probe succeeds, the breaker closes.
    ASSERT_TRUE(sharded.serve(req).ok());
    const MatchResponse r6 = sharded.serve(req);
    ASSERT_TRUE(r6.ok());
    EXPECT_EQ(r6.result, want);
    EXPECT_EQ(sharded.breakerState(0), BreakerState::Closed);

    const telem::Snapshot snap = sharded.metricsSnapshot();
    EXPECT_EQ(snap.counterValue("sharded.quarantines"), 2u);
    EXPECT_EQ(snap.counterValue("sharded.probes"), 2u);
}

TEST(ChaosService, SilentCorruptionIsCaughtByOverlapCheckAndRepaired)
{
    // Corrupt the first *kept* bit of slice 1's first window (index
    // k-1 = 4): with the per-chunk reference cross-check off, only
    // the overlap cross-check stands between this and wrong bits.
    ChaosConfig storm;
    storm.seed = 16;
    storm.corruptProb = 1.0;
    storm.maxInjectionsPerSlot = 1;
    storm.targetSlots = {1};
    storm.corruptAt = 4;
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedConfig cfg = chaosShardConfig(2, 1);
    cfg.base.crossCheck = false;
    ShardedMatchService sharded(
        cfg, makeChaosLadderFactory(plan, softwareFactory()));
    std::string dump;
    sharded.flightRecorder().setDumpSink(
        [&dump](const std::string &d) { dump = d; });

    const auto req = randomRequest(0xE6, 300, 5);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    EXPECT_EQ(resp.result, expected(req))
        << "repair must re-serve both suspects honestly";
    EXPECT_EQ(plan->injections(), 1u);
    EXPECT_TRUE(hasErrorKind(sharded.lastShardErrors(),
                             ShardFaultKind::OverlapMismatch));

    const telem::Snapshot snap = sharded.metricsSnapshot();
    EXPECT_GE(snap.counterValue("sharded.overlap_checks"), 1u);
    EXPECT_EQ(snap.counterValue("sharded.overlap_mismatches"), 1u);

    // The mismatch tripped a flight dump carrying a replayable case.
    EXPECT_EQ(sharded.flightRecorder().tripCount(), 1u);
    EXPECT_NE(dump.find("overlap mismatch"), std::string::npos) << dump;
    bool found_case = false;
    for (const telem::FlightEvent &ev : sharded.flightRecorder().events())
        if (ev.kind == telem::FlightKind::OverlapMismatch) {
            EXPECT_FALSE(ev.caseId.empty());
            found_case = true;
        }
    EXPECT_TRUE(found_case);
    sharded.flightRecorder().setDumpSink(nullptr);
}

TEST(ChaosService, UnrepairableOverlapMismatchFailsTypedNotSilent)
{
    ChaosConfig storm;
    storm.seed = 17;
    storm.corruptProb = 1.0;
    storm.maxInjectionsPerSlot = 1;
    storm.targetSlots = {1};
    storm.corruptAt = 4;
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedConfig cfg = chaosShardConfig(2, 0); // no spares: no repair
    cfg.base.crossCheck = false;
    ShardedMatchService sharded(
        cfg, makeChaosLadderFactory(plan, softwareFactory()));
    sharded.flightRecorder().setDumpSink([](const std::string &) {});

    const auto req = randomRequest(0xE7, 300, 5);
    const MatchResponse resp = sharded.serve(req);
    EXPECT_FALSE(resp.ok()) << "corrupt bits must never stitch as ok()";
    EXPECT_EQ(resp.error.code, ErrorCode::ShardFailed);
    EXPECT_NE(resp.error.detail.find("overlap mismatch"), std::string::npos)
        << resp.error.detail;
    EXPECT_TRUE(resp.result.empty());
    sharded.flightRecorder().setDumpSink(nullptr);
}

TEST(ChaosService, PoisonedGateRungIsContainedByLadderCrossCheck)
{
    // Hardware-true corruption: force the E16 hardest-undetected
    // stuck-at survivors onto the gate rung of both primaries. The
    // per-chunk reference cross-check (on by default) must contain
    // whatever those defects corrupt; the response stays exact.
    const auto sites = hardestUndetectedSites(8, 2, 4);
    if (sites.empty())
        GTEST_SKIP() << "fault grading left no undetected survivors";

    ChaosConfig storm; // no probabilistic injections; the poison rung
    storm.targetSlots = {0, 1};
    auto plan = std::make_shared<const ChaosPlan>(storm);
    ShardedConfig cfg = chaosShardConfig(2, 1);
    cfg.base.cells = 8;
    ShardedMatchService sharded(
        cfg, makeChaosLadderFactory(plan, softwareFactory(), sites));

    const auto req = randomRequest(0xE8, 96, 4);
    const MatchResponse resp = sharded.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.detail;
    EXPECT_EQ(resp.result, expected(req));
}

TEST(ChaosCampaign, MixedStormEndsWithZeroSilentCorruptionsAndNoHangs)
{
    ChaosCampaignConfig cc;
    cc.sharded = chaosShardConfig(4, 2);
    cc.sharded.minShardChars = 64;
    cc.sharded.batchDeadlineMs = 60;
    cc.sharded.base.crossCheck = true;
    cc.chaos.seed = 1979;
    cc.chaos.stallProb = 0.08;
    cc.chaos.hangProb = 0.02;
    cc.chaos.throwProb = 0.08;
    cc.chaos.corruptProb = 0.08;
    cc.chaos.hangMs = 150; // past the deadline: a real dead worker
    cc.chaos.targetSlots = {0, 1, 2, 3}; // spares are the clean harvest
    cc.innerFactory = softwareFactory();
    cc.requests = 10;
    cc.textLen = 400;
    cc.patternLen = 5;
    cc.seed = 2026;

    const ChaosCampaignReport rep = runChaosCampaign(cc);
    EXPECT_EQ(rep.requests, 10u);
    // The acceptance invariant: every fault recovered exactly or was
    // rejected typed. Returning at all proves no unbounded hang.
    EXPECT_EQ(rep.silentCorruptions, 0u);
    EXPECT_EQ(rep.okRequests, rep.exactRequests);
    EXPECT_EQ(rep.okRequests + rep.typedFailures, rep.requests);
    EXPECT_GT(rep.faultsInjected, 0u);
    EXPECT_GT(rep.okRequests, 0u) << "the storm should not zero availability";

    const std::string text = rep.renderText();
    EXPECT_NE(text.find("chaos.silent_corruptions = 0"), std::string::npos)
        << text;
    EXPECT_NE(text.find("chaos.availability_pct"), std::string::npos);
}

} // namespace
} // namespace spm::service
