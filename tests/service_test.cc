/**
 * @file
 * Tests for the resilient streaming match service: the typed error
 * taxonomy and request validation, the bounded admission queue under
 * all three backpressure policies, the beat-budget watchdog and
 * cancellation semantics, checkpoint/resume determinism, the
 * degradation ladder under injected faults, and journal determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/behavioral.hh"
#include "core/reference.hh"
#include "fault/injector.hh"
#include "fault/model.hh"
#include "service/backend.hh"
#include "service/checkpoint.hh"
#include "service/error.hh"
#include "service/queue.hh"
#include "service/service.hh"
#include "service/watchdog.hh"
#include "tests/helpers.hh"
#include "util/rng.hh"

namespace spm::service
{
namespace
{

/**
 * A deliberately wedged backend: it eats its entire beat budget
 * without ever producing a result, the way a fault that corrupts the
 * validity choreography starves the result stream.
 */
class WedgedBackend : public ServiceBackend
{
  public:
    std::string name() const override { return "wedged-fake"; }

    WindowResult matchWindow(const std::vector<Symbol> &,
                             const std::vector<Symbol> &,
                             BeatWatchdog &dog) override
    {
        WindowResult wr;
        while (dog.tick(1))
            ++wr.beats;
        wr.note = "wedged: consumed the whole budget";
        return wr;
    }
};

/** A backend that always answers all-true: silently wrong. */
class LyingBackend : public ServiceBackend
{
  public:
    std::string name() const override { return "lying-fake"; }

    WindowResult matchWindow(const std::vector<Symbol> &window,
                             const std::vector<Symbol> &,
                             BeatWatchdog &dog) override
    {
        WindowResult wr;
        wr.bits.assign(window.size(), true);
        wr.beats = window.size();
        dog.tick(wr.beats);
        wr.completed = true;
        return wr;
    }
};

ServiceConfig
smallConfig()
{
    ServiceConfig cfg;
    cfg.cells = 8;
    cfg.alphabetBits = 2;
    cfg.chunkChars = 16;
    cfg.queueCapacity = 2;
    return cfg;
}

std::vector<std::unique_ptr<ServiceBackend>>
behavioralLadder(std::size_t cells)
{
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<BehavioralBackend>(cells));
    ladder.push_back(std::make_unique<SoftwareBackend>());
    return ladder;
}

MatchRequest
seededRequest(std::uint64_t id, std::uint64_t seed, BitWidth bits,
              std::size_t text_len, std::size_t pattern_len,
              double wildcard_prob = 0.25)
{
    WorkloadGen gen(seed, bits);
    MatchRequest req;
    req.id = id;
    req.pattern = gen.randomPattern(pattern_len, wildcard_prob);
    req.text = gen.textWithPlants(text_len, req.pattern,
                                  pattern_len * 2 + 1);
    return req;
}

TEST(ServiceError, CodesHaveStableNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidPattern),
                 "invalid_pattern");
    EXPECT_STREQ(errorCodeName(ErrorCode::AlphabetOverflow),
                 "alphabet_overflow");
    EXPECT_STREQ(errorCodeName(ErrorCode::OversizedRequest),
                 "oversized_request");
    EXPECT_STREQ(errorCodeName(ErrorCode::QueueOverflow),
                 "queue_overflow");
    EXPECT_STREQ(errorCodeName(ErrorCode::Shed), "shed");
    EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(errorCodeName(ErrorCode::BackendFailed),
                 "backend_failed");
    EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidCheckpoint),
                 "invalid_checkpoint");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidDictionary),
                 "invalid_dictionary");

    const ServiceError e =
        ServiceError::make(ErrorCode::Shed, "queue full");
    EXPECT_TRUE(bool(e));
    EXPECT_EQ(e.toString(), "shed: queue full");
    EXPECT_FALSE(bool(ServiceError::ok()));
}

TEST(ServiceValidation, TypedRejections)
{
    MatchService svc(smallConfig(), behavioralLadder(8));

    MatchRequest req;
    req.text = {0, 1, 2};
    auto err = svc.validate(req); // empty pattern
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::InvalidPattern);

    req.pattern = {0, 3}; // fine
    EXPECT_FALSE(svc.validate(req).has_value());

    req.text = {0, 1, 7}; // 7 outside 2-bit alphabet
    err = svc.validate(req);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::AlphabetOverflow);

    req.text = {0, 1, 2};
    req.pattern = {0, 9}; // 9 outside alphabet, not the wild card
    err = svc.validate(req);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::AlphabetOverflow);

    req.pattern = {0, wildcardSymbol}; // wild card is always legal
    EXPECT_FALSE(svc.validate(req).has_value());

    ServiceConfig tiny = smallConfig();
    tiny.maxTextLen = 4;
    tiny.maxPatternLen = 2;
    MatchService bounded(tiny, behavioralLadder(8));
    req.text = {0, 1, 2, 3, 0};
    req.pattern = {0, 1};
    err = bounded.validate(req);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::OversizedRequest);

    req.text = {0, 1};
    req.pattern = {0, 1, 2};
    err = bounded.validate(req);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::OversizedRequest);

    // An invalid request is refused at submit() without queueing.
    MatchRequest bad;
    bad.id = 42;
    auto sub = bounded.submit(bad);
    EXPECT_FALSE(sub.accepted);
    EXPECT_EQ(sub.error.code, ErrorCode::InvalidPattern);
    EXPECT_EQ(bounded.queuedRequests(), 0u);
}

TEST(ServiceMatch, AgreesWithReferenceOnSeededWorkloads)
{
    core::ReferenceMatcher ref;
    for (std::uint64_t i = 0; i < 12; ++i) {
        const test::Workload w = test::makeWorkload(i);
        ServiceConfig cfg = smallConfig();
        cfg.alphabetBits = w.bits;
        // Size the array (even cell count) and the pattern limit to
        // the workload so no request degrades off the systolic rung.
        const std::size_t k = w.pattern.size();
        cfg.cells = std::max<std::size_t>(16, k + k % 2);
        cfg.maxPatternLen = std::max<std::size_t>(cfg.maxPatternLen, k);
        cfg.chunkChars = 8 + i % 13;
        MatchService svc(cfg, behavioralLadder(cfg.cells));

        MatchRequest req;
        req.id = i;
        req.text = w.text;
        req.pattern = w.pattern;
        const MatchResponse resp = svc.serve(req);
        ASSERT_TRUE(resp.ok()) << resp.error.toString();
        EXPECT_EQ(resp.result, ref.match(w.text, w.pattern))
            << "workload " << i;
        EXPECT_EQ(resp.degradations, 0u);
        EXPECT_EQ(resp.backend, "systolic-behavioral");
        EXPECT_GT(resp.checkpoints, 0u);
    }
}

TEST(ServiceMatch, EmptyTextServesEmptyResult)
{
    MatchService svc(smallConfig(), behavioralLadder(8));
    MatchRequest req;
    req.pattern = {0, 1};
    const MatchResponse resp = svc.serve(req);
    EXPECT_TRUE(resp.ok());
    EXPECT_TRUE(resp.result.empty());
}

TEST(ServiceMatch, DefaultLadderStartsAtGateLevel)
{
    ServiceConfig cfg = smallConfig();
    cfg.chunkChars = 12;
    MatchService svc(cfg); // default ladder: gate -> behavioral -> sw
    const auto names = svc.ladderNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "systolic-gatelevel");
    EXPECT_EQ(names[1], "systolic-behavioral");
    EXPECT_EQ(names[2], "software-baseline");

    const MatchRequest req = seededRequest(1, 7, 2, 24, 3);
    const MatchResponse resp = svc.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.toString();
    EXPECT_EQ(resp.backend, "systolic-gatelevel");
    EXPECT_EQ(resp.result,
              core::ReferenceMatcher().match(req.text, req.pattern));
}

TEST(Watchdog, TripsOnceArmedBudgetIsExhausted)
{
    BeatWatchdog dog(10);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(dog.tick(1));
    EXPECT_FALSE(dog.tripped());
    EXPECT_FALSE(dog.tick(1));
    EXPECT_TRUE(dog.tripped());
    EXPECT_EQ(dog.trips(), 1u);

    dog.arm(5);
    EXPECT_FALSE(dog.tripped());
    EXPECT_FALSE(dog.tick(6));
    EXPECT_EQ(dog.trips(), 2u);
}

TEST(Watchdog, WedgedBackendIsCancelledWithinBudget)
{
    // A ladder with only the wedged rung: the watchdog must cancel
    // within the armed beat budget and return deadline_exceeded.
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<WedgedBackend>());
    ServiceConfig cfg = smallConfig();
    cfg.watchdogMargin = 1.5;
    MatchService svc(cfg, std::move(ladder));

    const MatchRequest req = seededRequest(9, 11, 2, 40, 4);
    const MatchResponse resp = svc.serve(req);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error.code, ErrorCode::DeadlineExceeded);
    EXPECT_GE(resp.watchdogTrips, 1u);

    // The cancellation consumed no more than the armed budget: the
    // per-window budget is margin * (2w + cells + k + bits + 8).
    const Beat budget = static_cast<Beat>(
        1.5 * (2.0 * (cfg.chunkChars + req.pattern.size() - 1) +
               cfg.cells + req.pattern.size() + cfg.alphabetBits + 8));
    EXPECT_LE(resp.beats, budget + 1);
}

TEST(Watchdog, ServiceServesNextRequestAfterCancellation)
{
    // Wedged primary, healthy floor: the first request degrades and
    // completes; a ladder of only the wedge fails the request but the
    // *service* stays up and serves the next one.
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<WedgedBackend>());
    ladder.push_back(std::make_unique<SoftwareBackend>());
    MatchService svc(smallConfig(), std::move(ladder));

    const MatchRequest req = seededRequest(1, 23, 2, 40, 4);
    const MatchResponse first = svc.serve(req);
    ASSERT_TRUE(first.ok()) << first.error.toString();
    EXPECT_EQ(first.backend, "software-baseline");
    EXPECT_GE(first.degradations, 1u);
    EXPECT_EQ(first.result,
              core::ReferenceMatcher().match(req.text, req.pattern));

    const MatchRequest req2 = seededRequest(2, 29, 2, 32, 3);
    const MatchResponse second = svc.serve(req2);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.result,
              core::ReferenceMatcher().match(req2.text, req2.pattern));
}

TEST(Ladder, LyingBackendNeverCorruptsSilently)
{
    // The lying rung answers instantly but wrongly; the cross-check
    // must catch every chunk and the request must degrade to the
    // software floor with a correct final result.
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<LyingBackend>());
    ladder.push_back(std::make_unique<SoftwareBackend>());
    ServiceConfig cfg = smallConfig();
    cfg.rungFaultBudget = 1;
    MatchService svc(cfg, std::move(ladder));

    const MatchRequest req = seededRequest(5, 31, 2, 48, 4);
    const MatchResponse resp = svc.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.toString();
    EXPECT_EQ(resp.backend, "software-baseline");
    EXPECT_GE(resp.crossCheckFailures, 2u); // budget + the last straw
    EXPECT_GE(resp.degradations, 1u);
    EXPECT_EQ(resp.result,
              core::ReferenceMatcher().match(req.text, req.pattern));
}

TEST(Ladder, InjectedPermanentFaultDegradesToSoftware)
{
    // A stuck-at-1 compare latch makes the behavioral rung lie; the
    // cross-check burns its fault budget and the service falls to the
    // software floor, still answering correctly.
    fault::FaultInjector inj(2);
    fault::Fault f;
    f.kind = fault::FaultKind::StuckAt1;
    f.point = systolic::FaultPoint::CompareLatch;
    f.cell = 1;
    inj.addFault(f);

    auto faulty = std::make_unique<BehavioralBackend>(8);
    faulty->setChipPrep([&inj](core::BehavioralChip &chip) {
        inj.attach(chip.engine(), fault::behavioralResolver(chip));
    });
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::move(faulty));
    ladder.push_back(std::make_unique<SoftwareBackend>());

    ServiceConfig cfg = smallConfig();
    cfg.rungFaultBudget = 1;
    MatchService svc(cfg, std::move(ladder));

    const MatchRequest req = seededRequest(6, 37, 2, 48, 4, 0.0);
    const MatchResponse resp = svc.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.toString();
    EXPECT_EQ(resp.result,
              core::ReferenceMatcher().match(req.text, req.pattern));
    EXPECT_GT(inj.injections(), 0u);
    // The fault either corrupts results (cross-check catches it) or
    // is masked by this workload; it must never corrupt silently.
    if (resp.crossCheckFailures > 0) {
        EXPECT_EQ(resp.backend, "software-baseline");
    }
}

TEST(Deadline, WholeRequestBudgetIsEnforced)
{
    MatchService svc(smallConfig(), behavioralLadder(8));
    MatchRequest req = seededRequest(8, 41, 2, 64, 4);
    req.deadlineBeats = 10; // far below one window's protocol cost
    const MatchResponse resp = svc.serve(req);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error.code, ErrorCode::DeadlineExceeded);
}

TEST(Checkpoint, ResumeIsBitIdenticalAtEveryKillOffset)
{
    // Metamorphic: kill the stream after 1, 2 and 4 committed chunks
    // and resume; every resumed run must be bit-identical to the
    // uninterrupted one.
    const MatchRequest req = seededRequest(77, 0xFEED, 2, 96, 5);
    ServiceConfig cfg = smallConfig();
    cfg.chunkChars = 16;

    MatchService uninterrupted(cfg, behavioralLadder(8));
    const MatchResponse golden = uninterrupted.serve(req);
    ASSERT_TRUE(golden.ok());
    EXPECT_EQ(golden.result,
              core::ReferenceMatcher().match(req.text, req.pattern));

    for (const std::size_t kill_after : {1u, 2u, 4u}) {
        MatchService svc(cfg, behavioralLadder(8));
        StreamSession session = svc.startSession(req);
        for (std::size_t i = 0; i < kill_after; ++i)
            ASSERT_TRUE(session.step());
        const Checkpoint cp = session.checkpoint();
        EXPECT_EQ(cp.offset, kill_after * cfg.chunkChars);
        session.cancel("killed by test");
        const MatchResponse killed = session.finish();
        EXPECT_EQ(killed.error.code, ErrorCode::Cancelled);

        // A fresh service (fresh chips, fresh journal) resumes from
        // the checkpoint alone.
        MatchService resumed_svc(cfg, behavioralLadder(8));
        const MatchResponse resumed = resumed_svc.resume(req, cp);
        ASSERT_TRUE(resumed.ok()) << resumed.error.toString();
        EXPECT_TRUE(resumed.resumed);
        EXPECT_EQ(resumed.result, golden.result)
            << "kill after " << kill_after << " chunks";
        // The resumed run must not have re-scanned the killed prefix.
        EXPECT_EQ(resumed.chunks,
                  golden.chunks - kill_after);
    }
}

TEST(Checkpoint, InconsistentResumeTokenIsRejected)
{
    const MatchRequest req = seededRequest(3, 0xABC, 2, 40, 4);
    MatchService svc(smallConfig(), behavioralLadder(8));
    Checkpoint bogus;
    bogus.offset = 17; // but no emitted bits / tail
    const MatchResponse resp = svc.resume(req, bogus);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error.code, ErrorCode::InvalidCheckpoint);
}

TEST(Checkpoint, DigestChangesWithContents)
{
    Checkpoint a;
    a.offset = 8;
    a.tail = {1, 2, 3};
    a.emitted = {false, true, false, false, true, false, false, false};
    Checkpoint b = a;
    EXPECT_EQ(a.digest(), b.digest());
    b.emitted[3] = true;
    EXPECT_NE(a.digest(), b.digest());
    b = a;
    b.tail[0] = 2;
    EXPECT_NE(a.digest(), b.digest());
}

TEST(AdmissionQueue, RejectPolicyBouncesWithTypedError)
{
    AdmissionQueue q(2, BackpressurePolicy::Reject);
    MatchRequest r;
    r.pattern = {0};
    r.id = 1;
    EXPECT_TRUE(q.offer(r).admitted);
    r.id = 2;
    EXPECT_TRUE(q.offer(r).admitted);
    r.id = 3;
    const Admission adm = q.offer(r);
    EXPECT_FALSE(adm.admitted);
    EXPECT_EQ(adm.error.code, ErrorCode::QueueOverflow);
    ASSERT_TRUE(adm.bounced.has_value());
    EXPECT_EQ(adm.bounced->id, 3u);
    EXPECT_EQ(q.rejected(), 1u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(AdmissionQueue, ShedOldestEvictsTheHead)
{
    AdmissionQueue q(2, BackpressurePolicy::ShedOldest);
    MatchRequest r;
    r.pattern = {0};
    for (std::uint64_t id = 1; id <= 3; ++id) {
        r.id = id;
        q.offer(r);
    }
    EXPECT_EQ(q.shedCount(), 1u);
    EXPECT_EQ(q.size(), 2u);
    // Head is now request 2; request 1 was shed.
    const auto head = q.pop();
    ASSERT_TRUE(head.has_value());
    EXPECT_EQ(head->id, 2u);
}

TEST(Service, ShedOldestSurfacesTypedShedResponse)
{
    ServiceConfig cfg = smallConfig();
    cfg.policy = BackpressurePolicy::ShedOldest;
    cfg.queueCapacity = 2;
    MatchService svc(cfg, behavioralLadder(8));

    for (std::uint64_t id = 1; id <= 2; ++id)
        EXPECT_TRUE(svc.submit(seededRequest(id, id, 2, 24, 3)).accepted);
    const auto third = svc.submit(seededRequest(3, 3, 2, 24, 3));
    EXPECT_TRUE(third.accepted);
    ASSERT_TRUE(third.shedResponse.has_value());
    EXPECT_EQ(third.shedResponse->id, 1u);
    EXPECT_EQ(third.shedResponse->error.code, ErrorCode::Shed);

    const auto responses = svc.drain();
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].id, 2u);
    EXPECT_EQ(responses[1].id, 3u);
    for (const auto &resp : responses)
        EXPECT_TRUE(resp.ok());
}

TEST(Service, BlockPolicyDrainsInline)
{
    ServiceConfig cfg = smallConfig();
    cfg.policy = BackpressurePolicy::Block;
    cfg.queueCapacity = 2;
    MatchService svc(cfg, behavioralLadder(8));

    for (std::uint64_t id = 1; id <= 2; ++id)
        EXPECT_TRUE(svc.submit(seededRequest(id, id, 2, 24, 3)).accepted);
    const auto third = svc.submit(seededRequest(3, 3, 2, 24, 3));
    EXPECT_TRUE(third.accepted);
    ASSERT_EQ(third.drained.size(), 1u); // producer waited for one drain
    EXPECT_EQ(third.drained[0].id, 1u);
    EXPECT_TRUE(third.drained[0].ok());
    EXPECT_EQ(svc.admission().blockedOffers(), 1u);

    const auto rest = svc.drain();
    EXPECT_EQ(rest.size(), 2u);
}

TEST(Service, JournalIsDeterministic)
{
    auto run = [] {
        ServiceConfig cfg = smallConfig();
        MatchService svc(cfg, behavioralLadder(8));
        svc.serve(seededRequest(1, 0x5EED, 2, 40, 4));
        svc.serve(seededRequest(2, 0x5EEE, 2, 32, 3));
        return svc.journal().dump();
    };
    const std::string a = run();
    const std::string b = run();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Service, StatsDumpCountsServing)
{
    MatchService svc(smallConfig(), behavioralLadder(8));
    svc.serve(seededRequest(1, 1, 2, 24, 3));
    const auto &s = svc.stats();
    EXPECT_EQ(s.counter("served").value(), 1u);
    EXPECT_EQ(s.counter("completed").value(), 1u);
    EXPECT_EQ(s.counter("failed").value(), 0u);
    EXPECT_GT(s.counter("checkpoints").value(), 0u);
    const std::string dump = svc.statsDump();
    EXPECT_NE(dump.find("service.completed = 1"), std::string::npos);
    EXPECT_NE(dump.find("hostbus.charsTransferred"), std::string::npos);
}

} // namespace
} // namespace spm::service
