/**
 * @file
 * The dictionary serving path (service/dictserve.hh): typed
 * validation with member pinning, one-shot and chunked serving
 * bit-identical to the naive reference, bus charging, the sampled
 * cross-check, and the telemetry surface.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "multipattern/dict.hh"
#include "service/dictserve.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace spm::service
{
namespace
{

using multipattern::DictHits;
using multipattern::DictPatterns;
using multipattern::NaiveDictMatcher;

DictServiceConfig
smallConfig()
{
    DictServiceConfig cfg;
    cfg.base.alphabetBits = 3;
    cfg.base.maxTextLen = 4096;
    cfg.base.maxPatternLen = 64;
    cfg.maxDictPatterns = 16;
    return cfg;
}

std::vector<Symbol>
randomText(Rng &rng, std::size_t n)
{
    std::vector<Symbol> text(n);
    for (auto &c : text)
        c = static_cast<Symbol>(rng.nextBelow(8));
    return text;
}

TEST(DictValidation, TypedRejectionsPinTheMember)
{
    DictMatchService svc(smallConfig());

    DictError err = svc.validateDict({});
    EXPECT_EQ(err.error.code, ErrorCode::InvalidDictionary);
    EXPECT_EQ(err.patternIndex, DictError::noPattern);
    EXPECT_EQ(err.toString(), "invalid_dictionary: empty dictionary");

    DictPatterns tooMany(17, {Symbol(1)});
    err = svc.validateDict(tooMany);
    EXPECT_EQ(err.error.code, ErrorCode::InvalidDictionary);

    err = svc.validateDict({{1}, {}});
    EXPECT_EQ(err.error.code, ErrorCode::InvalidPattern);
    EXPECT_EQ(err.patternIndex, 1u);
    EXPECT_EQ(err.toString(), "dict[1]: invalid_pattern: empty dict[1]");

    err = svc.validateDict({{1}, {2}, {Symbol(8)}});
    EXPECT_EQ(err.error.code, ErrorCode::AlphabetOverflow);
    EXPECT_EQ(err.patternIndex, 2u);

    EXPECT_TRUE(svc.validateDict({{1, wildcardSymbol, 7}}).ok());
}

TEST(DictServe, OneShotMatchesNaiveReference)
{
    DictMatchService svc(smallConfig());
    Rng rng(0xD1C7u);
    NaiveDictMatcher naive;
    const auto text = randomText(rng, 400);
    const DictPatterns dict = {
        {1, 2, 3},
        {2, 3},
        {wildcardSymbol, 3},
        {7, 7, 7, 7},
    };
    const auto res = svc.matchDict(text, dict);
    ASSERT_TRUE(res.ok()) << res.error.toString();
    EXPECT_EQ(res.hits, naive.matchAll(text, dict));
    EXPECT_EQ(res.totalHits, res.hits.totalHits());
}

TEST(DictServe, RejectedRequestsCarryTheTypedError)
{
    DictMatchService svc(smallConfig());
    const auto bad = svc.matchDict({0, 1}, {{1}, {Symbol(9)}});
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error.error.code, ErrorCode::AlphabetOverflow);
    EXPECT_EQ(bad.error.patternIndex, 1u);

    // Out-of-alphabet text rejects at the chunk gate.
    const auto badText = svc.matchDict({Symbol(9)}, {{1}});
    EXPECT_EQ(badText.error.error.code, ErrorCode::AlphabetOverflow);
}

TEST(DictServe, ChunkedSessionIsBitIdenticalToOneShot)
{
    DictMatchService oneShotSvc(smallConfig());
    DictMatchService chunkedSvc(smallConfig());
    Rng rng(0xD1C8u);
    const auto text = randomText(rng, 700);
    const DictPatterns dict = {
        {1, 2, 3, 4, 5},
        {4, 5},
        {5, wildcardSymbol, 1},
    };
    const auto oneShot = oneShotSvc.matchDict(text, dict);
    ASSERT_TRUE(oneShot.ok());

    DictError err;
    DictSession session = chunkedSvc.openSession(dict, err);
    ASSERT_TRUE(err.ok()) << err.toString();
    ASSERT_TRUE(session.open());

    DictHits stitched;
    stitched.bits.assign(dict.size(), {});
    std::size_t at = 0;
    while (at < text.size()) {
        const std::size_t len =
            std::min<std::size_t>(text.size() - at, 1 + rng.nextBelow(64));
        const std::vector<Symbol> chunk(
            text.begin() + static_cast<std::ptrdiff_t>(at),
            text.begin() + static_cast<std::ptrdiff_t>(at + len));
        const auto part = chunkedSvc.feedChunk(session, chunk);
        ASSERT_TRUE(part.ok()) << part.error.toString();
        for (std::size_t p = 0; p < dict.size(); ++p)
            stitched.bits[p].insert(stitched.bits[p].end(),
                                    part.hits.bits[p].begin(),
                                    part.hits.bits[p].end());
        at += len;
    }
    EXPECT_EQ(stitched, oneShot.hits);
    EXPECT_EQ(session.streamed(), text.size());
}

TEST(DictServe, CumulativeStreamBoundIsEnforced)
{
    DictServiceConfig cfg = smallConfig();
    cfg.base.maxTextLen = 100;
    DictMatchService svc(cfg);
    DictError err;
    DictSession session = svc.openSession({{1, 2}}, err);
    ASSERT_TRUE(err.ok());

    const std::vector<Symbol> chunk(60, Symbol(1));
    EXPECT_TRUE(svc.feedChunk(session, chunk).ok());
    const auto overflow = svc.feedChunk(session, chunk);
    EXPECT_EQ(overflow.error.error.code, ErrorCode::OversizedRequest);
    // The rejected feed was a no-op: the stream still stands at 60.
    EXPECT_EQ(session.streamed(), 60u);

    DictSession neverOpened;
    const auto unopened = svc.feedChunk(neverOpened, {1});
    EXPECT_EQ(unopened.error.error.code, ErrorCode::InvalidDictionary);
}

TEST(DictServe, BusChargesEveryAdmittedCharacter)
{
    DictMatchService svc(smallConfig());
    const auto before = svc.config().base.bus.charsTransferred();
    const auto res = svc.matchDict(std::vector<Symbol>(128, Symbol(1)),
                                   {{1, 1}});
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(svc.config().base.bus.charsTransferred(), before + 128);
}

TEST(DictServe, SampledCrossCheckRunsCleanOnAHealthyKernel)
{
    DictServiceConfig cfg = smallConfig();
    cfg.crossCheckEvery = 1;
    DictMatchService svc(cfg);
    Rng rng(0xD1C9u);
    const auto text = randomText(rng, 300);
    const auto res = svc.matchDict(text, {{1, 2}, {2, wildcardSymbol}});
    ASSERT_TRUE(res.ok()) << res.error.toString();
    const auto snap = svc.metricsSnapshot();
    EXPECT_EQ(snap.counterValue("crossChecks"), 1u);
    EXPECT_EQ(snap.counterValue("crossCheckFailures"), 0u);
}

TEST(DictServe, TelemetryCountsDictionariesChunksAndHits)
{
    DictMatchService svc(smallConfig());
    Rng rng(0xD1CAu);
    NaiveDictMatcher naive;
    const auto text = randomText(rng, 500);
    const DictPatterns dict = {{1}, {2, 3}};
    const auto res = svc.matchDict(text, dict);
    ASSERT_TRUE(res.ok());
    (void)svc.matchDict({0, 1}, {{}}); // rejected

    const auto snap = svc.metricsSnapshot();
    EXPECT_EQ(snap.counterValue("dictionaries"), 1u);
    EXPECT_EQ(snap.counterValue("chunks"), 1u);
    EXPECT_EQ(snap.counterValue("chunkChars"), 500u);
    EXPECT_EQ(snap.counterValue("rejected"), 1u);
    EXPECT_EQ(snap.counterValue("hits"),
              naive.matchAll(text, dict).totalHits());
    EXPECT_GT(res.totalHits, 0u); // single symbols over 8 letters hit

    const std::string dump = svc.statsDump();
    EXPECT_NE(dump.find("dict.dictionaries"), std::string::npos);
}

} // namespace
} // namespace spm::service
