/** @file Tests for the global log-level filter. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/logging.hh"

namespace spm
{
namespace
{

/** Restores the global level so tests cannot leak a Silent filter. */
class LoggingTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogMinLevel(LogLevel::Info); }
};

TEST_F(LoggingTest, DefaultLevelPrintsEverything)
{
    EXPECT_EQ(logMinLevel(), LogLevel::Info);
    EXPECT_TRUE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
}

TEST_F(LoggingTest, WarnLevelFiltersInform)
{
    setLogMinLevel(LogLevel::Warn);
    EXPECT_EQ(logMinLevel(), LogLevel::Warn);
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
}

TEST_F(LoggingTest, SilentFiltersEverything)
{
    setLogMinLevel(LogLevel::Silent);
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
    // Silent is never itself a printable message level.
    EXPECT_FALSE(logEnabled(LogLevel::Silent));
    // The macros are safe to call while filtered.
    spm_warn("filtered warning (should not print)");
    spm_inform("filtered inform (should not print)");
}

TEST_F(LoggingTest, FilteredMessagesSkipArgumentFormatting)
{
    // The level check is hoisted into the macros: a filtered call
    // must not evaluate (or format) its arguments at all.
    setLogMinLevel(LogLevel::Silent);
    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return std::string("costly");
    };
    spm_warn("warn: ", expensive());
    spm_inform("inform: ", expensive());
    EXPECT_EQ(evaluations, 0);

    setLogMinLevel(LogLevel::Warn);
    spm_warn("warn passes: ", expensive());
    spm_inform("inform filtered: ", expensive());
    EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, PanicAndFatalIgnoreTheFilter)
{
    setLogMinLevel(LogLevel::Silent);
    EXPECT_THROW(spm_panic("invariant"), std::logic_error);
    EXPECT_THROW(spm_fatal("user error"), std::runtime_error);
    EXPECT_THROW(spm_assert(1 == 2, "arithmetic"), std::logic_error);
}

} // namespace
} // namespace spm
