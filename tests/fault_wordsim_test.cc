/**
 * @file
 * Tests for the 64-wide word-parallel fault simulator: trace capture
 * fidelity (a fault-free replay reproduces the golden run), exhaustive
 * word-vs-serial agreement on a small chip, lane bookkeeping, and
 * reuse of one compiled simulator across batches and traces.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/gatechip.hh"
#include "fault/collapse.hh"
#include "fault/grade.hh"
#include "fault/wordsim.hh"
#include "util/rng.hh"

namespace spm::fault
{
namespace
{

GradeConfig
smallConfig()
{
    GradeConfig cfg;
    cfg.cells = 2;
    cfg.patternLen = 2;
    cfg.textLen = 12;
    cfg.workloads = 1;
    cfg.crossCheckSamples = 0;
    return cfg;
}

GradedWorkload
captureSmall(const GradeConfig &cfg, std::uint64_t seed)
{
    WorkloadGen gen(seed, cfg.alphabetBits);
    std::vector<Symbol> pattern =
        gen.randomPattern(cfg.patternLen, cfg.wildcardProb);
    std::vector<Symbol> text =
        gen.textWithPlants(cfg.textLen, pattern, 4);
    return captureWorkload(cfg, std::move(pattern), std::move(text));
}

TEST(WordSim, CaptureRecordsTheWholeProtocol)
{
    const GradeConfig cfg = smallConfig();
    const GradedWorkload w = captureSmall(cfg, 11);

    core::GateChip probe(cfg.cells, cfg.alphabetBits);
    EXPECT_EQ(w.trace.initial.size(), probe.netlist().nodeCount());
    EXPECT_EQ(w.trace.resultNode, probe.resultNode());
    EXPECT_EQ(w.trace.observations, w.text.size());
    EXPECT_EQ(w.goldenPerOp.size(), w.text.size());
    EXPECT_FALSE(w.trace.sawDecay);
    EXPECT_EQ(w.golden.size(), w.text.size());

    std::size_t observes = 0;
    for (const TraceOp &op : w.trace.ops)
        observes += op.kind == TraceOp::Kind::Observe;
    EXPECT_EQ(observes, w.trace.observations);
}

TEST(WordSim, FaultFreeLanesReplayTheGoldenRun)
{
    const GradeConfig cfg = smallConfig();
    const GradedWorkload w = captureSmall(cfg, 12);

    core::GateChip probe(cfg.cells, cfg.alphabetBits);
    WordFaultSim sim(probe.netlist());
    // No faults: every lane is the fault-free chip; the replay must
    // reproduce the golden observations bit for bit.
    const WordFaultSim::BatchResult r =
        sim.run(w.trace, {}, w.goldenPerOp);
    EXPECT_EQ(r.detected, 0u);
}

TEST(WordSim, WordVerdictsMatchSerialExhaustively)
{
    const GradeConfig cfg = smallConfig();
    const GradedWorkload w = captureSmall(cfg, 13);

    core::GateChip probe(cfg.cells, cfg.alphabetBits);
    const std::size_t sites = probe.netlist().nodeCount() * 2;
    WordFaultSim sim(probe.netlist());

    std::vector<FaultSite> batch;
    std::vector<FaultSite> all;
    for (std::uint32_t s = 0; s < sites; ++s)
        all.push_back(FaultSite::fromIndex(s));

    for (std::size_t at = 0; at < all.size(); at += 64) {
        batch.assign(all.begin() + at,
                     all.begin() +
                         std::min(all.size(), at + 64));
        const WordFaultSim::BatchResult r =
            sim.run(w.trace, batch, w.goldenPerOp);
        for (std::size_t k = 0; k < batch.size(); ++k) {
            const bool word = (r.detected >> k) & 1;
            const bool serial = serialDetect(cfg, batch[k], w);
            ASSERT_EQ(word, serial)
                << batch[k].describe(probe.netlist());
            // A detected lane names its first diverging observation;
            // an undetected lane has none.
            if (word)
                EXPECT_GE(r.firstDiff[k], 0);
            else
                EXPECT_EQ(r.firstDiff[k], -1);
        }
    }
}

TEST(WordSim, OneCompiledSimulatorServesManyTraces)
{
    const GradeConfig cfg = smallConfig();
    const GradedWorkload w1 = captureSmall(cfg, 21);
    const GradedWorkload w2 = captureSmall(cfg, 22);

    core::GateChip probe(cfg.cells, cfg.alphabetBits);
    const CollapseResult cr =
        collapseFaults(probe.netlist(), {probe.resultNode()});
    std::vector<FaultSite> reps = cr.representativeSites();
    reps.resize(std::min<std::size_t>(reps.size(), 64));

    WordFaultSim sim(probe.netlist());
    const std::uint64_t d1 =
        sim.run(w1.trace, reps, w1.goldenPerOp).detected;
    const std::uint64_t d2 =
        sim.run(w2.trace, reps, w2.goldenPerOp).detected;
    // Different workloads detect different (overlapping) fault sets;
    // re-running the first trace afterwards must be deterministic.
    EXPECT_EQ(sim.run(w1.trace, reps, w1.goldenPerOp).detected, d1);
    EXPECT_NE(d1 | d2, 0u);
    EXPECT_GT(sim.wordEvals(), 0u);
}

} // namespace
} // namespace spm::fault
