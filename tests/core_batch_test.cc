/**
 * @file
 * Property tests for the multi-stream batch matcher: packed
 * multi-stream matching is bit-identical to per-stream reference
 * matching at widths 1, 3, 64 and 1000; chunked feeding through
 * StreamCarry is bit-identical to one-shot matching under randomized
 * chunk boundaries; and the carry/shape misuse contracts throw
 * instead of corrupting.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/batch.hh"
#include "core/reference.hh"
#include "tests/helpers.hh"
#include "util/rng.hh"

namespace spm::core
{
namespace
{

/** Deterministic random streams over a small alphabet. */
std::vector<std::vector<Symbol>>
makeStreams(Rng &rng, std::size_t width, std::size_t max_len,
            Symbol sigma)
{
    std::vector<std::vector<Symbol>> streams(width);
    for (auto &s : streams) {
        // Includes empty streams and streams shorter than the pattern.
        s.resize(rng.nextBelow(max_len + 1));
        for (auto &c : s)
            c = static_cast<Symbol>(rng.nextBelow(sigma));
    }
    return streams;
}

std::vector<Symbol>
makePattern(Rng &rng, std::size_t k, Symbol sigma, unsigned wild_pct)
{
    std::vector<Symbol> pattern(k);
    for (auto &c : pattern)
        c = rng.nextBelow(100) < wild_pct
                ? wildcardSymbol
                : static_cast<Symbol>(rng.nextBelow(sigma));
    return pattern;
}

TEST(BatchMatcher, MatchManyEqualsPerStreamReferenceAcrossWidths)
{
    Rng rng(0xBA7C4);
    ReferenceMatcher ref;
    BatchMatcher bm;
    for (const std::size_t width :
         {std::size_t(1), std::size_t(3), std::size_t(64),
          std::size_t(1000)}) {
        const int iters = width >= 1000 ? 2 : (width >= 64 ? 6 : 30);
        for (int iter = 0; iter < iters; ++iter) {
            const std::size_t k = 1 + rng.nextBelow(12);
            const auto pattern = makePattern(rng, k, 4, 15);
            const auto streams = makeStreams(rng, width, 90, 4);
            const auto got = bm.matchMany(streams, pattern);
            ASSERT_EQ(got.size(), width);
            EXPECT_EQ(bm.lastBatchWidth(), width);
            for (std::size_t i = 0; i < width; ++i)
                ASSERT_EQ(got[i], ref.match(streams[i], pattern))
                    << "width=" << width << " stream=" << i
                    << " k=" << k;
        }
    }
}

TEST(BatchMatcher, ChunkedFeedingIsBitIdenticalToOneShot)
{
    Rng rng(0xC4A11);
    ReferenceMatcher ref;
    BatchMatcher bm;
    for (int iter = 0; iter < 120; ++iter) {
        const std::size_t k = 1 + rng.nextBelow(20);
        const auto pattern = makePattern(rng, k, 4, 15);
        const std::size_t width = 1 + rng.nextBelow(6);
        const auto full = makeStreams(rng, width, 200, 4);

        std::vector<StreamCarry> carries(width);
        std::vector<std::vector<bool>> acc(width);
        std::vector<std::size_t> off(width, 0);
        bool more = true;
        while (more) {
            more = false;
            std::vector<std::vector<Symbol>> chunks(width);
            for (std::size_t i = 0; i < width; ++i) {
                const std::size_t left = full[i].size() - off[i];
                const std::size_t take =
                    left == 0
                        ? 0
                        : 1 + rng.nextBelow(std::min<std::size_t>(left,
                                                                  33));
                chunks[i].assign(
                    full[i].begin() +
                        static_cast<std::ptrdiff_t>(off[i]),
                    full[i].begin() +
                        static_cast<std::ptrdiff_t>(off[i] + take));
                off[i] += take;
                if (off[i] < full[i].size())
                    more = true;
            }
            const auto bits = bm.feedChunks(carries, chunks, pattern);
            for (std::size_t i = 0; i < width; ++i)
                acc[i].insert(acc[i].end(), bits[i].begin(),
                              bits[i].end());
        }
        for (std::size_t i = 0; i < width; ++i)
            ASSERT_EQ(acc[i], ref.match(full[i], pattern))
                << "iter=" << iter << " stream=" << i << " k=" << k;
    }
}

TEST(BatchMatcher, CarryTracksTailAndSeen)
{
    BatchMatcher bm;
    const std::vector<Symbol> pattern{1, 2, 0, 3};
    std::vector<StreamCarry> carries(1);
    const std::vector<std::vector<Symbol>> chunk1{{1, 2, 0, 3, 1}};
    bm.feedChunks(carries, chunk1, pattern);
    EXPECT_EQ(carries[0].seen, 5u);
    EXPECT_EQ(carries[0].patternLen, 4u);
    // Tail is the last k-1 = 3 characters consumed.
    EXPECT_EQ(carries[0].tail, (std::vector<Symbol>{0, 3, 1}));

    // A short follow-up chunk rolls the tail, not resets it.
    const std::vector<std::vector<Symbol>> chunk2{{2}};
    bm.feedChunks(carries, chunk2, pattern);
    EXPECT_EQ(carries[0].seen, 6u);
    EXPECT_EQ(carries[0].tail, (std::vector<Symbol>{3, 1, 2}));
}

TEST(BatchMatcher, ShapeAndPatternMisuseThrows)
{
    BatchMatcher bm;
    std::vector<StreamCarry> carries(2);
    const std::vector<std::vector<Symbol>> one_chunk{{1, 2}};
    // Chunk count must equal carry count.
    EXPECT_THROW(bm.feedChunks(carries, one_chunk, {1}),
                 std::invalid_argument);

    // A carry fed with k=2 cannot continue under a k=3 pattern.
    std::vector<StreamCarry> bound(1);
    const std::vector<std::vector<Symbol>> chunk{{1, 2, 3, 1}};
    bm.feedChunks(bound, chunk, {1, 2});
    EXPECT_THROW(bm.feedChunks(bound, chunk, {1, 2, 3}),
                 std::invalid_argument);
}

TEST(BatchMatcher, EmptyChunksAdvanceNothingButStayConsistent)
{
    ReferenceMatcher ref;
    BatchMatcher bm;
    const std::vector<Symbol> pattern{1, wildcardSymbol};
    const std::vector<Symbol> full{1, 2, 1, 3, 1, 1};

    std::vector<StreamCarry> carries(2);
    std::vector<std::vector<Symbol>> chunks{full, {}};
    auto bits = bm.feedChunks(carries, chunks, pattern);
    EXPECT_EQ(bits[0], ref.match(full, pattern));
    EXPECT_TRUE(bits[1].empty());
    EXPECT_EQ(carries[1].seen, 0u);

    // The all-empty pass is a no-op with well-formed empty results.
    chunks = {{}, {}};
    bits = bm.feedChunks(carries, chunks, pattern);
    EXPECT_TRUE(bits[0].empty());
    EXPECT_TRUE(bits[1].empty());
}

TEST(BatchMatcher, WorkloadStreamsAgreeWithReference)
{
    // Conformance-generator workloads as lanes: wild cards, planted
    // matches and varied alphabets, all in one pack per pattern.
    ReferenceMatcher ref;
    BatchMatcher bm;
    for (std::uint64_t base = 0; base < 8; ++base) {
        const auto lead = test::makeWorkload(base * 31);
        std::vector<std::vector<Symbol>> streams{lead.text};
        for (std::uint64_t i = 1; i < 5; ++i)
            streams.push_back(
                test::makeShapedWorkload(base * 977 + i, lead.bits, 64,
                                         lead.pattern.size(), 0)
                    .text);
        const auto got = bm.matchMany(streams, lead.pattern);
        for (std::size_t i = 0; i < streams.size(); ++i)
            ASSERT_EQ(got[i], ref.match(streams[i], lead.pattern))
                << "base=" << base << " lane=" << i << " case "
                << lead.caseId;
    }
}

TEST(BatchMatcher, ForcedTierBatchesIdentically)
{
    Rng rng(0x15AB);
    BatchMatcher best;
    BatchMatcher scalar(SimdIsa::Scalar);
    const auto pattern = makePattern(rng, 9, 4, 20);
    const auto streams = makeStreams(rng, 17, 120, 4);
    EXPECT_EQ(best.matchMany(streams, pattern),
              scalar.matchMany(streams, pattern));
    EXPECT_EQ(scalar.kernel().isa(), SimdIsa::Scalar);
}

} // namespace
} // namespace spm::core
