/** @file Tests for the match-counting array (Section 3.4). */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "extensions/counting.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::ext
{
namespace
{

TEST(Counting, SmallExample)
{
    SystolicMatchCounter counter;
    const auto c = counter.count(parseSymbols("ABAB"),
                                 parseSymbols("AB"));
    EXPECT_EQ(c, (std::vector<unsigned>{0, 2, 0, 2}));
}

TEST(Counting, WildcardsAlwaysCount)
{
    SystolicMatchCounter counter;
    const auto c = counter.count(parseSymbols("CD"),
                                 parseSymbols("XX"));
    EXPECT_EQ(c[1], 2u);
}

TEST(Counting, FullMatchCountEqualsPatternLength)
{
    SystolicMatchCounter counter;
    const auto text = parseSymbols("ABCABC");
    const auto pat = parseSymbols("ABC");
    const auto c = counter.count(text, pat);
    core::ReferenceMatcher ref;
    const auto r = ref.match(text, pat);
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (r[i])
            EXPECT_EQ(c[i], pat.size()) << "i=" << i;
    }
}

TEST(Counting, CountGeneralizesMatching)
{
    // r_i == (count_i == k+1): the counting chip subsumes the
    // matching chip.
    core::ReferenceMatcher ref;
    SystolicMatchCounter counter;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto w = test::makeWorkload(i + 60);
        const auto counts = counter.count(w.text, w.pattern);
        const auto bits = ref.match(w.text, w.pattern);
        for (std::size_t j = w.pattern.size() - 1; j < w.text.size();
             ++j) {
            EXPECT_EQ(bits[j], counts[j] == w.pattern.size())
                << "workload " << i << " position " << j;
        }
    }
}

TEST(Counting, MatchesReferenceCounts)
{
    SystolicMatchCounter counter;
    for (std::uint64_t i = 0; i < 12; ++i) {
        const auto w = test::makeWorkload(i + 70);
        EXPECT_EQ(counter.count(w.text, w.pattern),
                  core::referenceMatchCounts(w.text, w.pattern))
            << "workload " << i;
    }
}

TEST(Counting, OversizedArrayStillCorrect)
{
    SystolicMatchCounter counter(9);
    const auto text = parseSymbols("ABCABCABC");
    const auto pat = parseSymbols("AXC");
    EXPECT_EQ(counter.count(text, pat),
              core::referenceMatchCounts(text, pat));
}

TEST(Counting, DegenerateInputs)
{
    SystolicMatchCounter counter(4);
    EXPECT_TRUE(counter.count({}, parseSymbols("A")).empty());
    EXPECT_EQ(counter.count(parseSymbols("A"), parseSymbols("AB")),
              (std::vector<unsigned>{0}));
}

} // namespace
} // namespace spm::ext
