/** @file Tests for the match-counting array (Section 3.4). */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "extensions/counting.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::ext
{
namespace
{

TEST(Counting, SmallExample)
{
    SystolicMatchCounter counter;
    const auto c = counter.count(parseSymbols("ABAB"),
                                 parseSymbols("AB"));
    EXPECT_EQ(c, (std::vector<unsigned>{0, 2, 0, 2}));
}

TEST(Counting, WildcardsAlwaysCount)
{
    SystolicMatchCounter counter;
    const auto c = counter.count(parseSymbols("CD"),
                                 parseSymbols("XX"));
    EXPECT_EQ(c[1], 2u);
}

TEST(Counting, FullMatchCountEqualsPatternLength)
{
    SystolicMatchCounter counter;
    const auto text = parseSymbols("ABCABC");
    const auto pat = parseSymbols("ABC");
    const auto c = counter.count(text, pat);
    core::ReferenceMatcher ref;
    const auto r = ref.match(text, pat);
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (r[i])
            EXPECT_EQ(c[i], pat.size()) << "i=" << i;
    }
}

TEST(Counting, CountGeneralizesMatching)
{
    // r_i == (count_i == k+1): the counting chip subsumes the
    // matching chip.
    core::ReferenceMatcher ref;
    SystolicMatchCounter counter;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const auto w = test::makeWorkload(i + 60);
        const auto counts = counter.count(w.text, w.pattern);
        const auto bits = ref.match(w.text, w.pattern);
        for (std::size_t j = w.pattern.size() - 1; j < w.text.size();
             ++j) {
            EXPECT_EQ(bits[j], counts[j] == w.pattern.size())
                << "workload " << i << " position " << j;
        }
    }
}

TEST(Counting, MatchesReferenceCounts)
{
    SystolicMatchCounter counter;
    for (std::uint64_t i = 0; i < 12; ++i) {
        const auto w = test::makeWorkload(i + 70);
        EXPECT_EQ(counter.count(w.text, w.pattern),
                  core::referenceMatchCounts(w.text, w.pattern))
            << "workload " << i;
    }
}

TEST(Counting, OversizedArrayStillCorrect)
{
    SystolicMatchCounter counter(9);
    const auto text = parseSymbols("ABCABCABC");
    const auto pat = parseSymbols("AXC");
    EXPECT_EQ(counter.count(text, pat),
              core::referenceMatchCounts(text, pat));
}

TEST(Counting, DegenerateInputs)
{
    SystolicMatchCounter counter(4);
    EXPECT_TRUE(counter.count({}, parseSymbols("A")).empty());
    EXPECT_EQ(counter.count(parseSymbols("A"), parseSymbols("AB")),
              (std::vector<unsigned>{0}));
}

TEST(Counting, TotalsEqualScalarRecountOnGeneratedCases)
{
    // Property over the conformance generator's hard regions: the
    // systolic totals equal an independent scalar recount of
    // per-window matches, and count == k coincides with the match
    // bit of the reference definition.
    core::ReferenceMatcher ref;
    for (std::uint64_t index = 0; index < 48; ++index) {
        const test::Workload w = test::makeWorkload(index);
        const std::size_t n = w.text.size();
        const std::size_t k = w.pattern.size();
        if (k > 64 || n > 192)
            continue; // keep the engine-simulated array tractable

        const auto counts =
            SystolicMatchCounter().count(w.text, w.pattern);
        const auto bits = ref.match(w.text, w.pattern);
        ASSERT_EQ(counts.size(), n) << w.caseId;
        for (std::size_t i = k - 1; i < n; ++i) {
            unsigned recount = 0;
            for (std::size_t j = 0; j < k; ++j) {
                const Symbol p = w.pattern[j];
                recount += (p == wildcardSymbol ||
                            p == w.text[i - (k - 1) + j])
                               ? 1u
                               : 0u;
            }
            EXPECT_EQ(counts[i], recount)
                << "i=" << i << " case=" << w.caseId;
            EXPECT_EQ(bits[i], counts[i] == k)
                << "i=" << i << " case=" << w.caseId;
        }
        for (std::size_t i = 0; i + 1 < k && i < n; ++i)
            EXPECT_EQ(counts[i], 0u)
                << "i=" << i << " case=" << w.caseId;
    }
}

} // namespace
} // namespace spm::ext
