/** @file Unit tests for the executable problem specification. */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::core
{
namespace
{

TEST(SymbolMatches, WildcardMatchesAnything)
{
    EXPECT_TRUE(symbolMatches(wildcardSymbol, 0));
    EXPECT_TRUE(symbolMatches(wildcardSymbol, 999));
    EXPECT_TRUE(symbolMatches(3, 3));
    EXPECT_FALSE(symbolMatches(3, 4));
}

TEST(Reference, PaperFigure31Example)
{
    // "the pattern AXC matches the substrings ... Result bits r_2,
    // r_5, and r_6 are thus set to 1, and all other result bits are 0"
    // (Section 3.1, over the text used in tests/helpers.hh).
    ReferenceMatcher ref;
    const auto r = ref.match(test::paperText(), test::paperPattern());
    const std::vector<bool> want = {false, false, true, false, false,
                                    true,  true,  false, false, false};
    EXPECT_EQ(r, want);
}

TEST(Reference, ExactMatchNoWildcards)
{
    ReferenceMatcher ref;
    const auto r =
        ref.match(parseSymbols("ABABAB"), parseSymbols("ABA"));
    const std::vector<bool> want = {false, false, true,
                                    false, true,  false};
    EXPECT_EQ(r, want);
}

TEST(Reference, OverlappingMatchesAllReported)
{
    ReferenceMatcher ref;
    const auto r = ref.match(parseSymbols("AAAA"), parseSymbols("AA"));
    EXPECT_EQ(r, (std::vector<bool>{false, true, true, true}));
}

TEST(Reference, SingleCharacterPattern)
{
    ReferenceMatcher ref;
    const auto r = ref.match(parseSymbols("ABA"), parseSymbols("A"));
    EXPECT_EQ(r, (std::vector<bool>{true, false, true}));
}

TEST(Reference, AllWildcardPatternMatchesEverywhere)
{
    ReferenceMatcher ref;
    const auto r = ref.match(parseSymbols("ABCD"), parseSymbols("XX"));
    EXPECT_EQ(r, (std::vector<bool>{false, true, true, true}));
}

TEST(Reference, DegenerateInputs)
{
    ReferenceMatcher ref;
    EXPECT_TRUE(ref.match({}, parseSymbols("A")).empty());
    EXPECT_EQ(ref.match(parseSymbols("AB"), {}),
              (std::vector<bool>{false, false}));
    // Pattern longer than text: nothing can match.
    EXPECT_EQ(ref.match(parseSymbols("AB"), parseSymbols("ABC")),
              (std::vector<bool>{false, false}));
}

TEST(Reference, WildcardIntransitivityExample)
{
    // Section 3.1's point: with wild cards the matches relation is
    // not transitive. Pattern AX matches both texts AC and AB, yet AC
    // and AB do not match each other as patterns over those texts.
    ReferenceMatcher ref;
    EXPECT_TRUE(ref.match(parseSymbols("AC"), parseSymbols("AX"))[1]);
    EXPECT_TRUE(ref.match(parseSymbols("AB"), parseSymbols("AX"))[1]);
    EXPECT_FALSE(ref.match(parseSymbols("AC"), parseSymbols("AB"))[1]);
}

TEST(ReferenceCounts, CountsMatchingPositions)
{
    // pattern AB against text ABAB: window AB = 2 matches, BA = 0.
    const auto c = referenceMatchCounts(parseSymbols("ABAB"),
                                        parseSymbols("AB"));
    EXPECT_EQ(c, (std::vector<unsigned>{0, 2, 0, 2}));
}

TEST(ReferenceCounts, WildcardsCountAsMatches)
{
    const auto c = referenceMatchCounts(parseSymbols("AB"),
                                        parseSymbols("XC"));
    EXPECT_EQ(c, (std::vector<unsigned>{0, 1}));
}

TEST(ReferenceCorrelation, SquaredDifferences)
{
    // text 1,2,3 pattern 1,1: r_1 = 0 + 1 = 1, r_2 = 1 + 4 = 5.
    const auto r = referenceCorrelation({1, 2, 3}, {1, 1});
    EXPECT_EQ(r, (std::vector<std::int64_t>{0, 1, 5}));
}

TEST(ReferenceCorrelation, ExactAlignmentIsZero)
{
    const auto r = referenceCorrelation({5, -3, 2, 5, -3}, {5, -3});
    EXPECT_EQ(r[1], 0);
    EXPECT_EQ(r[4], 0);
}

} // namespace
} // namespace spm::core
