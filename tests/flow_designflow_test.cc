/** @file Tests for the executable design flow (Figure 4-1). */

#include <gtest/gtest.h>

#include "flow/designflow.hh"
#include "layout/cif.hh"
#include "layout/drc.hh"

namespace spm::flow
{
namespace
{

TEST(Figure41, GraphShapeMatchesPaper)
{
    const TaskGraph g = figure41Graph();
    EXPECT_EQ(g.taskCount(), 9u);
    // The algorithm gets the largest share of the effort: the core
    // of the paper's design philosophy (Section 2).
    const auto order = g.topologicalOrder();
    EXPECT_EQ(g.task(order[0]).name, "Algorithm");
    double max_effort = 0;
    std::string max_task;
    for (TaskId id = 0; id < g.taskCount(); ++id) {
        if (g.task(id).effortDays > max_effort) {
            max_effort = g.task(id).effortDays;
            max_task = g.task(id).name;
        }
    }
    EXPECT_EQ(max_task, "Algorithm");
    // Two man-months, give or take.
    EXPECT_NEAR(g.totalEffortDays(), 43.0, 10.0);
}

class DesignFlowFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        // The prototype configuration: 8 cells, 2-bit characters.
        result = new DesignFlowResult(runDesignFlow(8, 2));
    }

    static void
    TearDownTestSuite()
    {
        delete result;
        result = nullptr;
    }

    static DesignFlowResult *result;
};

DesignFlowResult *DesignFlowFixture::result = nullptr;

TEST_F(DesignFlowFixture, ProducesAllFourCellKinds)
{
    ASSERT_EQ(result->cellCircuits.size(), 4u);
    EXPECT_EQ(result->cellCircuits[0]->name(), "comparator-pos");
    EXPECT_EQ(result->cellCircuits[1]->name(), "comparator-neg");
    EXPECT_EQ(result->cellCircuits[2]->name(), "accumulator-pos");
    EXPECT_EQ(result->cellCircuits[3]->name(), "accumulator-neg");
    EXPECT_EQ(result->cellSticks.size(), 4u);
    EXPECT_EQ(result->cellLayouts.size(), 4u);
}

TEST_F(DesignFlowFixture, EveryStepLogged)
{
    // All Figure 4-1 subtasks plus the final mask step.
    ASSERT_GE(result->steps.size(), 9u);
    EXPECT_EQ(result->steps.front().task, "Algorithm");
    EXPECT_EQ(result->steps.back().task, "Masks");
}

TEST_F(DesignFlowFixture, DieIsDrcClean)
{
    EXPECT_TRUE(result->drcViolations.empty())
        << result->drcViolations.front();
}

TEST_F(DesignFlowFixture, AreaReportPlausibleFor1979)
{
    // Plate 2's prototype was a small multi-project die; our
    // standard-cell abstraction lands in the same order of
    // magnitude at lambda = 2.5 um.
    EXPECT_GT(result->report.dieAreaMm2(2.5), 0.5);
    EXPECT_LT(result->report.dieAreaMm2(2.5), 50.0);
    EXPECT_GT(result->report.transistors, 400u);
    EXPECT_EQ(result->report.padCount, result->pins);
    EXPECT_GT(result->report.rectCount, 100u);
}

TEST_F(DesignFlowFixture, CifParsesBackToSameGeometry)
{
    const layout::MaskLayout parsed = layout::readCif(result->cif, 2.5);
    EXPECT_EQ(parsed.shapeCount(), result->die.shapeCount());
    EXPECT_EQ(parsed.boundingBox(), result->die.boundingBox());
}

TEST_F(DesignFlowFixture, ChipNetlistRetained)
{
    ASSERT_NE(result->chipNetlist, nullptr);
    EXPECT_GT(result->chipNetlist->deviceCount(), 100u);
}

TEST(DesignFlow, ScalesWithCellCount)
{
    const DesignFlowResult small = runDesignFlow(2, 2);
    const DesignFlowResult big = runDesignFlow(4, 2);
    EXPECT_LT(small.report.transistors, big.report.transistors);
    EXPECT_LT(small.report.coreArea, big.report.coreArea);
    EXPECT_TRUE(small.drcViolations.empty());
    EXPECT_TRUE(big.drcViolations.empty());
}

TEST(DesignFlow, ParameterValidation)
{
    EXPECT_THROW(runDesignFlow(0, 2), std::logic_error);
    EXPECT_THROW(runDesignFlow(4, 0), std::logic_error);
}

} // namespace
} // namespace spm::flow
