/**
 * @file
 * Property tests for the SIMD-widened bit-sliced matcher: every
 * supported tier bit-identical to the reference across pattern
 * lengths 1..64 (the fused short path) and beyond (the sweep path),
 * wildcard densities and alphabet widths, plus the arena-reuse and
 * forced-tier dispatch invariants the batch layer and the benches
 * rely on.
 */

#include <gtest/gtest.h>

#include "core/reference.hh"
#include "core/simdpar.hh"
#include "tests/helpers.hh"

namespace spm::core
{
namespace
{

std::vector<SimdIsa>
supportedTiers()
{
    std::vector<SimdIsa> tiers{SimdIsa::Scalar};
    if (simdIsaSupported(SimdIsa::Sse2))
        tiers.push_back(SimdIsa::Sse2);
    if (simdIsaSupported(SimdIsa::Avx2))
        tiers.push_back(SimdIsa::Avx2);
    return tiers;
}

TEST(SimdParallel, PaperExample)
{
    SimdParallelMatcher sp;
    ReferenceMatcher ref;
    const auto text = test::paperText();
    const auto pattern = test::paperPattern();
    EXPECT_EQ(sp.match(text, pattern), ref.match(text, pattern));
}

TEST(SimdParallel, DegenerateShapes)
{
    SimdParallelMatcher sp;
    const std::vector<Symbol> text{1, 2, 3};
    EXPECT_EQ(sp.match(text, {}), std::vector<bool>(3, false));
    EXPECT_EQ(sp.match({}, {1}), std::vector<bool>());
    // Pattern longer than the text never matches.
    EXPECT_EQ(sp.match(text, {1, 2, 3, 1}), std::vector<bool>(3, false));
}

TEST(SimdParallel, EveryTierEveryShortLengthMatchesReference)
{
    ReferenceMatcher ref;
    for (const SimdIsa isa : supportedTiers()) {
        SimdParallelMatcher sp(isa);
        for (std::size_t k = 1; k <= 64; ++k) {
            const auto w = test::makeShapedWorkload(
                0x51D0 + k, 2, 192 + 3 * k, k, 20);
            EXPECT_EQ(sp.match(w.text, w.pattern),
                      ref.match(w.text, w.pattern))
                << simdIsaName(isa) << " k=" << k << " case "
                << w.caseId;
            EXPECT_TRUE(sp.lastShortPath()) << "k=" << k;
        }
    }
}

TEST(SimdParallel, LongPatternsTakeTheSweepPath)
{
    ReferenceMatcher ref;
    for (const SimdIsa isa : supportedTiers()) {
        SimdParallelMatcher sp(isa);
        for (const std::size_t k :
             {std::size_t(65), std::size_t(96), std::size_t(130),
              std::size_t(257)}) {
            const auto w = test::makeShapedWorkload(0x10C0 + k, 3,
                                                    600 + 2 * k, k, 15);
            EXPECT_EQ(sp.match(w.text, w.pattern),
                      ref.match(w.text, w.pattern))
                << simdIsaName(isa) << " k=" << k << " case "
                << w.caseId;
            EXPECT_FALSE(sp.lastShortPath()) << "k=" << k;
        }
    }
}

TEST(SimdParallel, WideAlphabetsMatchReference)
{
    // Alphabets beyond 8 bits take the wide transpose (one plane per
    // symbol bit, no byte narrowing).
    ReferenceMatcher ref;
    for (const SimdIsa isa : supportedTiers()) {
        SimdParallelMatcher sp(isa);
        for (const BitWidth bits : {BitWidth(9), BitWidth(12),
                                    BitWidth(15)}) {
            const auto w =
                test::makeShapedWorkload(0xA1F0 + bits, bits, 400, 9, 15);
            EXPECT_EQ(sp.match(w.text, w.pattern),
                      ref.match(w.text, w.pattern))
                << simdIsaName(isa) << " bits=" << int(bits) << " case "
                << w.caseId;
        }
    }
}

TEST(SimdParallel, RandomizedSweepAgainstReference)
{
    ReferenceMatcher ref;
    SimdParallelMatcher sp;
    for (std::uint64_t i = 0; i < 250; ++i) {
        const auto w = test::makeWorkload(i);
        EXPECT_EQ(sp.match(w.text, w.pattern),
                  ref.match(w.text, w.pattern))
            << "case " << w.caseId;
    }
}

TEST(SimdParallel, ArenaStabilizesAcrossCalls)
{
    SimdParallelMatcher sp;
    const auto w = test::makeShapedWorkload(0xAE4A, 2, 4096, 12, 10);
    sp.match(w.text, w.pattern);
    const std::size_t high = sp.arenaBytes();
    EXPECT_GT(high, 0u);
    for (int i = 0; i < 5; ++i)
        sp.match(w.text, w.pattern);
    // Same shape, same scratch: steady state allocates nothing new.
    EXPECT_EQ(sp.arenaBytes(), high);
}

TEST(SimdParallel, ForcedTierIsClampedAndNamed)
{
    SimdParallelMatcher scalar(SimdIsa::Scalar);
    EXPECT_EQ(scalar.isa(), SimdIsa::Scalar);
    EXPECT_EQ(scalar.name(), "simd-parallel-scalar");

    SimdParallelMatcher best;
    EXPECT_EQ(best.name(), "simd-parallel");
    EXPECT_TRUE(simdIsaSupported(best.isa()));

    // Forcing a tier the CPU lacks clamps down instead of crashing.
    SimdParallelMatcher forced(SimdIsa::Avx2);
    EXPECT_TRUE(simdIsaSupported(forced.isa()));
}

TEST(SimdParallel, PackedWordsAgreeWithUnpackedBits)
{
    SimdParallelMatcher sp;
    const auto w = test::makeShapedWorkload(0xBEEF, 3, 500, 7, 10);
    const std::vector<std::uint64_t> packed =
        sp.matchPacked(w.text, w.pattern);
    const std::size_t n = w.text.size();
    EXPECT_EQ(packed.size(), (n + 63) / 64);
    EXPECT_EQ(unpackResultBits(packed, n), sp.match(w.text, w.pattern));
    // Slack bits past position n-1 must stay zero: the sharded and
    // batch layers OR whole words without re-masking.
    if (n % 64 != 0) {
        EXPECT_EQ(packed.back() >> (n % 64), 0u);
    }
}

} // namespace
} // namespace spm::core
