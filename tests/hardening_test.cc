/**
 * @file
 * Hardening tests: failure paths and edge geometry the main suites
 * do not reach -- oscillation detection, degenerate simulators, and
 * boundary conditions in the layout pipeline.
 */

#include <gtest/gtest.h>

#include "core/behavioral.hh"
#include "gate/netlist.hh"
#include "layout/cif.hh"
#include "layout/masklayout.hh"
#include "systolic/engine.hh"
#include "util/bitvec.hh"
#include "util/strings.hh"

namespace spm
{
namespace
{

TEST(Hardening, RingOscillatorIsDetected)
{
    // A ring of three inverters never settles; the netlist must
    // report it instead of spinning forever.
    gate::Netlist net("ring");
    const auto a = net.addNode("a");
    const auto b = net.addNode("b");
    const auto c = net.addNode("c");
    const auto kick = net.addNode("kick");
    net.markInput(kick);
    net.addInverter(a, b);
    net.addInverter(b, c);
    // Close the loop through a NAND so an input can start it. While
    // kick is low the loop is forced to definite, stable levels;
    // raising kick turns it into a three-inverter ring.
    net.addGate(gate::DeviceKind::Nand2, c, kick, a);
    net.setInput(kick, gate::LogicValue::L, 0);
    net.settle(0); // a=H, b=L, c=H: definite and stable
    net.setInput(kick, gate::LogicValue::H, 1);
    EXPECT_THROW(net.settle(1), std::logic_error);
}

TEST(Hardening, StableFeedbackLoopSettles)
{
    // Cross-coupled NORs (an RS latch) contain feedback but settle;
    // the oscillation bound must not reject them.
    gate::Netlist net("rs");
    const auto s = net.addNode("s");
    const auto r = net.addNode("r");
    const auto q = net.addNode("q");
    const auto nq = net.addNode("nq");
    net.markInput(s);
    net.markInput(r);
    net.addGate(gate::DeviceKind::Nor2, r, nq, q);
    net.addGate(gate::DeviceKind::Nor2, s, q, nq);
    // Set: s high forces nq low, which lets q go high.
    net.setInput(s, gate::LogicValue::H, 0);
    net.setInput(r, gate::LogicValue::L, 0);
    net.settle(0);
    EXPECT_EQ(net.value(q), gate::LogicValue::H);
    EXPECT_EQ(net.value(nq), gate::LogicValue::L);
    // Reset.
    net.setInput(s, gate::LogicValue::L, 1);
    net.setInput(r, gate::LogicValue::H, 1);
    net.settle(1);
    EXPECT_EQ(net.value(q), gate::LogicValue::L);
    EXPECT_EQ(net.value(nq), gate::LogicValue::H);
}

TEST(Hardening, EngineWithNoCellsRuns)
{
    systolic::Engine engine;
    engine.run(5);
    EXPECT_EQ(engine.clock().beat(), 5u);
    EXPECT_DOUBLE_EQ(engine.lastUtilization(), 0.0);
}

TEST(Hardening, MatcherHandlesPatternEqualToText)
{
    core::BehavioralMatcher chip;
    const auto text = parseSymbols("ABCD");
    const auto r = chip.match(text, text);
    EXPECT_EQ(r, (std::vector<bool>{false, false, false, true}));
}

TEST(Hardening, MatcherHandlesSingleCharacterEverything)
{
    core::BehavioralMatcher chip;
    const auto r = chip.match(parseSymbols("A"), parseSymbols("A"));
    EXPECT_EQ(r, (std::vector<bool>{true}));
    const auto miss = chip.match(parseSymbols("A"), parseSymbols("B"));
    EXPECT_EQ(miss, (std::vector<bool>{false}));
}

TEST(Hardening, RepeatedMatcherUseIsIndependent)
{
    // A matcher instance must not leak state between calls.
    core::BehavioralMatcher chip(4);
    const auto t1 = parseSymbols("ABABAB");
    const auto p1 = parseSymbols("AB");
    const auto first = chip.match(t1, p1);
    chip.match(parseSymbols("CCCC"), parseSymbols("CC"));
    EXPECT_EQ(chip.match(t1, p1), first);
}

TEST(Hardening, CifHandlesOddAndNegativeGeometry)
{
    layout::MaskLayout cell("odd");
    cell.addRect(layout::Layer::Poly, layout::Rect{-7, -3, 2, 2});
    cell.addRect(layout::Layer::Metal, layout::Rect{1, 1, 4, 6});
    const auto parsed =
        layout::readCif(layout::writeCif(cell, 2.5), 2.5);
    ASSERT_EQ(parsed.shapeCount(), 2u);
    EXPECT_EQ(parsed.boundingBox(), cell.boundingBox());
}

TEST(Hardening, HugeLayoutRenderDegradesGracefully)
{
    layout::MaskLayout cell("huge");
    cell.addRect(layout::Layer::Metal, layout::Rect{0, 0, 100000, 3});
    EXPECT_NE(cell.renderAscii(2).find("too large"),
              std::string::npos);
}

TEST(Hardening, FeedPlanBoundaryBeats)
{
    // Beat 0 and the last planned beat must produce well-formed
    // tokens for every stream.
    const core::ChipFeedPlan plan(4, parseSymbols("AB"), 3);
    for (Beat u = 0; u < plan.totalBeats(); ++u) {
        (void)plan.patternAt(u);
        (void)plan.controlAt(u);
        (void)plan.stringAt(u, parseSymbols("ABC"));
        (void)plan.resultAt(u);
    }
    SUCCEED();
}

TEST(Hardening, BitVecWordBoundaryFlip)
{
    BitVec v(64, true); // exactly one word
    v.flip();
    EXPECT_EQ(v.popcount(), 0u);
    v.pushBack(true); // now 65 bits
    EXPECT_EQ(v.popcount(), 1u);
    EXPECT_TRUE(v.get(64));
}

} // namespace
} // namespace spm
