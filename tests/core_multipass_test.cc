/** @file Tests for the multipass long-pattern driver (Section 3.4). */

#include <gtest/gtest.h>

#include "core/behavioral.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "tests/helpers.hh"
#include "util/strings.hh"

namespace spm::core
{
namespace
{

TEST(Multipass, PatternLongerThanArray)
{
    // An 4-cell system matching a 10-character pattern: impossible in
    // one pass, handled by delaying the string between runs.
    MultipassMatcher mp(4);
    ReferenceMatcher ref;
    WorkloadGen gen(41, 2);
    const auto pat = gen.randomPattern(10, 0.2);
    const auto text = gen.textWithPlants(100, pat, 13);
    EXPECT_EQ(mp.match(text, pat), ref.match(text, pat));
}

TEST(Multipass, RunCountMatchesCoverageWindows)
{
    // n - k + 1 substring starts, m per run.
    MultipassMatcher mp(8);
    WorkloadGen gen(42, 2);
    const auto pat = gen.randomPattern(5);
    const auto text = gen.randomText(50);
    mp.match(text, pat);
    // 46 starts in windows of 8: 6 runs.
    EXPECT_EQ(mp.lastRuns(), 6u);
}

TEST(Multipass, SinglePassWhenPatternFits)
{
    MultipassMatcher mp(16);
    WorkloadGen gen(43, 2);
    const auto pat = gen.randomPattern(4);
    const auto text = gen.randomText(19); // 16 starts: one window
    mp.match(text, pat);
    EXPECT_EQ(mp.lastRuns(), 1u);
}

TEST(Multipass, ThroughputPenaltyVsRecirculation)
{
    // A too-small array pays dearly: covering a long text in 4-cell
    // windows takes many times the beats of a right-sized
    // recirculating chip processing the same text once.
    MultipassMatcher small(4);
    BehavioralMatcher sized(16);
    WorkloadGen gen(44, 2);
    const auto pat = gen.randomPattern(16);
    const auto text = gen.randomText(400);
    EXPECT_EQ(small.match(text, pat), sized.match(text, pat));
    EXPECT_GT(small.lastBeats(), 4 * sized.lastBeats())
        << "many small runs cost far more beats than one pass";
}

TEST(Multipass, SingleCellSystem)
{
    // Degenerate: a one-cell system resolves one substring per run.
    MultipassMatcher mp(1);
    ReferenceMatcher ref;
    const auto text = parseSymbols("ABCABA");
    const auto pat = parseSymbols("AB");
    EXPECT_EQ(mp.match(text, pat), ref.match(text, pat));
    EXPECT_EQ(mp.lastRuns(), 5u);
}

TEST(Multipass, DegenerateInputs)
{
    MultipassMatcher mp(4);
    EXPECT_TRUE(mp.match({}, parseSymbols("A")).empty());
    EXPECT_EQ(mp.match(parseSymbols("A"), parseSymbols("AB")),
              (std::vector<bool>{false}));
    EXPECT_EQ(mp.lastRuns(), 0u);
}

/** Property sweep across array sizes and pattern lengths. */
class MultipassProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MultipassProperty, MatchesReferenceOnRandomWorkloads)
{
    const std::uint64_t seed = GetParam();
    WorkloadGen gen(seed * 17 + 3, 1 + seed % 3);
    const std::size_t cells = 1 + gen.rng().nextBelow(6);
    const std::size_t len = 1 + gen.rng().nextBelow(3 * cells);
    const auto pat = gen.randomPattern(len, 0.25);
    const auto text = gen.textWithPlants(len + 50, pat, len + 2);

    MultipassMatcher mp(cells);
    ReferenceMatcher ref;
    EXPECT_EQ(mp.match(text, pat), ref.match(text, pat))
        << cells << " cells, pattern " << len;
}

INSTANTIATE_TEST_SUITE_P(RandomSweep, MultipassProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

} // namespace
} // namespace spm::core
