/** @file Unit tests for the deterministic RNG and workload generators. */

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace spm
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 24);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowZeroPanics)
{
    Rng r(3);
    EXPECT_THROW(r.nextBelow(0), std::logic_error);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng r(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 400; ++i) {
        const auto v = r.nextInRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng r(17);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += r.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(WorkloadGen, SymbolsRespectAlphabet)
{
    WorkloadGen gen(5, 2);
    EXPECT_EQ(gen.alphabetSize(), 4);
    for (int i = 0; i < 500; ++i)
        EXPECT_LT(gen.randomSymbol(), 4);
}

TEST(WorkloadGen, PatternWildcardDensity)
{
    WorkloadGen gen(5, 3);
    const auto pat = gen.randomPattern(4000, 0.5);
    std::size_t wild = 0;
    for (Symbol s : pat)
        wild += s == wildcardSymbol;
    EXPECT_NEAR(static_cast<double>(wild) / 4000.0, 0.5, 0.05);
}

TEST(WorkloadGen, NoWildcardsByDefault)
{
    WorkloadGen gen(6, 2);
    for (Symbol s : gen.randomPattern(200))
        EXPECT_NE(s, wildcardSymbol);
}

TEST(WorkloadGen, PlantsGuaranteeOccurrences)
{
    WorkloadGen gen(8, 2);
    const auto pat = gen.randomPattern(5, 0.3);
    const auto text = gen.textWithPlants(100, pat, 20);
    // Every planted offset must match the pattern.
    for (std::size_t at = 0; at + 5 <= 100; at += 20) {
        for (std::size_t j = 0; j < 5; ++j) {
            if (pat[j] != wildcardSymbol)
                EXPECT_EQ(text[at + j], pat[j]);
        }
    }
}

TEST(WorkloadGen, RejectsSillyAlphabet)
{
    EXPECT_THROW(WorkloadGen(1, 0), std::logic_error);
    EXPECT_THROW(WorkloadGen(1, 16), std::logic_error);
}

} // namespace
} // namespace spm
