/** @file Unit tests for running-aggregate statistics. */

#include <gtest/gtest.h>

#include "util/stats.hh"

namespace spm
{
namespace
{

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    for (double v : {3.0, 1.0, 4.0, 1.0, 5.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.8);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, VarianceMatchesDirectFormula)
{
    RunningStat s;
    const double vals[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double v : vals)
        s.sample(v);
    // Known population variance of this classic data set is 4.
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.sample(10);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.sample(7.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 7.5);
    EXPECT_DOUBLE_EQ(s.min(), 7.5);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

} // namespace
} // namespace spm
