/** @file Unit tests for counters, running stats and histograms. */

#include <gtest/gtest.h>

#include "util/stats.hh"

namespace spm
{
namespace
{

TEST(Counter, IncrementAndReset)
{
    Counter c("hits");
    EXPECT_EQ(c.value(), 0u);
    c.increment();
    c.increment(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.statName(), "hits");
}

TEST(RunningStat, MeanMinMax)
{
    RunningStat s;
    for (double v : {3.0, 1.0, 4.0, 1.0, 5.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.8);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, VarianceMatchesDirectFormula)
{
    RunningStat s;
    const double vals[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    for (double v : vals)
        s.sample(v);
    // Known population variance of this classic data set is 4.
    EXPECT_NEAR(s.variance(), 4.0, 1e-12);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.sample(10);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndEdges)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(0.0);   // bucket 0
    h.sample(1.99);  // bucket 0
    h.sample(2.0);   // bucket 1
    h.sample(9.99);  // bucket 4
    h.sample(10.0);  // overflow (hi is exclusive)
    h.sample(-0.1);  // underflow
    EXPECT_EQ(h.bucketValue(0), 2u);
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(4), 1u);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.samples(), 6u);
}

TEST(Histogram, BadParametersPanic)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::logic_error);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::logic_error);
}

TEST(StatGroup, RegisterAndDump)
{
    StatGroup g("chip");
    Counter &beats = g.addCounter("beats");
    beats.increment(3);
    g.addCounter("cells");
    EXPECT_EQ(g.counter("beats").value(), 3u);
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("chip.beats = 3"), std::string::npos);
    EXPECT_NE(dump.find("chip.cells = 0"), std::string::npos);
}

TEST(StatGroup, DuplicateAndMissingPanic)
{
    StatGroup g("g");
    g.addCounter("x");
    EXPECT_THROW(g.addCounter("x"), std::logic_error);
    EXPECT_THROW(g.counter("y"), std::logic_error);
}

} // namespace
} // namespace spm
