/**
 * @file
 * Tests for structural stuck-at fault collapsing: the equivalence and
 * dominance rules on hand-built tricky topologies (fanout branch
 * stems, XOR/XNOR, reconvergent fanout, inverter chains), and the
 * lockstep exactness check -- on the full standard-cell chip, every
 * member of an equivalence class must carry the same word-simulated
 * verdict, which makes collapsed-class coverage identical to
 * uncollapsed coverage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/gatechip.hh"
#include "fault/collapse.hh"
#include "fault/grade.hh"
#include "fault/wordsim.hh"
#include "gate/netlist.hh"
#include "util/rng.hh"

namespace spm::fault
{
namespace
{

using gate::DeviceKind;
using gate::Netlist;
using gate::NodeId;

/** Class id of a (node, stuck-at) site. */
std::uint32_t
classOf(const CollapseResult &cr, NodeId node, bool sa1)
{
    return cr.classOf[FaultSite{node, sa1}.index()];
}

TEST(Collapse, InverterChainCollapsesEndToEnd)
{
    Netlist net("chain");
    const NodeId in = net.addNode("in");
    net.markInput(in);
    NodeId prev = in;
    std::vector<NodeId> all{in};
    for (int i = 0; i < 3; ++i) {
        const NodeId out = net.addNode("n" + std::to_string(i));
        net.addInverter(prev, out);
        all.push_back(out);
        prev = out;
    }

    const CollapseResult cr = collapseFaults(net, {prev});
    EXPECT_EQ(cr.totalSites, 8u);
    // Both polarities merge through every stage: two classes total,
    // alternating polarity along the chain.
    EXPECT_EQ(cr.classCount, 2u);
    EXPECT_DOUBLE_EQ(cr.simRatio(), 4.0);
    EXPECT_EQ(classOf(cr, in, false), classOf(cr, all[1], true));
    EXPECT_EQ(classOf(cr, in, false), classOf(cr, all[2], false));
    EXPECT_EQ(classOf(cr, in, true), classOf(cr, all[3], false));
    EXPECT_NE(classOf(cr, in, false), classOf(cr, in, true));
}

TEST(Collapse, FanoutStemBlocksEquivalence)
{
    // a drives two inverters: a's faults are distinguishable from
    // either branch's (a test can observe the other branch), so no
    // rule may fire on the stem.
    Netlist net("fanout");
    const NodeId a = net.addNode("a");
    net.markInput(a);
    const NodeId o1 = net.addNode("o1");
    const NodeId o2 = net.addNode("o2");
    net.addInverter(a, o1);
    net.addInverter(a, o2);

    const CollapseResult cr = collapseFaults(net, {o1, o2});
    EXPECT_EQ(cr.totalSites, 6u);
    EXPECT_EQ(cr.classCount, 6u);
    EXPECT_EQ(cr.primeCount, 6u);
}

TEST(Collapse, NandMergesControllingInputsAndDominatesOutput)
{
    Netlist net("nand");
    const NodeId a = net.addNode("a");
    const NodeId b = net.addNode("b");
    net.markInput(a);
    net.markInput(b);
    const NodeId out = net.addNode("out");
    net.addGate(DeviceKind::Nand2, a, b, out);

    const CollapseResult cr = collapseFaults(net, {out});
    // a/0 == b/0 == out/1 (controlling input forces the output).
    EXPECT_EQ(classOf(cr, a, false), classOf(cr, b, false));
    EXPECT_EQ(classOf(cr, a, false), classOf(cr, out, true));
    EXPECT_EQ(cr.classCount, 4u);
    // out/0 is dominated by the input s-a-1 faults: dropped from the
    // prime (test-generation) set but still simulated.
    EXPECT_EQ(cr.primeCount, 3u);
    EXPECT_TRUE((cr.dominated[FaultSite{out, false}.index()]));
    EXPECT_FALSE((cr.dominated[FaultSite{out, true}.index()]));
}

TEST(Collapse, XorAndXnorCollapseNothing)
{
    for (const DeviceKind kind : {DeviceKind::Xor2, DeviceKind::Xnor2}) {
        Netlist net("xorish");
        const NodeId a = net.addNode("a");
        const NodeId b = net.addNode("b");
        net.markInput(a);
        net.markInput(b);
        const NodeId out = net.addNode("out");
        net.addGate(kind, a, b, out);

        const CollapseResult cr = collapseFaults(net, {out});
        // No controlling value: every fault stays its own class and
        // nothing is dominated.
        EXPECT_EQ(cr.classCount, 6u);
        EXPECT_EQ(cr.primeCount, 6u);
    }
}

TEST(Collapse, ReconvergentFanoutOnlyMergesTheFreeBranch)
{
    // a ---------+----> NAND(a, b) -> out
    //            \--> inv -> b
    // The stem a has fanout 2: neither the inverter nor the NAND may
    // merge through it. b is fanout-free, so only b/0 == out/1 fires.
    Netlist net("reconv");
    const NodeId a = net.addNode("a");
    net.markInput(a);
    const NodeId b = net.addNode("b");
    net.addInverter(a, b);
    const NodeId out = net.addNode("out");
    net.addGate(DeviceKind::Nand2, a, b, out);

    const CollapseResult cr = collapseFaults(net, {out});
    EXPECT_EQ(cr.totalSites, 6u);
    EXPECT_EQ(cr.classCount, 5u);
    EXPECT_EQ(classOf(cr, b, false), classOf(cr, out, true));
    EXPECT_NE(classOf(cr, a, false), classOf(cr, out, true));
    EXPECT_NE(classOf(cr, a, false), classOf(cr, b, true));
}

TEST(Collapse, ObservedInputNeverMerges)
{
    // The tester probes "in" directly: its faults are distinguishable
    // from the inverter output's by construction.
    Netlist net("observed");
    const NodeId in = net.addNode("in");
    net.markInput(in);
    const NodeId out = net.addNode("out");
    net.addInverter(in, out);

    const CollapseResult cr = collapseFaults(net, {in, out});
    EXPECT_EQ(cr.classCount, 4u);
}

TEST(Collapse, PassGatesCollapseNothing)
{
    Netlist net("dynamic");
    const NodeId in = net.addNode("in");
    const NodeId ctl = net.addNode("ctl");
    net.markInput(in);
    net.markInput(ctl);
    const NodeId out = net.addNode("out");
    net.addPassGate(in, ctl, out);

    const CollapseResult cr = collapseFaults(net, {out});
    EXPECT_EQ(cr.classCount, 6u);
    EXPECT_EQ(cr.primeCount, 6u);
}

TEST(Collapse, ClassMembersPartitionTheUniverse)
{
    core::GateChip chip(4, 2);
    const CollapseResult cr =
        collapseFaults(chip.netlist(), {chip.resultNode()});
    ASSERT_GE(cr.simRatio(), 1.5);

    std::vector<std::uint8_t> seen(cr.totalSites, 0);
    for (std::uint32_t c = 0; c < cr.classCount; ++c) {
        const std::vector<std::uint32_t> members = cr.classMembers(c);
        ASSERT_FALSE(members.empty());
        bool has_rep = false;
        for (const std::uint32_t s : members) {
            EXPECT_FALSE(seen[s]);
            seen[s] = 1;
            EXPECT_EQ(cr.classOf[s], c);
            has_rep |= s == cr.representative[c];
        }
        EXPECT_TRUE(has_rep);
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1),
              static_cast<long>(cr.totalSites));
}

/**
 * The lockstep exactness check on the standard-cell chip: simulate
 * the ENTIRE uncollapsed universe word-parallel against a captured
 * workload and require every member of an equivalence class to carry
 * the representative's verdict. Collapsed-class coverage then equals
 * uncollapsed coverage by construction -- asserted at the end.
 */
TEST(Collapse, LockstepClassVerdictsOnStdcellChip)
{
    GradeConfig cfg;
    cfg.cells = 4;
    cfg.textLen = 24;
    cfg.workloads = 1;
    cfg.crossCheckSamples = 0;

    core::GateChip probe(cfg.cells, cfg.alphabetBits);
    const CollapseResult cr =
        collapseFaults(probe.netlist(), {probe.resultNode()});

    WorkloadGen gen(cfg.seed, cfg.alphabetBits);
    std::vector<Symbol> pattern =
        gen.randomPattern(cfg.patternLen, cfg.wildcardProb);
    std::vector<Symbol> text =
        gen.textWithPlants(cfg.textLen, pattern, 8);
    const GradedWorkload w =
        captureWorkload(cfg, std::move(pattern), std::move(text));

    // Verdict for every site of the universe, 64 lanes at a time.
    std::vector<std::uint8_t> verdict(cr.totalSites, 0);
    WordFaultSim sim(probe.netlist());
    std::vector<FaultSite> batch;
    std::vector<std::uint32_t> lanes;
    auto flush = [&] {
        const WordFaultSim::BatchResult r =
            sim.run(w.trace, batch, w.goldenPerOp);
        for (std::size_t k = 0; k < batch.size(); ++k)
            verdict[lanes[k]] = (r.detected >> k) & 1;
        batch.clear();
        lanes.clear();
    };
    for (std::uint32_t s = 0; s < cr.totalSites; ++s) {
        batch.push_back(FaultSite::fromIndex(s));
        lanes.push_back(s);
        if (batch.size() == 64)
            flush();
    }
    if (!batch.empty())
        flush();

    std::size_t detected_sites = 0;
    std::size_t detected_classes = 0;
    for (std::uint32_t c = 0; c < cr.classCount; ++c) {
        const std::vector<std::uint32_t> members = cr.classMembers(c);
        const std::uint8_t rep_verdict = verdict[cr.representative[c]];
        for (const std::uint32_t s : members)
            ASSERT_EQ(verdict[s], rep_verdict)
                << FaultSite::fromIndex(s).describe(probe.netlist())
                << " disagrees with its class representative "
                << FaultSite::fromIndex(cr.representative[c])
                       .describe(probe.netlist());
        detected_classes += rep_verdict;
        detected_sites += rep_verdict ? members.size() : 0;
    }
    ASSERT_GT(detected_classes, 0u);
    // Grading representatives and expanding through the classes must
    // give exactly the coverage of grading every site directly.
    const std::size_t direct = static_cast<std::size_t>(
        std::count(verdict.begin(), verdict.end(), 1));
    EXPECT_EQ(detected_sites, direct);
}

} // namespace
} // namespace spm::fault
