/** @file Unit tests for the beat clock, latches and delay lines. */

#include <gtest/gtest.h>

#include "systolic/clock.hh"
#include "systolic/latch.hh"

namespace spm::systolic
{
namespace
{

TEST(Clock, StartsAtBeatZeroPhi1)
{
    Clock c;
    EXPECT_EQ(c.beat(), 0u);
    EXPECT_EQ(c.phase(), Phase::Phi1);
    EXPECT_EQ(c.timeNow(), 0u);
    EXPECT_EQ(c.beatPeriod(), prototypeBeatPs);
}

TEST(Clock, PhasesAlternateWithinBeat)
{
    Clock c(1000);
    c.advancePhase();
    EXPECT_EQ(c.phase(), Phase::Phi2);
    EXPECT_EQ(c.beat(), 0u);
    EXPECT_EQ(c.timeNow(), 500u);
    c.advancePhase();
    EXPECT_EQ(c.phase(), Phase::Phi1);
    EXPECT_EQ(c.beat(), 1u);
    EXPECT_EQ(c.timeNow(), 1000u);
}

TEST(Clock, AdvanceBeatFromEitherPhase)
{
    Clock c(100);
    c.advanceBeat();
    EXPECT_EQ(c.beat(), 1u);
    EXPECT_EQ(c.phase(), Phase::Phi1);
    c.advancePhase(); // now in Phi2
    c.advanceBeat();
    EXPECT_EQ(c.beat(), 2u);
    EXPECT_EQ(c.phase(), Phase::Phi1);
}

TEST(Clock, PrototypePeriodIs250ns)
{
    Clock c;
    c.advanceBeat();
    c.advanceBeat();
    // Two beats at 250 ns = 500,000 ps.
    EXPECT_EQ(c.timeNow(), 500'000u);
}

TEST(Clock, StallAccumulatesAndClearsOnBeat)
{
    Clock c(100);
    c.stall(40);
    c.stall(10);
    EXPECT_EQ(c.stalledTime(), 50u);
    EXPECT_EQ(c.timeNow(), 50u);
    c.advanceBeat();
    EXPECT_EQ(c.stalledTime(), 0u);
}

TEST(Clock, ResetRestoresInitialState)
{
    Clock c(100);
    c.advanceBeat();
    c.stall(5);
    c.reset();
    EXPECT_EQ(c.beat(), 0u);
    EXPECT_EQ(c.timeNow(), 0u);
}

TEST(Clock, ZeroPeriodPanics)
{
    EXPECT_THROW(Clock(0), std::logic_error);
}

TEST(Latch, ReadSeesOnlyCommittedWrites)
{
    Latch<int> l(1);
    EXPECT_EQ(l.read(), 1);
    l.write(2);
    EXPECT_EQ(l.read(), 1) << "write must not be visible before commit";
    l.commit();
    EXPECT_EQ(l.read(), 2);
}

TEST(Latch, CommitWithoutWriteHolds)
{
    Latch<int> l(7);
    l.commit();
    EXPECT_EQ(l.read(), 7);
}

TEST(Latch, ForceSetsBothSides)
{
    Latch<int> l;
    l.force(9);
    EXPECT_EQ(l.read(), 9);
    l.commit();
    EXPECT_EQ(l.read(), 9);
}

TEST(Token, DefaultInvalid)
{
    Token<int> t;
    EXPECT_FALSE(t.valid);
    Token<int> v(3);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.value, 3);
}

TEST(DelayLine, DelaysByLength)
{
    DelayLine<int> line(3);
    std::vector<int> seen;
    for (int i = 1; i <= 6; ++i) {
        line.write(i);
        line.commit();
        seen.push_back(line.read());
    }
    // Values emerge 3 commits after being written.
    EXPECT_EQ(seen[2], 1);
    EXPECT_EQ(seen[3], 2);
    EXPECT_EQ(seen[5], 4);
}

TEST(DelayLine, LengthOneIsSingleBeat)
{
    DelayLine<int> line(1);
    line.write(5);
    line.commit();
    EXPECT_EQ(line.read(), 5);
}

TEST(DelayLine, FlushClears)
{
    DelayLine<int> line(2);
    line.write(1);
    line.commit();
    line.flush();
    line.commit();
    EXPECT_EQ(line.read(), 0);
}

TEST(DelayLine, ZeroLengthPanics)
{
    EXPECT_THROW(DelayLine<int>(0), std::logic_error);
}

} // namespace
} // namespace spm::systolic
