/** @file Tests for PLA generation (Section 3.3.3 alternative). */

#include <gtest/gtest.h>

#include "gate/pla.hh"

namespace spm::gate
{
namespace
{

constexpr LogicValue L = LogicValue::L;
constexpr LogicValue H = LogicValue::H;

/** Harness: instantiate a spec and evaluate it for every input. */
class PlaHarness
{
  public:
    explicit PlaHarness(const PlaSpec &s) : spec(s)
    {
        for (unsigned i = 0; i < spec.numInputs; ++i) {
            inputs.push_back(net.addNode("in" + std::to_string(i)));
            net.markInput(inputs.back());
        }
        for (unsigned o = 0; o < spec.numOutputs; ++o)
            outputs.push_back(net.addNode("out" + std::to_string(o)));
        buildPla(net, "pla", spec, inputs, outputs);
    }

    std::uint32_t
    evaluate(std::uint32_t in_mask)
    {
        ++now;
        for (unsigned i = 0; i < spec.numInputs; ++i) {
            net.setInput(inputs[i],
                         (in_mask & (1u << i)) ? H : L, now);
        }
        net.settle(now);
        std::uint32_t out = 0;
        for (unsigned o = 0; o < spec.numOutputs; ++o) {
            if (net.value(outputs[o]) == H)
                out |= 1u << o;
        }
        return out;
    }

    PlaSpec spec;
    Netlist net;
    std::vector<NodeId> inputs;
    std::vector<NodeId> outputs;
    Picoseconds now = 0;
};

TEST(PlaSpec, EvaluateMatchesTermSemantics)
{
    // out0 = a & ~b ; out1 = b.
    PlaSpec spec;
    spec.numInputs = 2;
    spec.numOutputs = 2;
    spec.terms = {{0b11, 0b01, 0b01}, {0b10, 0b10, 0b10}};
    spec.check();
    EXPECT_EQ(spec.evaluate(0b00), 0u);
    EXPECT_EQ(spec.evaluate(0b01), 0b01u);
    EXPECT_EQ(spec.evaluate(0b10), 0b10u);
    EXPECT_EQ(spec.evaluate(0b11), 0b10u);
}

TEST(PlaSpec, CheckRejectsMalformedTerms)
{
    PlaSpec spec;
    spec.numInputs = 2;
    spec.numOutputs = 1;
    spec.terms = {{0b100, 0, 1}}; // tests input 2 of 2
    EXPECT_THROW(spec.check(), std::logic_error);
    spec.terms = {{0b01, 0b11, 1}}; // value outside care
    EXPECT_THROW(spec.check(), std::logic_error);
    spec.terms = {{0b01, 0b01, 0}}; // feeds nothing
    EXPECT_THROW(spec.check(), std::logic_error);
}

TEST(Pla, HardwareMatchesSoftwareExhaustively)
{
    // A 4-input, 2-output spec with shared and single-literal terms.
    PlaSpec spec;
    spec.numInputs = 4;
    spec.numOutputs = 2;
    spec.terms = {
        {0b0011, 0b0011, 0b01}, // a b        -> out0
        {0b1100, 0b0100, 0b11}, // c ~d       -> both
        {0b1000, 0b1000, 0b10}, // d          -> out1
        {0b0110, 0b0000, 0b01}, // ~b ~c      -> out0
    };
    spec.check();
    PlaHarness h(spec);
    for (std::uint32_t in = 0; in < 16; ++in)
        EXPECT_EQ(h.evaluate(in), spec.evaluate(in)) << "in=" << in;
}

TEST(Pla, AccumulatorSpecImplementsCellAlgorithm)
{
    const PlaSpec spec = accumulatorPlaSpec();
    PlaHarness h(spec);
    for (std::uint32_t in = 0; in < 32; ++in) {
        const bool lambda = in & 1;
        const bool x = in & 2;
        const bool d = in & 4;
        const bool r = in & 8;
        const bool t = in & 16;
        const bool tm = t && (x || d);
        const bool want_rout = lambda ? tm : r;
        const bool want_tnext = lambda || tm;
        const std::uint32_t got = h.evaluate(in);
        EXPECT_EQ((got & 1) != 0, want_rout) << "in=" << in;
        EXPECT_EQ((got & 2) != 0, want_tnext) << "in=" << in;
    }
}

TEST(Pla, TransistorEstimateCountsPlanes)
{
    PlaSpec spec;
    spec.numInputs = 2;
    spec.numOutputs = 1;
    spec.terms = {{0b11, 0b11, 1}};
    spec.check();
    // 2 inverters (4) + 1 term pullup + 1 output pullup + 2 AND
    // literals + 1 OR connection.
    EXPECT_EQ(spec.transistorEstimate(), 4u + 1 + 1 + 2 + 1);
}

TEST(Pla, AccumulatorPlaCostsMoreThanRandomLogic)
{
    // Section 3.3.3: "The small size of the pattern matcher cells
    // ... made the use of random logic possible." The PLA version of
    // the accumulator core costs more transistors than the ~20 the
    // random-logic gates need.
    const PlaSpec spec = accumulatorPlaSpec();
    EXPECT_GT(spec.transistorEstimate(), 20u);
}

} // namespace
} // namespace spm::gate
