/**
 * @file
 * Property tests for the levelized gate-sim fast path: the compiled
 * flat pass must be observably identical -- node for node, after
 * every settle -- to the event-driven Netlist::settle, on every
 * standard cell, under stuck-at faults and charge decay, and on the
 * full comparator/accumulator chip.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/gatechip.hh"
#include "core/reference.hh"
#include "gate/levelized.hh"
#include "gate/netlist.hh"
#include "gate/stdcells.hh"
#include "tests/helpers.hh"
#include "util/rng.hh"

namespace spm::gate
{
namespace
{

/** Assert every node of @p a equals the same node of @p b. */
void
expectSameNodes(const Netlist &a, const Netlist &b, const char *when)
{
    ASSERT_EQ(a.nodeCount(), b.nodeCount());
    for (NodeId id = 0; id < a.nodeCount(); ++id)
        ASSERT_EQ(a.value(id), b.value(id))
            << when << ": node '" << a.nodeName(id) << "' diverged";
}

/**
 * Build the same circuit twice via @p build (which returns the
 * external input nodes), attach the fast path to one copy, drive both
 * with @p steps random input vectors, and compare all nodes after
 * every settle.
 */
void
lockstepCheck(const std::function<std::vector<NodeId>(Netlist &)> &build,
              unsigned steps, std::uint64_t seed)
{
    Netlist plain("plain");
    Netlist fast("fast");
    const std::vector<NodeId> in_plain = build(plain);
    const std::vector<NodeId> in_fast = build(fast);
    ASSERT_EQ(in_plain.size(), in_fast.size());

    LevelizedNetlist accel(fast);
    accel.attach();

    Rng rng(seed);
    Picoseconds now = 0;
    for (unsigned s = 0; s < steps; ++s) {
        now += 1000;
        for (std::size_t i = 0; i < in_plain.size(); ++i) {
            const LogicValue v = rng.nextBool() ? LogicValue::H
                                                : LogicValue::L;
            plain.setInput(in_plain[i], v, now);
            fast.setInput(in_fast[i], v, now);
        }
        plain.settle(now);
        fast.settle(now);
        expectSameNodes(plain, fast, "after settle");
    }
}

TEST(Levelized, DynamicShiftStageMatchesEventDriven)
{
    lockstepCheck(
        [](Netlist &net) {
            const NodeId in = net.addNode("in");
            const NodeId clk = net.addNode("clk");
            net.markInput(in);
            net.markInput(clk);
            buildShiftStage(net, "sr", in, clk);
            return std::vector<NodeId>{in, clk};
        },
        200, 0x51A6E);
}

TEST(Levelized, StaticShiftStageFeedbackFallsBack)
{
    // The static stage's regeneration loop is a static-gate cycle:
    // it must be detected and left to the event-driven fallback.
    Netlist net("static");
    const NodeId in = net.addNode("in");
    const NodeId clk = net.addNode("clk");
    const NodeId shift = net.addNode("shift");
    net.markInput(in);
    net.markInput(clk);
    net.markInput(shift);
    buildStaticShiftStage(net, "ssr", in, clk, shift);
    LevelizedNetlist accel(net);
    EXPECT_GT(accel.fallbackCount(), 0u);
    EXPECT_GT(accel.orderedCount(), 0u);

    lockstepCheck(
        [](Netlist &n) {
            const NodeId i = n.addNode("in");
            const NodeId c = n.addNode("clk");
            const NodeId s = n.addNode("shift");
            n.markInput(i);
            n.markInput(c);
            n.markInput(s);
            buildStaticShiftStage(n, "ssr", i, c, s);
            return std::vector<NodeId>{i, c, s};
        },
        300, 0x57A71C);
}

TEST(Levelized, ComparatorAndAccumulatorCellsMatch)
{
    for (const bool positive : {true, false}) {
        lockstepCheck(
            [positive](Netlist &net) {
                ComparatorPorts ports;
                ports.pIn = net.addNode("pIn");
                ports.sIn = net.addNode("sIn");
                ports.dIn = net.addNode("dIn");
                ports.pOut = net.addNode("pOut");
                ports.sOut = net.addNode("sOut");
                ports.dOut = net.addNode("dOut");
                const NodeId clk = net.addNode("clk");
                for (NodeId n : {ports.pIn, ports.sIn, ports.dIn, clk})
                    net.markInput(n);
                buildComparator(net, "cmp", ports, clk, positive);
                return std::vector<NodeId>{ports.pIn, ports.sIn,
                                           ports.dIn, clk};
            },
            250, positive ? 0xC0: 0xC1);

        // The accumulator's master-slave loop is only race-free under
        // the two-phase discipline (phases never overlap), so its
        // clocks are sequenced properly while the data inputs are
        // randomized per beat.
        auto build = [positive](Netlist &net) {
            AccumulatorPorts ports;
            ports.lambdaIn = net.addNode("lIn");
            ports.xIn = net.addNode("xIn");
            ports.dIn = net.addNode("dIn");
            ports.rIn = net.addNode("rIn");
            ports.lambdaOut = net.addNode("lOut");
            ports.xOut = net.addNode("xOut");
            ports.rOut = net.addNode("rOut");
            const NodeId clkA = net.addNode("clkA");
            const NodeId clkB = net.addNode("clkB");
            for (NodeId n : {ports.lambdaIn, ports.xIn, ports.dIn,
                             ports.rIn, clkA, clkB})
                net.markInput(n);
            buildAccumulator(net, "acc", ports, clkA, clkB, positive);
            return std::vector<NodeId>{ports.lambdaIn, ports.xIn,
                                       ports.dIn, ports.rIn, clkA,
                                       clkB};
        };
        Netlist plain("plain");
        Netlist fast("fast");
        const auto in_p = build(plain);
        const auto in_f = build(fast);
        LevelizedNetlist accel(fast);
        accel.attach();

        Rng rng(positive ? 0xAC0 : 0xAC1);
        Picoseconds now = 0;
        for (unsigned beat = 0; beat < 150; ++beat) {
            LogicValue data[4];
            for (LogicValue &v : data)
                v = rng.nextBool() ? LogicValue::H : LogicValue::L;
            // One beat: data settles, phi-A pulse, then phi-B pulse.
            const LogicValue seq[4][2] = {{LogicValue::H, LogicValue::L},
                                          {LogicValue::L, LogicValue::L},
                                          {LogicValue::L, LogicValue::H},
                                          {LogicValue::L, LogicValue::L}};
            for (const auto &phase : seq) {
                now += 250;
                for (std::size_t i = 0; i < 4; ++i) {
                    plain.setInput(in_p[i], data[i], now);
                    fast.setInput(in_f[i], data[i], now);
                }
                plain.setInput(in_p[4], phase[0], now);
                fast.setInput(in_f[4], phase[0], now);
                plain.setInput(in_p[5], phase[1], now);
                fast.setInput(in_f[5], phase[1], now);
                plain.settle(now);
                fast.settle(now);
                expectSameNodes(plain, fast, "accumulator phase");
            }
        }
    }
}

TEST(Levelized, StuckAtFaultsPropagateIdentically)
{
    Netlist plain("plain");
    Netlist fast("fast");
    auto build = [](Netlist &net) {
        ComparatorPorts ports;
        ports.pIn = net.addNode("pIn");
        ports.sIn = net.addNode("sIn");
        ports.dIn = net.addNode("dIn");
        ports.pOut = net.addNode("pOut");
        ports.sOut = net.addNode("sOut");
        ports.dOut = net.addNode("dOut");
        const NodeId clk = net.addNode("clk");
        for (NodeId n : {ports.pIn, ports.sIn, ports.dIn, clk})
            net.markInput(n);
        buildComparator(net, "cmp", ports, clk, true);
        return std::vector<NodeId>{ports.pIn, ports.sIn, ports.dIn,
                                   clk};
    };
    const auto in_p = build(plain);
    const auto in_f = build(fast);
    LevelizedNetlist accel(fast);
    accel.attach();

    const NodeId victim_p = plain.findNode("cmp.eq");
    const NodeId victim_f = fast.findNode("cmp.eq");
    ASSERT_NE(victim_p, invalidNode);

    Rng rng(0xFA17);
    Picoseconds now = 0;
    for (unsigned s = 0; s < 120; ++s) {
        now += 1000;
        if (s == 40) {
            plain.forceStuckAt(victim_p, LogicValue::L, now);
            fast.forceStuckAt(victim_f, LogicValue::L, now);
        }
        if (s == 80) {
            plain.clearStuckAt(victim_p);
            fast.clearStuckAt(victim_f);
        }
        for (std::size_t i = 0; i < in_p.size(); ++i) {
            const LogicValue v = rng.nextBool() ? LogicValue::H
                                                : LogicValue::L;
            plain.setInput(in_p[i], v, now);
            fast.setInput(in_f[i], v, now);
        }
        plain.settle(now);
        fast.settle(now);
        expectSameNodes(plain, fast, "under stuck-at");
    }
}

TEST(Levelized, ChargeDecayIdentical)
{
    auto build = [](Netlist &net) {
        const NodeId in = net.addNode("in");
        const NodeId clk = net.addNode("clk");
        net.markInput(in);
        net.markInput(clk);
        buildShiftStage(net, "sr", in, clk);
        return std::vector<NodeId>{in, clk};
    };
    Netlist plain("plain");
    Netlist fast("fast");
    const auto in_p = build(plain);
    const auto in_f = build(fast);
    LevelizedNetlist accel(fast);
    accel.attach();

    // Latch a value, drop the clock, then decay past retention.
    Picoseconds now = 1000;
    for (Netlist *net : {&plain, &fast}) {
        const auto &in = net == &plain ? in_p : in_f;
        net->setInput(in[0], LogicValue::H, now);
        net->setInput(in[1], LogicValue::H, now);
        net->settle(now);
        net->setInput(in[1], LogicValue::L, now + 100);
        net->settle(now + 100);
    }
    expectSameNodes(plain, fast, "after latch");

    const Picoseconds later = now + 100 + 2 * defaultRetentionPs;
    const std::size_t d_p = plain.decayCharge(later);
    const std::size_t d_f = fast.decayCharge(later);
    EXPECT_EQ(d_p, d_f);
    EXPECT_GT(d_p, 0u);
    expectSameNodes(plain, fast, "after decay");
}

TEST(Levelized, FullChipLockstep)
{
    // Two 3-cell, 2-bit chips fed the identical pseudo-random pin
    // stream; every node compared every beat. This is the chip the
    // service's gate rung builds, warm-up X states and all.
    core::GateChip plain(3, 2);
    core::GateChip fast(3, 2);
    fast.enableLevelized();
    ASSERT_NE(fast.levelized(), nullptr);

    Rng rng(0xC41F);
    for (unsigned beat = 0; beat < 160; ++beat) {
        const bool pat0 = rng.nextBool();
        const bool pat1 = rng.nextBool();
        const bool str0 = rng.nextBool();
        const bool str1 = rng.nextBool();
        const bool lambda = rng.nextBool(0.3);
        const bool x = rng.nextBool(0.2);
        const bool rin = rng.nextBool();
        for (core::GateChip *chip : {&plain, &fast}) {
            chip->setPatternBit(0, pat0);
            chip->setPatternBit(1, pat1);
            chip->setStringBit(0, str0);
            chip->setStringBit(1, str1);
            chip->setControl(lambda, x);
            chip->setResultIn(rin);
            chip->tick();
        }
        expectSameNodes(plain.netlist(), fast.netlist(), "chip beat");
    }
    // The fast path must actually have taken over and gated work.
    EXPECT_GT(fast.levelized()->flatEvals(), 0u);
    EXPECT_GT(fast.levelized()->gatedSkips(), 0u);
}

TEST(Levelized, GateLevelMatcherBitIdenticalAndCheaper)
{
    core::ReferenceMatcher ref;
    for (std::uint64_t i = 0; i < 4; ++i) {
        const auto w = test::makeWorkload(0x6A7E + i);
        const std::size_t cells = w.pattern.size();

        core::GateLevelMatcher event(cells, w.bits);
        core::GateLevelMatcher lev(cells, w.bits);
        lev.setUseLevelized(true);

        const auto r_event = event.match(w.text, w.pattern);
        const auto r_lev = lev.match(w.text, w.pattern);
        EXPECT_EQ(r_lev, r_event) << "workload " << i;
        EXPECT_EQ(r_lev, ref.match(w.text, w.pattern)) << "workload " << i;
        EXPECT_EQ(lev.lastBeats(), event.lastBeats());
        // The levelized pass must not do more device evaluations than
        // the event-driven worklist it replaces.
        EXPECT_LE(lev.lastEvals(), event.lastEvals()) << "workload " << i;
    }
}

TEST(Levelized, RejectsNetlistGrownAfterCompile)
{
    Netlist net("grow");
    const NodeId a = net.addNode("a");
    const NodeId b = net.addNode("b");
    net.markInput(a);
    net.addInverter(a, b);
    LevelizedNetlist accel(net);
    accel.attach();
    const NodeId c = net.addNode("c");
    net.addInverter(b, c);
    net.setInput(a, LogicValue::H, 10);
    EXPECT_THROW(net.settle(10), std::logic_error);
}

} // namespace
} // namespace spm::gate
