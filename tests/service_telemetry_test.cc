/**
 * @file
 * Service-level telemetry tests: the registry-backed serving metrics,
 * the per-shard flight recorder, and the headline observability
 * property — a forced watchdog trip dumps the last chunks of history
 * with a replayable conformance case ID for the triggering chunk.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "conformance/case.hh"
#include "core/reference.hh"
#include "service/service.hh"
#include "telemetry/metrics.hh"
#include "util/rng.hh"

namespace spm::service
{
namespace
{

/** Eats the whole beat budget without producing a result. */
class WedgedBackend : public ServiceBackend
{
  public:
    std::string name() const override { return "wedged-fake"; }

    WindowResult matchWindow(const std::vector<Symbol> &,
                             const std::vector<Symbol> &,
                             BeatWatchdog &dog) override
    {
        WindowResult wr;
        while (dog.tick(1))
            ++wr.beats;
        wr.note = "wedged: consumed the whole budget";
        return wr;
    }
};

ServiceConfig
smallConfig()
{
    ServiceConfig cfg;
    cfg.cells = 8;
    cfg.alphabetBits = 2;
    cfg.chunkChars = 16;
    cfg.shardId = 3;
    return cfg;
}

MatchRequest
seededRequest(std::uint64_t id, std::uint64_t seed, std::size_t text_len,
              std::size_t pattern_len)
{
    WorkloadGen gen(seed, 2);
    MatchRequest req;
    req.id = id;
    req.pattern = gen.randomPattern(pattern_len, 0.25);
    req.text = gen.textWithPlants(text_len, req.pattern,
                                  pattern_len * 2 + 1);
    return req;
}

/** The "case=<id>" token of the dump's trigger line, "" if absent. */
std::string
extractCaseId(const std::string &dump)
{
    const std::size_t pos = dump.rfind("case=");
    if (pos == std::string::npos)
        return "";
    std::size_t end = pos + 5;
    while (end < dump.size() && !std::isspace(dump[end]))
        ++end;
    return dump.substr(pos + 5, end - (pos + 5));
}

TEST(ServiceTelemetry, WatchdogTripDumpsReplayableCaseId)
{
    // The acceptance criterion: wedge the only rung, force a watchdog
    // trip, and the flight dump must identify the triggering chunk by
    // a conformance case ID that decodeCase can replay.
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<WedgedBackend>());
    MatchService svc(smallConfig(), std::move(ladder));

    std::vector<std::string> dumps;
    svc.flightRecorder().setDumpSink(
        [&dumps](const std::string &d) { dumps.push_back(d); });

    const MatchRequest req = seededRequest(21, 11, 40, 4);
    const MatchResponse resp = svc.serve(req);
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.error.code, ErrorCode::DeadlineExceeded);

    ASSERT_FALSE(dumps.empty());
    const std::string &dump = dumps.front();
    EXPECT_EQ(svc.flightRecorder().lastDump(), dumps.back());
    EXPECT_GE(svc.flightRecorder().tripCount(), 1u);

    // Structured fields: kind token, shard id from the config, the
    // error-taxonomy code, and a beat index on the trigger line.
    EXPECT_NE(dump.find("watchdog_trip"), std::string::npos);
    EXPECT_NE(dump.find("shard=3"), std::string::npos);
    EXPECT_NE(dump.find("code=deadline_exceeded"), std::string::npos);
    EXPECT_NE(dump.find("beat="), std::string::npos);
    EXPECT_NE(dump.find("<-- trigger"), std::string::npos);

    // The case ID replays: it decodes to the same alphabet and
    // pattern the wedged chunk was matching, with a non-empty window.
    const std::string case_id = extractCaseId(dump);
    ASSERT_NE(case_id, "");
    EXPECT_EQ(case_id.rfind("l1:", 0), 0u) << case_id;
    const std::optional<conformance::Case> c =
        conformance::decodeCase(case_id);
    ASSERT_TRUE(c.has_value()) << case_id;
    EXPECT_EQ(c->bits, smallConfig().alphabetBits);
    EXPECT_EQ(c->pattern, req.pattern);
    EXPECT_FALSE(c->text.empty());

    // The registry saw the same trip.
    EXPECT_GE(svc.stats().counter("watchdogTrips").value(), 1u);
}

#ifndef SPM_TELEM_OFF
TEST(ServiceTelemetry, WatchdogTripForceRetainsAnExemplar)
{
    // The reqobs acceptance criterion: a watchdog trip must survive in
    // the exemplar reservoir's forced ring no matter how much regular
    // traffic follows, carrying the full-request replay case ID.
    telem::setSamplingEnabled(true);
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<WedgedBackend>());
    MatchService svc(smallConfig(), std::move(ladder));
    svc.flightRecorder().setDumpSink([](const std::string &) {});

    const MatchRequest req = seededRequest(31, 17, 40, 4);
    const MatchResponse resp = svc.serve(req);
    EXPECT_FALSE(resp.ok());

    const std::vector<telem::Exemplar> forced = svc.exemplars().forced();
    ASSERT_FALSE(forced.empty());
    const telem::Exemplar &e = forced.front();
    EXPECT_TRUE(e.forced);
    EXPECT_EQ(e.reason, "watchdog trip");
    EXPECT_EQ(e.requestId, 31u);
    EXPECT_EQ(e.service, "stream");

    // The exemplar's case ID replays the whole request, not just the
    // wedged chunk: pattern and text round-trip exactly.
    const std::optional<conformance::Case> c =
        conformance::decodeCase(e.caseId);
    ASSERT_TRUE(c.has_value()) << e.caseId;
    EXPECT_EQ(c->bits, smallConfig().alphabetBits);
    EXPECT_EQ(c->pattern, req.pattern);
    EXPECT_EQ(c->text, req.text);

    // The rendered reservoir names the retention reason.
    EXPECT_NE(svc.exemplars().renderText().find("forced(watchdog trip)"),
              std::string::npos);
}
#endif // SPM_TELEM_OFF

TEST(ServiceTelemetry, LadderFallRecordsTransitionEvent)
{
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<WedgedBackend>());
    ladder.push_back(std::make_unique<SoftwareBackend>());
    MatchService svc(smallConfig(), std::move(ladder));
    svc.flightRecorder().setDumpSink([](const std::string &) {});

    const MatchRequest req = seededRequest(22, 23, 40, 4);
    const MatchResponse resp = svc.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.toString();
    EXPECT_EQ(resp.backend, "software-baseline");

    bool saw_transition = false;
    for (const telem::FlightEvent &ev : svc.flightRecorder().events()) {
        if (ev.kind != telem::FlightKind::LadderTransition)
            continue;
        saw_transition = true;
        EXPECT_EQ(ev.shard, 3u);
        EXPECT_EQ(ev.requestId, 22u);
        EXPECT_FALSE(ev.code.empty());
        EXPECT_NE(ev.note.find("fall"), std::string::npos);
    }
    EXPECT_TRUE(saw_transition);
    EXPECT_GE(svc.stats().counter("degradations").value(), 1u);
    EXPECT_GE(svc.flightRecorder().tripCount(), 1u);
    EXPECT_NE(svc.flightRecorder().lastDump().find("ladder transition"),
              std::string::npos);
}

TEST(ServiceTelemetry, ChunkCommitsLandInRecorderAndHistogram)
{
    MatchService svc(smallConfig());
    telem::setSamplingEnabled(true);
    const MatchRequest req = seededRequest(31, 41, 64, 3);
    const MatchResponse resp = svc.serve(req);
    telem::setSamplingEnabled(false);
    ASSERT_TRUE(resp.ok());
    ASSERT_GE(resp.chunks, 4u);

    // Every committed chunk leaves a ChunkCommit breadcrumb with
    // monotonically increasing stream offsets.
    std::uint64_t commits = 0;
    std::uint64_t last_offset = 0;
    for (const telem::FlightEvent &ev : svc.flightRecorder().events()) {
        if (ev.kind != telem::FlightKind::ChunkCommit)
            continue;
        ++commits;
        EXPECT_EQ(ev.requestId, 31u);
        EXPECT_GE(ev.offset, last_offset);
        last_offset = ev.offset;
    }
    EXPECT_EQ(commits, resp.chunks);

    // And one latency sample per chunk in the registry histogram
    // (sampling is optional instrumentation: compiled out under
    // SPM_TELEM_OFF).
    const telem::Snapshot snap = svc.metricsSnapshot();
    const telem::Snapshot::HistogramData *h = snap.histogram("chunk_beats");
    ASSERT_NE(h, nullptr);
#ifndef SPM_TELEM_OFF
    EXPECT_EQ(h->samples(), resp.chunks);
    EXPECT_GT(h->mean(), 0.0);
#else
    EXPECT_EQ(h->samples(), 0u);
#endif
}

TEST(ServiceTelemetry, RegistryBacksTheLegacyDumpFormat)
{
    MatchService svc(smallConfig());
    const MatchRequest req = seededRequest(5, 7, 32, 3);
    ASSERT_TRUE(svc.serve(req).ok());

    EXPECT_EQ(svc.stats().counter("served").value(), 1u);
    EXPECT_EQ(svc.stats().counter("completed").value(), 1u);

    const std::string dump = svc.statsDump();
    EXPECT_NE(dump.find("service.served = 1"), std::string::npos);
    EXPECT_NE(dump.find("service.completed = 1"), std::string::npos);
    EXPECT_NE(dump.find("service.checkpoints = "), std::string::npos);
    EXPECT_NE(dump.find("service.queue.offered = "), std::string::npos);
    EXPECT_NE(dump.find("hostbus."), std::string::npos);

    const telem::Snapshot snap = svc.metricsSnapshot();
    EXPECT_EQ(snap.counterValue("served"), 1u);
    EXPECT_EQ(snap.gaugeValue("queue_depth"), 0.0);
}

TEST(ServiceTelemetry, CrossCheckMismatchLeavesBreadcrumb)
{
    /** Answers instantly but always wrongly. */
    class LyingBackend : public ServiceBackend
    {
      public:
        std::string name() const override { return "lying-fake"; }

        WindowResult matchWindow(const std::vector<Symbol> &window,
                                 const std::vector<Symbol> &,
                                 BeatWatchdog &dog) override
        {
            WindowResult wr;
            wr.bits.assign(window.size(), true);
            wr.beats = window.size();
            dog.tick(wr.beats);
            wr.completed = true;
            return wr;
        }
    };

    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    ladder.push_back(std::make_unique<LyingBackend>());
    ladder.push_back(std::make_unique<SoftwareBackend>());
    ServiceConfig cfg = smallConfig();
    cfg.rungFaultBudget = 1;
    MatchService svc(cfg, std::move(ladder));
    svc.flightRecorder().setDumpSink([](const std::string &) {});

    const MatchRequest req = seededRequest(7, 31, 48, 4);
    const MatchResponse resp = svc.serve(req);
    ASSERT_TRUE(resp.ok()) << resp.error.toString();
    EXPECT_EQ(resp.result,
              core::ReferenceMatcher().match(req.text, req.pattern));

    bool saw_mismatch = false;
    for (const telem::FlightEvent &ev : svc.flightRecorder().events()) {
        if (ev.kind != telem::FlightKind::CrossCheckMismatch)
            continue;
        saw_mismatch = true;
        EXPECT_EQ(ev.caseId.rfind("l1:", 0), 0u);
    }
    EXPECT_TRUE(saw_mismatch);
    EXPECT_GE(svc.stats().counter("crossCheckFailures").value(), 2u);
}

} // namespace
} // namespace spm::service
