/**
 * @file
 * Metamorphic properties of the matching problem.
 *
 * Beyond agreeing with the reference, the Section 3.1 definition has
 * algebraic consequences any implementation must satisfy: shifting
 * the text shifts the results, relabeling the alphabet preserves
 * them, all-wild-card patterns match everywhere, appending a
 * mismatching character kills a window, and the counting chip
 * dominates the matching chip. These hold for arbitrary inputs, so
 * they catch classes of bugs that example-based tests cannot.
 */

#include <gtest/gtest.h>

#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/reference.hh"
#include "extensions/counting.hh"
#include "tests/helpers.hh"

namespace spm
{
namespace
{

using core::BehavioralMatcher;
using core::ReferenceMatcher;

class Metamorphic : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    test::Workload w = test::makeWorkload(GetParam() + 2000);
};

TEST_P(Metamorphic, TextShiftShiftsResults)
{
    // Prepending j characters shifts every defined result bit right
    // by j (new windows may appear in the seam; old ones persist).
    WorkloadGen gen(GetParam(), w.bits);
    const std::size_t shift = 1 + gen.rng().nextBelow(5);
    auto prefixed = gen.randomText(shift);
    prefixed.insert(prefixed.end(), w.text.begin(), w.text.end());

    BehavioralMatcher chip(w.pattern.size());
    const auto base = chip.match(w.text, w.pattern);
    const auto shifted = chip.match(prefixed, w.pattern);
    for (std::size_t i = w.pattern.size() - 1; i < w.text.size(); ++i)
        EXPECT_EQ(shifted[i + shift], base[i]) << "i=" << i;
}

TEST_P(Metamorphic, AlphabetRelabelingPreservesResults)
{
    // Any permutation of Sigma applied to both streams leaves the
    // result stream unchanged (comparisons only test equality).
    const Symbol sigma = Symbol(1) << w.bits;
    std::vector<Symbol> perm(sigma);
    for (Symbol s = 0; s < sigma; ++s)
        perm[s] = static_cast<Symbol>((s + 1) % sigma); // a rotation

    auto relabel = [&](std::vector<Symbol> v) {
        for (auto &s : v) {
            if (s != wildcardSymbol)
                s = perm[s];
        }
        return v;
    };

    BehavioralMatcher chip(w.pattern.size());
    EXPECT_EQ(chip.match(w.text, w.pattern),
              chip.match(relabel(w.text), relabel(w.pattern)));
}

TEST_P(Metamorphic, AllWildcardPatternMatchesEveryFullWindow)
{
    const std::vector<Symbol> all_wild(w.pattern.size(),
                                       wildcardSymbol);
    BehavioralMatcher chip(all_wild.size());
    const auto r = chip.match(w.text, all_wild);
    for (std::size_t i = 0; i < w.text.size(); ++i)
        EXPECT_EQ(r[i], i >= all_wild.size() - 1) << "i=" << i;
}

TEST_P(Metamorphic, PlantedPatternIsFound)
{
    // Planting the pattern (wild cards filled arbitrarily) at any
    // offset creates a result bit at its last character.
    WorkloadGen gen(GetParam() + 9, w.bits);
    auto text = w.text;
    const std::size_t at =
        gen.rng().nextBelow(text.size() - w.pattern.size() + 1);
    for (std::size_t j = 0; j < w.pattern.size(); ++j) {
        text[at + j] = w.pattern[j] == wildcardSymbol
            ? gen.randomSymbol()
            : w.pattern[j];
    }
    BehavioralMatcher chip(w.pattern.size());
    EXPECT_TRUE(chip.match(text, w.pattern)[at + w.pattern.size() - 1]);
}

TEST_P(Metamorphic, ExtendingPatternOnlyRemovesMatches)
{
    // Every match of pattern+suffix is also a match of pattern
    // (monotonicity of conjunction).
    WorkloadGen gen(GetParam() + 17, w.bits);
    auto longer = w.pattern;
    longer.push_back(gen.randomSymbol());
    if (longer.size() > w.text.size())
        return;

    BehavioralMatcher chip_short(w.pattern.size());
    BehavioralMatcher chip_long(longer.size());
    const auto r_short = chip_short.match(w.text, w.pattern);
    const auto r_long = chip_long.match(w.text, longer);
    for (std::size_t i = 0; i + 1 < w.text.size(); ++i) {
        if (r_long[i + 1])
            EXPECT_TRUE(r_short[i]) << "i=" << i;
    }
}

TEST_P(Metamorphic, CountReachesMaximumExactlyAtMatches)
{
    ext::SystolicMatchCounter counter(w.pattern.size());
    BehavioralMatcher chip(w.pattern.size());
    const auto counts = counter.count(w.text, w.pattern);
    const auto bits = chip.match(w.text, w.pattern);
    for (std::size_t i = w.pattern.size() - 1; i < w.text.size(); ++i) {
        EXPECT_EQ(bits[i], counts[i] == w.pattern.size())
            << "i=" << i;
        EXPECT_LE(counts[i], w.pattern.size());
    }
}

TEST_P(Metamorphic, FidelityLevelsAgreeOnMutatedWorkloads)
{
    // Flip one text character and re-check bit-serial == behavioral:
    // single-character sensitivity must propagate identically.
    WorkloadGen gen(GetParam() + 31, w.bits);
    auto text = w.text;
    const std::size_t at = gen.rng().nextBelow(text.size());
    text[at] = gen.randomSymbol();

    BehavioralMatcher chars(w.pattern.size());
    core::BitSerialMatcher bits(w.pattern.size(), w.bits);
    EXPECT_EQ(chars.match(text, w.pattern),
              bits.match(text, w.pattern));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Metamorphic,
                         ::testing::Range<std::uint64_t>(0, 12));

} // namespace
} // namespace spm
