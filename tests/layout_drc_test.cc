/** @file Unit tests for the design rule checker. */

#include <gtest/gtest.h>

#include "layout/drc.hh"

namespace spm::layout
{
namespace
{

TEST(Drc, CleanLayoutPasses)
{
    MaskLayout cell("ok");
    cell.addRect(Layer::Metal, Rect{0, 0, 10, 3});
    cell.addRect(Layer::Metal, Rect{0, 6, 10, 9}); // 3 lambda apart
    cell.addRect(Layer::Poly, Rect{0, 0, 2, 8});
    cell.addRect(Layer::Poly, Rect{4, 0, 6, 8}); // 2 lambda apart
    EXPECT_TRUE(isClean(cell));
}

TEST(Drc, DetectsWidthViolation)
{
    MaskLayout cell("thin");
    cell.addRect(Layer::Metal, Rect{0, 0, 10, 2}); // metal needs 3
    const auto v = checkLayout(cell);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, DrcViolation::Kind::Width);
    EXPECT_EQ(v[0].layer, Layer::Metal);
    EXPECT_NE(v[0].toString().find("width"), std::string::npos);
}

TEST(Drc, DetectsSpacingViolation)
{
    MaskLayout cell("close");
    cell.addRect(Layer::Diffusion, Rect{0, 0, 2, 10});
    cell.addRect(Layer::Diffusion, Rect{4, 0, 6, 10}); // needs 3, has 2
    const auto v = checkLayout(cell);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, DrcViolation::Kind::Spacing);
    EXPECT_EQ(v[0].layer, Layer::Diffusion);
}

TEST(Drc, TouchingShapesAreSameNet)
{
    MaskLayout cell("abut");
    cell.addRect(Layer::Metal, Rect{0, 0, 5, 3});
    cell.addRect(Layer::Metal, Rect{5, 0, 10, 3});  // abutting
    cell.addRect(Layer::Metal, Rect{8, 0, 12, 3});  // overlapping
    EXPECT_TRUE(isClean(cell));
}

TEST(Drc, DifferentLayersDoNotInteract)
{
    MaskLayout cell("cross");
    cell.addRect(Layer::Poly, Rect{0, 0, 2, 10});
    cell.addRect(Layer::Diffusion, Rect{3, 0, 5, 10});
    // 1 lambda poly-diffusion gap would violate a same-layer rule,
    // but cross-layer spacing is not checked in this rule set.
    cell.addRect(Layer::Metal, Rect{2, 0, 5, 10});
    EXPECT_TRUE(isClean(cell));
}

TEST(Drc, DiagonalSpacingChecked)
{
    MaskLayout cell("diag");
    cell.addRect(Layer::Metal, Rect{0, 0, 4, 4});
    cell.addRect(Layer::Metal, Rect{5, 5, 9, 9}); // 1 lambda diagonal
    const auto v = checkLayout(cell);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].kind, DrcViolation::Kind::Spacing);
}

TEST(Drc, ReportsMultipleViolations)
{
    MaskLayout cell("bad");
    cell.addRect(Layer::Metal, Rect{0, 0, 10, 2});  // width
    cell.addRect(Layer::Poly, Rect{0, 0, 2, 4});
    cell.addRect(Layer::Poly, Rect{3, 0, 5, 4});    // spacing
    EXPECT_EQ(checkLayout(cell).size(), 2u);
}

TEST(Drc, EmptyLayoutIsClean)
{
    EXPECT_TRUE(isClean(MaskLayout("empty")));
}

} // namespace
} // namespace spm::layout
