/** @file Unit tests for lambda-unit geometry. */

#include <gtest/gtest.h>

#include "layout/geometry.hh"

namespace spm::layout
{
namespace
{

TEST(Rect, BasicProperties)
{
    const Rect r{0, 0, 4, 6};
    EXPECT_EQ(r.width(), 4);
    EXPECT_EQ(r.height(), 6);
    EXPECT_EQ(r.area(), 24);
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(Rect{}.empty());
}

TEST(Rect, InvertedConstructionPanics)
{
    EXPECT_THROW(Rect(4, 0, 0, 4), std::logic_error);
}

TEST(Rect, OverlapIsInteriorOnly)
{
    const Rect a{0, 0, 4, 4};
    EXPECT_TRUE(a.overlaps(Rect{2, 2, 6, 6}));
    EXPECT_FALSE(a.overlaps(Rect{4, 0, 8, 4})) << "abutting is not overlap";
    EXPECT_FALSE(a.overlaps(Rect{5, 5, 6, 6}));
}

TEST(Rect, Containment)
{
    const Rect a{0, 0, 10, 10};
    EXPECT_TRUE(a.contains(Rect{2, 2, 8, 8}));
    EXPECT_TRUE(a.contains(a));
    EXPECT_FALSE(a.contains(Rect{2, 2, 11, 8}));
}

TEST(Rect, UnionAndIntersect)
{
    const Rect a{0, 0, 4, 4};
    const Rect b{2, 2, 6, 8};
    EXPECT_EQ(a.unionWith(b), Rect(0, 0, 6, 8));
    EXPECT_EQ(a.intersect(b), Rect(2, 2, 4, 4));
    EXPECT_TRUE(a.intersect(Rect{10, 10, 12, 12}).empty());
}

TEST(Rect, UnionWithEmpty)
{
    const Rect a{1, 1, 3, 3};
    EXPECT_EQ(a.unionWith(Rect{}), a);
    EXPECT_EQ(Rect{}.unionWith(a), a);
}

TEST(Rect, InflateAndTranslate)
{
    const Rect a{2, 2, 4, 4};
    EXPECT_EQ(a.inflated(1), Rect(1, 1, 5, 5));
    EXPECT_EQ(a.inflated(-1), Rect(3, 3, 3, 3));
    EXPECT_EQ(a.translated(10, -2), Rect(12, 0, 14, 2));
}

TEST(Rect, SeparationMeasuresGap)
{
    const Rect a{0, 0, 4, 4};
    EXPECT_EQ(a.separation(Rect{6, 0, 8, 4}), 2) << "horizontal gap";
    EXPECT_EQ(a.separation(Rect{0, 7, 4, 9}), 3) << "vertical gap";
    EXPECT_EQ(a.separation(Rect{4, 0, 6, 4}), 0) << "abutting";
    EXPECT_EQ(a.separation(Rect{2, 2, 3, 3}), 0) << "overlapping";
    EXPECT_EQ(a.separation(Rect{6, 7, 8, 9}), 3) << "diagonal: max gap";
}

TEST(Rect, ToStringIsReadable)
{
    EXPECT_EQ(Rect(1, 2, 3, 4).toString(), "[1,2 3,4]");
}

} // namespace
} // namespace spm::layout
