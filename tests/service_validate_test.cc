/**
 * @file
 * The shared admission rule set (service.hh validatePattern /
 * validateText / validateRequest) and its uniform enforcement across
 * every front end: streaming, batched, sharded and dictionary.  Each
 * front end used to carry (or skip) its own inline checks; these
 * tests pin the single-path contract -- the same malformed input
 * draws the same typed code everywhere.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "service/batch.hh"
#include "service/dictserve.hh"
#include "service/service.hh"
#include "service/sharded.hh"
#include "util/types.hh"

namespace spm::service
{
namespace
{

ServiceConfig
smallConfig()
{
    ServiceConfig cfg;
    cfg.alphabetBits = 3; // symbols 0..7
    cfg.maxTextLen = 256;
    cfg.maxPatternLen = 64;
    return cfg;
}

TEST(ValidateHelpers, PatternRules)
{
    const ServiceConfig cfg = smallConfig();

    EXPECT_FALSE(validatePattern(cfg, {1, 2, 3}));
    EXPECT_FALSE(validatePattern(cfg, {wildcardSymbol, 7}));

    auto empty = validatePattern(cfg, {});
    ASSERT_TRUE(empty.has_value());
    EXPECT_EQ(empty->code, ErrorCode::InvalidPattern);

    // k > 64: the configured pattern bound (one fused sweep's width).
    std::vector<Symbol> longPattern(65, Symbol(1));
    auto oversize = validatePattern(cfg, longPattern);
    ASSERT_TRUE(oversize.has_value());
    EXPECT_EQ(oversize->code, ErrorCode::OversizedRequest);

    // Out-of-alphabet byte; the wild card stays exempt.
    auto overflow = validatePattern(cfg, {1, Symbol(8)});
    ASSERT_TRUE(overflow.has_value());
    EXPECT_EQ(overflow->code, ErrorCode::AlphabetOverflow);
}

TEST(ValidateHelpers, TextRules)
{
    const ServiceConfig cfg = smallConfig();

    EXPECT_FALSE(validateText(cfg, {0, 7, 3}));
    EXPECT_FALSE(validateText(cfg, {})); // empty text is admissible

    // Wild cards are not admitted in text.
    auto wild = validateText(cfg, {wildcardSymbol});
    ASSERT_TRUE(wild.has_value());
    EXPECT_EQ(wild->code, ErrorCode::AlphabetOverflow);

    auto overflow = validateText(cfg, {Symbol(8)});
    ASSERT_TRUE(overflow.has_value());
    EXPECT_EQ(overflow->code, ErrorCode::AlphabetOverflow);

    // The cumulative stream bound: 200 already seen + 57 more > 256.
    const std::vector<Symbol> chunk(57, Symbol(0));
    EXPECT_FALSE(validateText(cfg, chunk, 199));
    auto oversize = validateText(cfg, chunk, 200);
    ASSERT_TRUE(oversize.has_value());
    EXPECT_EQ(oversize->code, ErrorCode::OversizedRequest);
}

TEST(ValidateHelpers, RequestComposesBothPrimitives)
{
    const ServiceConfig cfg = smallConfig();
    MatchRequest req;
    req.pattern = {1, 2};
    req.text = {0, 1, 2, 3};
    EXPECT_FALSE(validateRequest(cfg, req));

    req.pattern.clear();
    auto err = validateRequest(cfg, req);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::InvalidPattern);

    req.pattern = {1};
    req.text.assign(cfg.maxTextLen + 1, Symbol(0));
    err = validateRequest(cfg, req);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::OversizedRequest);
}

/** The same three violations, through every front end. */
struct Violation
{
    std::vector<Symbol> pattern;
    ErrorCode want;
};

std::vector<Violation>
violations()
{
    return {
        {{}, ErrorCode::InvalidPattern},
        {std::vector<Symbol>(65, Symbol(1)), ErrorCode::OversizedRequest},
        {{1, Symbol(8)}, ErrorCode::AlphabetOverflow},
    };
}

TEST(ValidateFrontEnds, StreamingServiceUsesSharedRules)
{
    MatchService svc(smallConfig());
    for (const auto &v : violations()) {
        MatchRequest req;
        req.pattern = v.pattern;
        req.text = {0, 1, 2};
        auto err = svc.validate(req);
        ASSERT_TRUE(err.has_value());
        EXPECT_EQ(err->code, v.want);
    }
}

TEST(ValidateFrontEnds, BatchServiceUsesSharedRules)
{
    BatchServiceConfig cfg;
    cfg.base = smallConfig();
    BatchMatchService svc(cfg);
    for (const auto &v : violations()) {
        // openGroup validates the pattern once for the whole group.
        ServiceError err;
        BatchStreamGroup group = svc.openGroup(v.pattern, 2, err);
        EXPECT_EQ(err.code, v.want);
        EXPECT_EQ(group.width(), 0u);

        // serveBatch validates per request.
        MatchRequest req;
        req.pattern = v.pattern;
        req.text = {0, 1, 2};
        auto responses = svc.serveBatch({req});
        ASSERT_EQ(responses.size(), 1u);
        EXPECT_EQ(responses[0].error.code, v.want);
    }

    // Chunk admission shares validateText: out-of-alphabet bytes and
    // the cumulative per-stream bound reject before carries advance.
    ServiceError err;
    BatchStreamGroup group = svc.openGroup({1, 2}, 1, err);
    ASSERT_EQ(err.code, ErrorCode::Ok);
    auto fed = svc.feedGroup(group, {{Symbol(9)}});
    EXPECT_EQ(fed.error.code, ErrorCode::AlphabetOverflow);
    fed = svc.feedGroup(
        group, {std::vector<Symbol>(cfg.base.maxTextLen + 1, Symbol(0))});
    EXPECT_EQ(fed.error.code, ErrorCode::OversizedRequest);
}

TEST(ValidateFrontEnds, ShardedServiceUsesSharedRules)
{
    ShardedConfig cfg;
    cfg.base = smallConfig();
    cfg.threads = 2;
    cfg.spareShards = 0;
    ShardedMatchService svc(cfg);
    for (const auto &v : violations()) {
        MatchRequest req;
        req.pattern = v.pattern;
        req.text = {0, 1, 2};
        auto err = svc.validate(req);
        ASSERT_TRUE(err.has_value());
        EXPECT_EQ(err->code, v.want);
    }
}

TEST(ValidateFrontEnds, DictServiceUsesSharedRulesPerMember)
{
    DictServiceConfig cfg;
    cfg.base = smallConfig();
    DictMatchService svc(cfg);
    for (const auto &v : violations()) {
        // The offending member is pinned by index even when valid
        // members surround it.
        multipattern::DictPatterns dict = {{1, 2}, v.pattern, {3}};
        const DictError err = svc.validateDict(dict);
        EXPECT_EQ(err.error.code, v.want);
        EXPECT_EQ(err.patternIndex, 1u);
    }
}

} // namespace
} // namespace spm::service
