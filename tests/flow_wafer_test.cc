/** @file Tests for wafer-scale integration (Section 5). */

#include <gtest/gtest.h>

#include <cmath>

#include "flow/wafer.hh"

namespace spm::flow
{
namespace
{

TEST(Wafer, PerfectWaferHarvestsEverything)
{
    Wafer w(8, 16, 0.0, 1);
    EXPECT_EQ(w.goodCells(), 8u * 16u);
    const auto h = w.snakeHarvest();
    EXPECT_EQ(h.chainLength, 128u);
    EXPECT_EQ(h.skips, 0u);
    EXPECT_EQ(h.longestJump, 1u);
    EXPECT_DOUBLE_EQ(h.harvestRatio, 1.0);
}

TEST(Wafer, DeadWaferHarvestsNothing)
{
    Wafer w(4, 4, 1.0, 1);
    EXPECT_EQ(w.goodCells(), 0u);
    const auto h = w.snakeHarvest();
    EXPECT_EQ(h.chainLength, 0u);
    EXPECT_DOUBLE_EQ(h.harvestRatio, 0.0);
}

TEST(Wafer, DefectMapIsDeterministic)
{
    Wafer a(16, 16, 0.2, 99);
    Wafer b(16, 16, 0.2, 99);
    for (unsigned r = 0; r < 16; ++r)
        for (unsigned c = 0; c < 16; ++c)
            EXPECT_EQ(a.isGood(r, c), b.isGood(r, c));
}

TEST(Wafer, HarvestEqualsGoodCells)
{
    // The snake visits every site, so every good cell joins the
    // chain -- the whole point of the regular linear array.
    Wafer w(12, 20, 0.15, 7);
    EXPECT_EQ(w.snakeHarvest().chainLength, w.goodCells());
}

TEST(Wafer, DefectRateRoughlyRealized)
{
    Wafer w(64, 64, 0.25, 3);
    const double good_frac =
        static_cast<double>(w.goodCells()) / (64.0 * 64.0);
    EXPECT_NEAR(good_frac, 0.75, 0.03);
}

TEST(Wafer, LongestJumpSpansDefectRuns)
{
    // Construct a wafer where seed gives some adjacent defects and
    // verify longestJump >= 2 whenever skips occurred between good
    // cells.
    Wafer w(1, 32, 0.4, 11);
    const auto h = w.snakeHarvest();
    if (h.chainLength >= 2 && h.skips > 0)
        EXPECT_GE(h.longestJump, 2u);
    EXPECT_LE(h.longestJump, 32u);
}

TEST(Wafer, DicedChipsMatchManualCount)
{
    Wafer w(2, 8, 0.3, 5);
    // Count manually over row-major runs of 4.
    std::size_t manual = 0;
    const std::size_t chip = 4;
    std::vector<bool> flat;
    for (unsigned r = 0; r < 2; ++r)
        for (unsigned c = 0; c < 8; ++c)
            flat.push_back(w.isGood(r, c));
    for (std::size_t at = 0; at + chip <= flat.size(); at += chip) {
        bool ok = true;
        for (std::size_t j = 0; j < chip; ++j)
            ok = ok && flat[at + j];
        manual += ok;
    }
    EXPECT_EQ(w.dicedChips(chip), manual);
}

TEST(Wafer, ExpectedChipYieldFormula)
{
    EXPECT_DOUBLE_EQ(Wafer::expectedChipYield(1, 0.1), 0.9);
    EXPECT_NEAR(Wafer::expectedChipYield(8, 0.1),
                std::pow(0.9, 8), 1e-12);
    EXPECT_DOUBLE_EQ(Wafer::expectedChipYield(100, 0.0), 1.0);
}

TEST(Wafer, WaferScaleBeatsDicingUnderDefects)
{
    // The Section 5 argument: at realistic defect rates, harvesting
    // by reconfiguration salvages far more cells than insisting on
    // fully working fixed-size chips.
    Wafer w(32, 32, 0.1, 13);
    const std::size_t harvested = w.snakeHarvest().chainLength;
    const std::size_t diced_cells = w.dicedChips(64) * 64;
    EXPECT_GT(harvested, 2 * diced_cells);
}

TEST(Wafer, ParameterValidation)
{
    EXPECT_THROW(Wafer(0, 4, 0.1, 1), std::logic_error);
    EXPECT_THROW(Wafer(4, 4, 1.5, 1), std::logic_error);
    Wafer w(4, 4, 0.1, 1);
    EXPECT_THROW(w.isGood(4, 0), std::logic_error);
    EXPECT_THROW(w.dicedChips(0), std::logic_error);
}

TEST(Wafer, InvalidConfigurationThrowsInvalidArgument)
{
    // Configuration errors are invalid_argument specifically, so a
    // caller can distinguish bad parameters from simulator bugs.
    EXPECT_THROW(Wafer(0, 4, 0.1, 1), std::invalid_argument);
    EXPECT_THROW(Wafer(4, 0, 0.1, 1), std::invalid_argument);
    EXPECT_THROW(Wafer(4, 4, -0.1, 1), std::invalid_argument);
    EXPECT_THROW(Wafer(4, 4, 1.0001, 1), std::invalid_argument);
}

TEST(Wafer, SingleRowSnakeIsLeftToRight)
{
    Wafer w(1, 6, 0.0, 1);
    const auto h = w.snakeHarvest();
    EXPECT_EQ(h.chainLength, 6u);
    EXPECT_EQ(h.longestJump, 1u);
    const auto sites = w.snakeSites();
    ASSERT_EQ(sites.size(), 6u);
    for (unsigned c = 0; c < 6; ++c) {
        EXPECT_EQ(sites[c].first, 0u);
        EXPECT_EQ(sites[c].second, c);
    }
}

TEST(Wafer, SnakeSitesReverseOnOddRows)
{
    Wafer w(2, 3, 0.0, 1);
    const auto sites = w.snakeSites();
    ASSERT_EQ(sites.size(), 6u);
    // Row 0 left to right, row 1 right to left.
    EXPECT_EQ(sites[2], (std::pair<unsigned, unsigned>{0, 2}));
    EXPECT_EQ(sites[3], (std::pair<unsigned, unsigned>{1, 2}));
    EXPECT_EQ(sites[5], (std::pair<unsigned, unsigned>{1, 0}));
}

TEST(Wafer, SnakeSitesMatchHarvestChain)
{
    Wafer w(6, 9, 0.2, 17);
    EXPECT_EQ(w.snakeSites().size(), w.snakeHarvest().chainLength);
    for (const auto &[r, c] : w.snakeSites())
        EXPECT_TRUE(w.isGood(r, c));
}

TEST(Wafer, ChipLargerThanWaferYieldsNothing)
{
    Wafer w(2, 4, 0.0, 1);
    EXPECT_EQ(w.dicedChips(9), 0u);
    EXPECT_EQ(w.dicedChips(8), 1u);
}

TEST(Wafer, MarkBadReharvestsAroundTheSite)
{
    // Runtime retirement: a cell that dies in service is routed
    // around exactly like a fabrication defect.
    Wafer w(2, 4, 0.0, 1);
    const auto before = w.snakeSites();
    ASSERT_EQ(before.size(), 8u);
    w.markBad(before[5].first, before[5].second);
    EXPECT_EQ(w.goodCells(), 7u);
    const auto after = w.snakeSites();
    ASSERT_EQ(after.size(), 7u);
    for (const auto &site : after)
        EXPECT_NE(site, before[5]);
    // The bypass wire over the retired site shows in the jump bound.
    EXPECT_EQ(w.snakeHarvest().longestJump, 2u);
}

} // namespace
} // namespace spm::flow
