/**
 * @file
 * Tests for the chip-scale fault grader: end-to-end grading of the
 * prototype-shaped chip (collapse ratio, coverage accounting, the
 * hardest-first undetected list), determinism, the serial cross-check
 * contract, the telemetry rollup, and the typed InvalidFaultSite
 * validation added to the injector's lowering paths.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gatechip.hh"
#include "fault/grade.hh"
#include "fault/injector.hh"
#include "fault/model.hh"
#include "telemetry/metrics.hh"

namespace spm::fault
{
namespace
{

GradeConfig
quickConfig()
{
    GradeConfig cfg;
    cfg.cells = 4;
    cfg.textLen = 24;
    cfg.workloads = 2;
    cfg.crossCheckSamples = 24;
    return cfg;
}

TEST(Grade, EndToEndAccountingHoldsTogether)
{
    FaultGrader grader(quickConfig());
    const GradeReport rep = grader.run();

    EXPECT_GE(rep.collapse.simRatio(), 1.5);
    EXPECT_EQ(rep.collapse.totalSites, rep.nodes * 2);
    EXPECT_EQ(rep.classDetected.size(), rep.collapse.classCount);

    // Detected + undetected partitions the classes.
    EXPECT_EQ(rep.detectedClasses + rep.undetected.size(),
              rep.collapse.classCount);
    const std::size_t flagged = static_cast<std::size_t>(
        std::count(rep.classDetected.begin(), rep.classDetected.end(),
                   1));
    EXPECT_EQ(flagged, rep.detectedClasses);

    // Per-workload newly-detected counts sum to the total.
    std::size_t sum = 0;
    for (const std::size_t d : rep.workloadDetected)
        sum += d;
    EXPECT_EQ(sum, rep.detectedClasses);

    // Site coverage expands through the classes, so it can never
    // count fewer sites than classes.
    EXPECT_GE(rep.detectedSites, rep.detectedClasses);
    EXPECT_GT(rep.classCoverage(), 0.0);
    EXPECT_LE(rep.classCoverage(), 100.0);

    // The word simulator's verdicts agreed with every sampled serial
    // re-run -- the exactness contract.
    EXPECT_EQ(rep.crossChecked, quickConfig().crossCheckSamples);
    EXPECT_EQ(rep.crossCheckMismatches, 0u);

    // Undetected list is hardest-first.
    for (std::size_t i = 1; i < rep.undetected.size(); ++i)
        EXPECT_GE(rep.undetected[i - 1].difficulty,
                  rep.undetected[i].difficulty);
}

TEST(Grade, RunsAreDeterministic)
{
    const GradeReport a = FaultGrader(quickConfig()).run();
    const GradeReport b = FaultGrader(quickConfig()).run();
    EXPECT_EQ(a.detectedClasses, b.detectedClasses);
    EXPECT_EQ(a.classDetected, b.classDetected);
    EXPECT_EQ(a.renderText(10), b.renderText(10));
}

TEST(Grade, MixedLengthPoolAlternatesPatternLengths)
{
    GradeConfig cfg = quickConfig();
    cfg.cells = 6;
    cfg.patternLen = 2;
    const GradeReport rep = FaultGrader(cfg).run();
    ASSERT_EQ(rep.workloadPatternLen.size(), cfg.workloads);
    // Even slots carry the configured short pattern; odd slots a
    // window-filling one that exercises the right-edge compare chain.
    EXPECT_EQ(rep.workloadPatternLen[0], cfg.patternLen);
    EXPECT_EQ(rep.workloadPatternLen[1], cfg.cells);

    GradeConfig uniform = cfg;
    uniform.mixedLengths = false;
    const GradeReport u = FaultGrader(uniform).run();
    EXPECT_EQ(u.workloadPatternLen[1], cfg.patternLen);
}

TEST(Grade, TelemetryRollupCounts)
{
    telem::Registry &reg = telem::Registry::global();
    const std::uint64_t runs0 =
        reg.counter("fault.grade.runs").value();
    const std::uint64_t batches0 =
        reg.counter("fault.grade.word_batches").value();

    const GradeReport rep = FaultGrader(quickConfig()).run();
    EXPECT_EQ(reg.counter("fault.grade.runs").value(), runs0 + 1);
    EXPECT_EQ(reg.counter("fault.grade.word_batches").value(),
              batches0 + rep.wordBatches);
}

TEST(Grade, ReportRendersTheHeadline)
{
    const GradeReport rep = FaultGrader(quickConfig()).run();
    const std::string text = rep.renderText(3);
    EXPECT_NE(text.find("fault grading report"), std::string::npos);
    EXPECT_NE(text.find("coverage: classes"), std::string::npos);
    EXPECT_NE(text.find("cross-check:"), std::string::npos);
}

TEST(InvalidSite, GateLoweringRejectsBadCell)
{
    core::GateChip chip(2, 2);
    Fault f;
    f.kind = FaultKind::StuckAt1;
    f.point = systolic::FaultPoint::ResultLatch;
    f.cell = 7; // the chip has 2 cells
    EXPECT_THROW(lowerStuckAtFaults(chip, {f}), InvalidFaultSite);
}

TEST(InvalidSite, GateLoweringRejectsBadBit)
{
    core::GateChip chip(2, 2);
    Fault f;
    f.kind = FaultKind::StuckAt0;
    f.point = systolic::FaultPoint::PatternLatch;
    f.cell = 0;
    f.bit = 5; // symbol latches have 2 bits
    EXPECT_THROW(lowerStuckAtFaults(chip, {f}), InvalidFaultSite);
}

TEST(InvalidSite, ValidSweepStillLowersEverySite)
{
    core::GateChip chip(2, 2);
    const std::vector<Fault> sweep = sweepStuckAtFaults(2, 2);
    // Every generated site must resolve to a real node now that
    // missing names throw instead of being skipped.
    std::size_t forced = 0;
    EXPECT_NO_THROW(forced = lowerStuckAtFaults(chip, sweep));
    EXPECT_EQ(forced, sweep.size());
}

} // namespace
} // namespace spm::fault
