/** @file Tests for the numeric extensions (Section 3.4). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/reference.hh"
#include "extensions/numarray.hh"
#include "tests/helpers.hh"
#include "util/rng.hh"

namespace spm::ext
{
namespace
{

TEST(Correlator, PaperDefinition)
{
    // r_i = (s_{i-k} - p_0)^2 + ... + (s_i - p_k)^2.
    SystolicCorrelator corr;
    const auto r = corr.correlate({1, 2, 3}, {1, 1});
    EXPECT_EQ(r, (std::vector<std::int64_t>{0, 1, 5}));
}

TEST(Correlator, ZeroMarksExactAlignment)
{
    SystolicCorrelator corr;
    const auto r = corr.correlate({7, -2, 9, 7, -2}, {7, -2});
    EXPECT_EQ(r[1], 0);
    EXPECT_EQ(r[4], 0);
    EXPECT_GT(r[2], 0);
}

TEST(Correlator, MatchesReferenceOnRandomSignals)
{
    Rng rng(101);
    for (int it = 0; it < 20; ++it) {
        const std::size_t k = 1 + rng.nextBelow(8);
        const std::size_t n = k + rng.nextBelow(60);
        std::vector<std::int64_t> sig(n), w(k);
        for (auto &v : sig)
            v = rng.nextInRange(-50, 50);
        for (auto &v : w)
            v = rng.nextInRange(-50, 50);
        SystolicCorrelator corr(k + rng.nextBelow(3));
        EXPECT_EQ(corr.correlate(sig, w),
                  core::referenceCorrelation(sig, w));
    }
}

TEST(Correlator, DegenerateInputs)
{
    SystolicCorrelator corr(4);
    EXPECT_TRUE(corr.correlate({}, {1}).empty());
    EXPECT_EQ(corr.correlate({1}, {1, 2}),
              (std::vector<std::int64_t>{0}));
}

TEST(Fir, WindowDotSmallExample)
{
    // weights (1,2) over signal 1 2 3 4: windows 1*1+2*2=5, 1*2+2*3=8,
    // 1*3+2*4=11.
    SystolicFir f;
    const auto y = f.windowDot({1, 2, 3, 4}, {1, 2});
    EXPECT_EQ(y, (std::vector<std::int64_t>{0, 5, 8, 11}));
}

TEST(Fir, CausalFilterDefinition)
{
    // y_i = sum taps_j x_{i-j} with zero history: a moving sum.
    SystolicFir f;
    const auto y = f.fir({1, 2, 3, 4}, {1, 1, 1});
    EXPECT_EQ(y, (std::vector<std::int64_t>{1, 3, 6, 9}));
}

TEST(Fir, ImpulseResponseIsTaps)
{
    SystolicFir f;
    const auto y = f.fir({1, 0, 0, 0, 0}, {3, -2, 7});
    EXPECT_EQ(y, (std::vector<std::int64_t>{3, -2, 7, 0, 0}));
}

TEST(Fir, MatchesDirectEvaluation)
{
    Rng rng(202);
    for (int it = 0; it < 20; ++it) {
        const std::size_t k = 1 + rng.nextBelow(8);
        const std::size_t n = 1 + rng.nextBelow(60);
        std::vector<std::int64_t> sig(n), taps(k);
        for (auto &v : sig)
            v = rng.nextInRange(-9, 9);
        for (auto &v : taps)
            v = rng.nextInRange(-9, 9);
        SystolicFir f;
        std::vector<std::int64_t> want(n, 0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < k && j <= i; ++j)
                want[i] += taps[j] * sig[i - j];
        EXPECT_EQ(f.fir(sig, taps), want);
    }
}

TEST(Convolve, SmallExample)
{
    SystolicFir f;
    // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2.
    EXPECT_EQ(f.convolve({1, 2}, {3, 4}),
              (std::vector<std::int64_t>{3, 10, 8}));
}

TEST(Convolve, MatchesDirectEvaluation)
{
    Rng rng(303);
    for (int it = 0; it < 15; ++it) {
        const std::size_t na = 1 + rng.nextBelow(30);
        const std::size_t nb = 1 + rng.nextBelow(8);
        std::vector<std::int64_t> a(na), b(nb);
        for (auto &v : a)
            v = rng.nextInRange(-9, 9);
        for (auto &v : b)
            v = rng.nextInRange(-9, 9);
        std::vector<std::int64_t> want(na + nb - 1, 0);
        for (std::size_t i = 0; i < na; ++i)
            for (std::size_t j = 0; j < nb; ++j)
                want[i + j] += a[i] * b[j];
        SystolicFir f;
        EXPECT_EQ(f.convolve(a, b), want);
    }
}

TEST(Convolve, MatchesDoubleReferenceOnGeneratedCases)
{
    // Property over the conformance generator: the int64 systolic
    // convolution of a case's centered streams agrees with a
    // double-precision direct evaluation within a fixed-point
    // tolerance (the double side rounds past 2^53; the array does
    // not).
    SystolicFir f;
    for (std::uint64_t index = 0; index < 48; ++index) {
        const test::Workload w = test::makeWorkload(index);
        if (w.text.size() > 192 || w.pattern.size() > 64)
            continue;
        const std::int64_t center = std::int64_t(1)
                                    << (w.bits > 0 ? w.bits - 1 : 0);
        std::vector<std::int64_t> a, b;
        for (const Symbol s : w.text)
            a.push_back(static_cast<std::int64_t>(s) - center);
        for (const Symbol p : w.pattern)
            b.push_back(p == wildcardSymbol
                            ? 0
                            : static_cast<std::int64_t>(p) - center);

        const auto sys = f.convolve(a, b);
        ASSERT_EQ(sys.size(), a.size() + b.size() - 1) << w.caseId;
        for (std::size_t i = 0; i < sys.size(); ++i) {
            double want = 0.0;
            for (std::size_t j = 0; j < b.size(); ++j) {
                if (i < j || i - j >= a.size())
                    continue;
                want += static_cast<double>(b[j]) *
                        static_cast<double>(a[i - j]);
            }
            const double tol =
                std::max(0.5, std::abs(want) * 1e-12);
            EXPECT_NEAR(static_cast<double>(sys[i]), want, tol)
                << "i=" << i << " case=" << w.caseId;
        }
    }
}

TEST(Convolve, IsCommutativeInEffect)
{
    SystolicFir f;
    const std::vector<std::int64_t> a = {1, -2, 3, 0, 5};
    const std::vector<std::int64_t> b = {2, 7};
    EXPECT_EQ(f.convolve(a, b), f.convolve(b, a));
}

TEST(Distance, ChebyshevSmallExample)
{
    // weights (3, 7) over 1 5 9: windows max(|1-3|,|5-7|)=2,
    // max(|5-3|,|9-7|)=2.
    SystolicDistance dist;
    const auto r = dist.chebyshev({1, 5, 9}, {3, 7});
    EXPECT_EQ(r, (std::vector<std::int64_t>{0, 2, 2}));
}

TEST(Distance, ChebyshevMatchesDirectEvaluation)
{
    Rng rng(404);
    for (int it = 0; it < 20; ++it) {
        const std::size_t k = 1 + rng.nextBelow(8);
        const std::size_t n = k + rng.nextBelow(50);
        std::vector<std::int64_t> sig(n), w(k);
        for (auto &v : sig)
            v = rng.nextInRange(-50, 50);
        for (auto &v : w)
            v = rng.nextInRange(-50, 50);
        std::vector<std::int64_t> want(n, 0);
        for (std::size_t i = k - 1; i < n; ++i) {
            std::int64_t mx = 0;
            for (std::size_t j = 0; j < k; ++j)
                mx = std::max(mx,
                              std::abs(sig[i - (k - 1) + j] - w[j]));
            want[i] = mx;
        }
        SystolicDistance dist(k + rng.nextBelow(3));
        EXPECT_EQ(dist.chebyshev(sig, w), want);
    }
}

TEST(Distance, ClosestPositionMatchesDirectEvaluation)
{
    Rng rng(505);
    for (int it = 0; it < 20; ++it) {
        const std::size_t k = 1 + rng.nextBelow(8);
        const std::size_t n = k + rng.nextBelow(50);
        std::vector<std::int64_t> sig(n), w(k);
        for (auto &v : sig)
            v = rng.nextInRange(-50, 50);
        for (auto &v : w)
            v = rng.nextInRange(-50, 50);
        std::vector<std::int64_t> want(n, 0);
        for (std::size_t i = k - 1; i < n; ++i) {
            std::int64_t mn =
                std::numeric_limits<std::int64_t>::max();
            for (std::size_t j = 0; j < k; ++j)
                mn = std::min(mn,
                              std::abs(sig[i - (k - 1) + j] - w[j]));
            want[i] = mn;
        }
        SystolicDistance dist;
        EXPECT_EQ(dist.closestPosition(sig, w), want);
    }
}

TEST(Distance, ChebyshevZeroMarksExactWindow)
{
    SystolicDistance dist;
    const auto r = dist.chebyshev({9, 4, 2, 9, 4}, {9, 4});
    EXPECT_EQ(r[1], 0);
    EXPECT_EQ(r[4], 0);
    EXPECT_GT(r[2], 0);
}

TEST(FoldOps, IdentityAndApplication)
{
    EXPECT_EQ(foldIdentity(FoldOp::Sum), 0);
    EXPECT_EQ(foldIdentity(FoldOp::Min),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(foldIdentity(FoldOp::Max),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(applyFold(FoldOp::Sum, 3, 4), 7);
    EXPECT_EQ(applyFold(FoldOp::SumOfSquares, 3, 4), 19);
    EXPECT_EQ(applyFold(FoldOp::Min, 3, 4), 3);
    EXPECT_EQ(applyFold(FoldOp::Max, 3, 4), 4);
}

TEST(NumericArray, RejectsOversizedWeights)
{
    EXPECT_THROW(
        runWindowProtocol(2, MeetOp::Multiply, FoldOp::Sum,
                          {1, 2, 3, 4}, {1, 2, 3}),
        std::logic_error);
}

TEST(NumMeetCell, OpSelection)
{
    // Verify through the protocol: Subtract+SumOfSquares vs
    // Multiply+Sum give different folds of the same streams.
    const std::vector<std::int64_t> sig = {4, 5, 6};
    const std::vector<std::int64_t> w = {1};
    const auto sq = runWindowProtocol(1, MeetOp::Subtract,
                                      FoldOp::SumOfSquares, sig, w);
    EXPECT_EQ(sq, (std::vector<std::int64_t>{9, 16, 25}));
    const auto prod =
        runWindowProtocol(1, MeetOp::Multiply, FoldOp::Sum, sig, w);
    EXPECT_EQ(prod, (std::vector<std::int64_t>{4, 5, 6}));
}

} // namespace
} // namespace spm::ext
