/**
 * @file
 * Deep (ctest -L deep) conformance legs: a time-boxed differential
 * fuzz sweep across the full oracle registry and the complete
 * mutation self-check. These run seconds, not milliseconds, so they
 * carry the "deep" label and stay out of the quick development loop;
 * scripts/check.sh runs them explicitly.
 */

#include <gtest/gtest.h>

#include "conformance/harness.hh"
#include "conformance/mutants.hh"

namespace spm::conformance
{
namespace
{

TEST(DeepConformance, TimeBoxedFuzzSweepAgrees)
{
    HarnessConfig cfg;
    cfg.seed = 0xDEEF;
    cfg.cases = 40'000;     // ceiling; the budget ends the run first
    cfg.timeBudgetSec = 4.0;
    const RunReport r = runFuzz(cfg);
    // Sanity floor only: sanitizer builds run the sweep ~50x slower
    // than plain builds, and every case now also pays for the dict
    // oracles' four-way cross-checks, so keep this far below the
    // plain-build rate (observed low: 64 cases under ASan with the
    // whole suite running in parallel).
    EXPECT_GT(r.casesRun, 25u);
    for (const Failure &f : r.failures)
        ADD_FAILURE() << f.report();
    EXPECT_TRUE(r.ok());
}

TEST(DeepConformance, MutationSelfCheckLeavesNoSurvivors)
{
    const MutationReport r = runMutationSelfCheck(0xDEEF, 2000);
    ASSERT_EQ(r.outcomes.size(), allMutants().size());
    for (const MutantOutcome &o : r.outcomes) {
        EXPECT_TRUE(o.caught)
            << "surviving mutant " << o.name << " ("
            << o.seededBug << ") after " << o.casesTried
            << " cases -- the harness lost detection power";
    }
    EXPECT_EQ(r.survivors(), 0u);
}

} // namespace
} // namespace spm::conformance
