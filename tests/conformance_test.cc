/**
 * @file
 * Tests for the conformance harness itself: case-ID round-trips,
 * generator determinism and coverage of the hard regions, the differ
 * catching a broken matcher, the shrinker minimizing while the
 * failure predicate holds, golden traces agreeing across fidelities,
 * and the mutation self-check catching every seeded bug.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "conformance/casegen.hh"
#include "conformance/differ.hh"
#include "conformance/goldentrace.hh"
#include "conformance/harness.hh"
#include "conformance/mutants.hh"
#include "conformance/oracles.hh"
#include "conformance/shrink.hh"
#include "core/reference.hh"
#include "core/simdpar.hh"
#include "tests/helpers.hh"

namespace spm::conformance
{
namespace
{

TEST(CaseId, SpecRoundTrips)
{
    CaseSpec spec;
    spec.seed = 0xDEADBEEFCAFEull;
    spec.bits = 8;
    spec.patternLen = 64;
    spec.textLen = 129;
    spec.wildcardPct = 35;
    spec.flags = FlagSelfOverlap | FlagShardStraddle;
    const std::string id = encodeSpec(spec);
    const auto back = decodeSpec(id);
    ASSERT_TRUE(back.has_value()) << id;
    EXPECT_EQ(*back, spec);
    // The full decode also materializes the identical case.
    const auto c = decodeCase(id);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(*c, materializeSpec(spec));
}

TEST(CaseId, LiteralRoundTrips)
{
    Case c;
    c.bits = 3;
    c.pattern = {1, wildcardSymbol, 7, 0};
    c.text = {0, 1, 2, 3, 4, 5, 6, 7, 1, 0};
    const auto back = decodeCase(encodeLiteral(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);

    Case empty;
    empty.bits = 1;
    const auto back2 = decodeCase(encodeLiteral(empty));
    ASSERT_TRUE(back2.has_value());
    EXPECT_EQ(*back2, empty);
}

TEST(CaseId, MalformedIdsAreRejected)
{
    for (const std::string bad :
         {"", "g1:zz", "g1:1:2:3", "l1:2:0..1:0", "l1:0:0:0",
          "l1:2:ffff:0", "x9:1:2:3:4:5:6", "g1:1:17:3:4:5:6"}) {
        EXPECT_FALSE(decodeCase(bad).has_value()) << bad;
    }
}

TEST(CaseGenTest, DeterministicAndIndependentOfHistory)
{
    const CaseGen gen(0x1234);
    const CaseGen gen2(0x1234);
    // Same index -> same case, regardless of query order.
    const Case late = gen.caseAt(777);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(gen.caseAt(i), gen2.caseAt(i)) << i;
    EXPECT_EQ(gen.caseAt(777), late);
    // Different master seeds diverge.
    const CaseGen other(0x1235);
    bool any_diff = false;
    for (std::uint64_t i = 0; i < 20 && !any_diff; ++i)
        any_diff = !(gen.caseAt(i) == other.caseAt(i));
    EXPECT_TRUE(any_diff);
}

TEST(CaseGenTest, CoversTheHardRegions)
{
    const CaseGen gen(0xC0FFEE);
    std::set<std::size_t> pattern_lens;
    std::set<BitWidth> widths;
    bool saw_wild_dense = false, saw_straddle = false,
         saw_self_overlap = false, saw_tight = false;
    for (std::uint64_t i = 0; i < 3000; ++i) {
        const CaseSpec spec = gen.specAt(i);
        pattern_lens.insert(spec.patternLen);
        widths.insert(spec.bits);
        saw_wild_dense |= spec.wildcardPct >= 60;
        saw_straddle |= (spec.flags & FlagShardStraddle) != 0;
        saw_self_overlap |= (spec.flags & FlagSelfOverlap) != 0;
        saw_tight |= spec.textLen <= spec.patternLen + 2;
    }
    // Word-boundary pattern lengths and the degenerate k=1.
    for (const std::size_t k :
         {std::size_t(1), std::size_t(63), std::size_t(64),
          std::size_t(65)})
        EXPECT_TRUE(pattern_lens.count(k)) << "missing k=" << k;
    // Alphabet widths 1 (binary), 2 (the chip's) and 8 (bytes).
    for (const BitWidth b : {1u, 2u, 8u})
        EXPECT_TRUE(widths.count(b)) << "missing bits=" << b;
    EXPECT_TRUE(saw_wild_dense);
    EXPECT_TRUE(saw_straddle);
    EXPECT_TRUE(saw_self_overlap);
    EXPECT_TRUE(saw_tight);
}

/** A matcher broken only at the word boundary position 64. */
class BrokenAt64 : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        core::ReferenceMatcher ref;
        auto r = ref.match(text, pattern);
        if (r.size() > 64)
            r[64] = !r[64];
        return r;
    }
    std::string name() const override { return "broken-at-64"; }
};

TEST(Differ, CatchesABrokenMatcherAndReportsTheRegion)
{
    std::vector<Oracle> oracles;
    oracles.push_back(
        Oracle{std::make_unique<core::ReferenceMatcher>()});
    oracles.push_back(Oracle{std::make_unique<BrokenAt64>()});

    Case c;
    c.bits = 1;
    c.pattern = {0};
    c.text.assign(100, 0);
    const CaseResult r = runCase(c, oracles, 0);
    ASSERT_EQ(r.disagreements.size(), 1u);
    EXPECT_EQ(r.disagreements[0].oracle, "broken-at-64");
    EXPECT_EQ(r.disagreements[0].firstIndex, 64u);
    EXPECT_EQ(r.disagreements[0].lastIndex, 64u);
    EXPECT_EQ(r.disagreements[0].mismatches, 1u);
}

TEST(Differ, ReportsAThrowingOracleAsError)
{
    class Thrower : public core::Matcher
    {
        std::vector<bool> match(const std::vector<Symbol> &,
                                const std::vector<Symbol> &) override
        {
            throw std::runtime_error("backend exploded");
        }
        std::string name() const override { return "thrower"; }
    };
    std::vector<Oracle> oracles;
    oracles.push_back(
        Oracle{std::make_unique<core::ReferenceMatcher>()});
    oracles.push_back(Oracle{std::make_unique<Thrower>()});
    Case c;
    c.bits = 1;
    c.pattern = {0};
    c.text = {0, 1};
    const CaseResult r = runCase(c, oracles, 0);
    ASSERT_EQ(r.disagreements.size(), 1u);
    EXPECT_EQ(r.disagreements[0].kind, Disagreement::Kind::Error);
    EXPECT_NE(r.disagreements[0].summary().find("backend exploded"),
              std::string::npos);
}

TEST(Shrinker, MinimizesWhilePreservingTheFailure)
{
    std::vector<Oracle> oracles;
    oracles.push_back(
        Oracle{std::make_unique<core::ReferenceMatcher>()});
    oracles.push_back(Oracle{std::make_unique<BrokenAt64>()});

    // A big noisy case; the bug needs only text length > 64.
    Case big;
    big.bits = 2;
    big.pattern = {1, 2, wildcardSymbol};
    big.text.assign(190, 1);
    ASSERT_TRUE(stillFails(big, oracles, 1));

    const ShrinkResult s = shrinkCase(big, [&](const Case &cand) {
        return stillFails(cand, oracles, 1);
    });
    EXPECT_TRUE(stillFails(s.minimized, oracles, 1));
    // Minimal reproduction: 65 text characters; the bug does not
    // depend on the pattern at all, so it shrinks away entirely.
    EXPECT_EQ(s.minimized.text.size(), 65u);
    EXPECT_TRUE(s.minimized.pattern.empty());
    EXPECT_GT(s.steps, 0u);
    // The minimized case replays from its literal ID.
    const auto back = decodeCase(encodeLiteral(s.minimized));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(stillFails(*back, oracles, 1));
}

TEST(GoldenTraces, BehavioralAndCascadeAreBeatIdentical)
{
    const test::Workload w = test::makeWorkload(5);
    Case c;
    c.bits = w.bits;
    c.pattern = w.pattern;
    c.text = w.text;
    if (c.pattern.size() > 10)
        c.pattern.resize(10);
    const std::size_t k = c.pattern.size();
    const std::size_t cells = k + (k % 2);
    const GoldenTrace a = traceBehavioral(c, cells);
    const GoldenTrace b = traceCascade(c, 2, cells / 2);
    EXPECT_FALSE(a.ports.empty());
    const TraceDiff d = diffExact(a, b);
    EXPECT_TRUE(d.identical) << d.detail;
}

TEST(GoldenTraces, DiffExactPinpointsACorruptedBeat)
{
    Case c;
    c.bits = 2;
    c.pattern = {0, 1};
    c.text = {0, 1, 0, 1, 1};
    GoldenTrace a = traceBehavioral(c, 2);
    GoldenTrace b = traceBehavioral(c, 2);
    ASSERT_GT(b.ports.size(), 4u);
    b.ports[4].resValue = !b.ports[4].resValue;
    b.ports[4].resValid = true;
    const TraceDiff d = diffExact(a, b);
    EXPECT_FALSE(d.identical);
    EXPECT_NE(d.detail.find("beat"), std::string::npos);
}

TEST(GoldenTraces, BitSerialResultStreamMatchesWithConstantOffset)
{
    for (const std::uint64_t index : {2ull, 7ull, 11ull}) {
        const test::Workload w = test::makeWorkload(index);
        Case c;
        c.bits = w.bits;
        c.pattern = w.pattern;
        c.text = w.text;
        if (c.pattern.size() > 8)
            c.pattern.resize(8);
        if (c.text.size() > 60)
            c.text.resize(60);
        const std::size_t k = c.pattern.size();
        GoldenTrace beh = traceBehavioral(c, k);
        GoldenTrace ser = traceBitSerial(c);
        // Incomplete windows carry unspecified raw values; blank the
        // first k-1 valid samples as the harness does.
        std::size_t seen = 0;
        for (auto *t : {&beh, &ser}) {
            seen = 0;
            for (auto &p : t->ports) {
                if (!p.resValid)
                    continue;
                if (seen + 1 >= k)
                    break;
                p.resValue = false;
                ++seen;
            }
        }
        const TraceDiff d = diffResultStream(beh, ser);
        EXPECT_TRUE(d.identical)
            << "index=" << index << ": " << d.detail;
    }
}

TEST(Harness, FuzzSweepAgreesAndReportsThroughput)
{
    HarnessConfig cfg;
    cfg.cases = 300;
    cfg.seed = 0xFEED;
    const RunReport r = runFuzz(cfg);
    EXPECT_TRUE(r.ok()) << (r.failures.empty()
                                ? ""
                                : r.failures[0].report());
    EXPECT_EQ(r.casesRun, 300u);
    EXPECT_GT(r.comparisons, r.casesRun); // several oracles per case
    EXPECT_GT(r.casesPerSec(), 0.0);
}

TEST(Harness, ReplaysACaseIdEndToEnd)
{
    // The paper's Figure 3-1 example as a literal ID.
    const RunReport r =
        replayCase("l1:2:0.*.2:0.1.2.0.0.2.2.0.2.1", HarnessConfig{});
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.casesRun, 1u);
    EXPECT_GT(r.extensionChecks, 0u);
    EXPECT_GT(r.goldenTraceRuns, 0u);

    const RunReport bad = replayCase("not-an-id", HarnessConfig{});
    EXPECT_FALSE(bad.ok());
}

TEST(Harness, FailureReportCarriesReplayableIds)
{
    // Drive the harness machinery through a mutant to check the
    // report plumbing: both IDs must decode and still fail.
    std::vector<Oracle> oracles;
    oracles.push_back(
        Oracle{std::make_unique<core::ReferenceMatcher>()});
    for (const Mutant &m : allMutants()) {
        if (m.name != "mut-wordpar-wildplane")
            continue;
        oracles.push_back(Oracle{m.make()});
    }
    ASSERT_EQ(oracles.size(), 2u);
    Case c;
    c.bits = 2;
    c.pattern = {wildcardSymbol, 1};
    c.text = {0, 1, 2, 1};
    ASSERT_TRUE(stillFails(c, oracles, 1));
    const ShrinkResult s = shrinkCase(c, [&](const Case &cand) {
        return stillFails(cand, oracles, 1);
    });
    const auto decoded = decodeCase(encodeLiteral(s.minimized));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(stillFails(*decoded, oracles, 1));
}

TEST(Mutation, SelfCheckCatchesEverySeededBug)
{
    const MutationReport r = runMutationSelfCheck(0xC0FFEE, 400);
    ASSERT_EQ(r.outcomes.size(), allMutants().size());
    for (const MutantOutcome &o : r.outcomes) {
        EXPECT_TRUE(o.caught)
            << o.name << " survived " << o.casesTried
            << " cases: " << o.seededBug;
        if (o.caught) {
            // The catching case replays and still catches the bug.
            ASSERT_FALSE(o.shrunkId.empty());
            EXPECT_TRUE(decodeCase(o.shrunkId).has_value())
                << o.shrunkId;
        }
    }
    EXPECT_TRUE(r.allCaught());
    EXPECT_EQ(r.survivors(), 0u);
}

TEST(Oracles, RegistryNamesEveryImplementation)
{
    const std::vector<std::string> names = allOracleNames(true);
    // 9 base implementations (sharded x3 = 11 configurations), plus
    // the SIMD kernel at the best tier and every supported tier below
    // it, plus three batch pack shapes, plus four dictionary shapes.
    std::size_t below_best = 0;
    for (const core::SimdIsa isa :
         {core::SimdIsa::Scalar, core::SimdIsa::Sse2})
        if (core::simdIsaSupported(isa) && isa < core::bestSimdIsa())
            ++below_best;
    EXPECT_EQ(names.size(), 11u + 1u + below_best + 3u + 4u);
    EXPECT_EQ(names.front(), "reference");
    const auto has = [&](const std::string &n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    EXPECT_TRUE(has("simd-parallel"));
    EXPECT_TRUE(has("batch-w3"));
    EXPECT_TRUE(has("batch-w64"));
    EXPECT_TRUE(has("batch-w3-chunk7"));
    EXPECT_TRUE(has("dict-p1"));
    EXPECT_TRUE(has("dict-p8"));
    EXPECT_TRUE(has("dict-p64"));
    EXPECT_TRUE(has("dict-p8-chunk9"));
    // The gate switch removes exactly the two gate-level oracles.
    const std::vector<std::string> nogate = allOracleNames(false);
    EXPECT_EQ(names.size(), nogate.size() + 2u);
}

} // namespace
} // namespace spm::conformance
